//! E1 — the §6.2 functionality matrix: all four client/server capability
//! combinations exercised over real connections, verifying the negotiated
//! mode and graceful fallback.

use crate::table::Table;
use sww_core::{GenAbility, GenerativeServer, SiteContent};
use sww_html::gencontent;

/// One scenario's outcome.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable description.
    pub label: String,
    /// Whether the server advertised ability.
    pub server_supports: bool,
    /// Whether the client advertised ability.
    pub client_supports: bool,
    /// Mode label the server reported in `x-sww-mode`.
    pub mode: String,
    /// Whether the delivered page still contains prompt divisions.
    pub page_in_prompt_form: bool,
}

fn demo_site() -> SiteContent {
    let mut site = SiteContent::new();
    site.add_page(
        "/page",
        format!(
            "<html><body>{}</body></html>",
            gencontent::image_div("a quiet mountain lake at dawn", "lake.jpg", 128, 128)
        ),
    );
    site
}

/// Run the four scenarios over in-memory connections.
pub async fn run() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (server_ability, client_ability, label) in [
        (GenAbility::full(), GenAbility::full(), "both support"),
        (GenAbility::full(), GenAbility::none(), "server only"),
        (GenAbility::none(), GenAbility::full(), "client only"),
        (GenAbility::none(), GenAbility::none(), "neither"),
    ] {
        let server = GenerativeServer::builder()
            .site(demo_site())
            .ability(server_ability)
            .build();
        let (a, b) = tokio::io::duplex(1 << 20);
        let srv = server.clone();
        tokio::spawn(async move {
            let _ = srv.serve_stream(b).await;
        });
        let mut client = sww_http2::ClientConnection::handshake(a, client_ability)
            .await
            .expect("handshake");
        let resp = client
            .send_request(&sww_http2::Request::get("/page"))
            .await
            .expect("request");
        let body = String::from_utf8_lossy(&resp.body).into_owned();
        out.push(Scenario {
            label: label.to_string(),
            server_supports: server_ability.supported(),
            client_supports: client_ability.supported(),
            mode: resp.headers.get("x-sww-mode").unwrap_or("?").to_string(),
            page_in_prompt_form: body.contains(gencontent::GENERATED_CONTENT_CLASS),
        });
    }
    out
}

/// Render as a table.
pub fn table(scenarios: &[Scenario]) -> Table {
    let mut t = Table::new(
        "E1 — Functionality matrix (§6.2): negotiated serve mode",
        &["Scenario", "Server", "Client", "Mode", "Prompt-form page"],
    );
    for s in scenarios {
        t.row([
            s.label.clone(),
            if s.server_supports { "SWW" } else { "naive" }.into(),
            if s.client_supports { "SWW" } else { "naive" }.into(),
            s.mode.clone(),
            s.page_in_prompt_form.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread")]
    async fn matrix_matches_paper() {
        let scenarios = run().await;
        assert_eq!(scenarios.len(), 4);
        // Only the both-support case is generative with a prompt page.
        assert_eq!(scenarios[0].mode, "generative");
        assert!(scenarios[0].page_in_prompt_form);
        // Server-only: server generates before sending.
        assert_eq!(scenarios[1].mode, "server-generated");
        assert!(!scenarios[1].page_in_prompt_form);
        // Client-only and neither: plain traditional HTTP/2.
        for s in &scenarios[2..] {
            assert_eq!(s.mode, "traditional");
            assert!(!s.page_in_prompt_form);
        }
    }
}
