//! E20 — small-world traffic: SLO scorecard vs graph clustering, plus a
//! deterministic-replay gate across transports and the edge tier.
//!
//! The sweep generates one Watts–Strogatz workload per rewiring
//! probability `β` (same nodes, same seed — only the topology changes)
//! and runs the modelled discrete-event simulator over each trace at
//! large request counts. Because clustered graphs keep random-walk
//! sessions inside tight neighbourhoods, a bounded per-node LRU page
//! cache re-serves their revisits: the **cache hit rate must rise
//! monotonically with the clustering coefficient**, and the modelled p99
//! sojourn must stay under the SLO deadline. Both quantities are pure
//! functions of the seed, so the regression gate compares them exactly —
//! wall-clock columns from the live replays ride along ungated, as in
//! E17–E19.
//!
//! The live half replays a smaller trace through the real stack three
//! ways — in-process single node, the HTTP/3 framing path, and a
//! consistent-hash edge cluster — and re-runs the single-node target on
//! a fresh server to witness replay determinism: same seed, same trace
//! digest, same response digest, and payloads byte-identical across
//! topologies.

use crate::table::Table;
use sww_workload::arrival::DiurnalModel;
use sww_workload::replay::{
    modelled_slo, ModelledSlo, ReplayConfig, ReplayEngine, ReplayOutcome, ReplayTarget,
};
use sww_workload::session::WalkConfig;
use sww_workload::{SmallWorldConfig, WorkloadConfig};

/// E20 sweep configuration: one workload per `β`, modelled and live
/// request volumes, and the SLO bound the modelled p99 is gated against.
#[derive(Debug, Clone)]
pub struct E20Config {
    /// Watts–Strogatz rewiring probabilities to sweep (clustering falls
    /// as `β` rises, so the hit-rate gate reads these back in
    /// clustering-ascending order).
    pub betas: Vec<f64>,
    /// Pages in the site graph.
    pub graph_nodes: usize,
    /// Ring-lattice degree before rewiring.
    pub k: usize,
    /// Zipf popularity exponent.
    pub zipf_exponent: f64,
    /// Random-walk restart probability (PageRank-style teleport).
    pub restart: f64,
    /// Mean pages per session.
    pub mean_session: f64,
    /// Mean session arrivals per virtual second. Sized so the modelled
    /// per-node utilisation stays below one — the p99-vs-deadline gate
    /// reads a stationary queue, not a saturated one.
    pub arrival_rate: f64,
    /// Per-node LRU page-cache capacity in the modelled simulator.
    pub cache_capacity: usize,
    /// Cluster width for the modelled simulator and the live edge replay.
    pub cluster_nodes: usize,
    /// SLO deadline the modelled p99 sojourn must stay under, ms.
    pub deadline_ms: f64,
    /// Requests per `β` in the modelled sweep.
    pub modelled_requests: usize,
    /// Requests in each live replay.
    pub live_requests: usize,
    /// The `β` the live replays run at (the clustered regime).
    pub live_beta: f64,
    /// Client threads for the sync live targets.
    pub threads: usize,
    /// Master seed for graph, popularity, arrivals, and walks.
    pub seed: u64,
}

impl Default for E20Config {
    fn default() -> E20Config {
        E20Config {
            betas: vec![0.02, 0.2, 1.0],
            graph_nodes: 192,
            k: 8,
            zipf_exponent: 1.1,
            restart: 0.10,
            mean_session: 16.0,
            arrival_rate: 3.0,
            cache_capacity: 32,
            cluster_nodes: 4,
            deadline_ms: 2_500.0,
            modelled_requests: 1_000_000,
            live_requests: 600,
            live_beta: 0.02,
            threads: 4,
            seed: 42,
        }
    }
}

impl E20Config {
    /// A small preset for debug-mode tests and the golden snapshot:
    /// same graph and walk shape, far fewer requests.
    pub fn quick() -> E20Config {
        E20Config {
            modelled_requests: 20_000,
            live_requests: 150,
            ..E20Config::default()
        }
    }

    /// The workload config for one `β` at a given request volume. Only
    /// the rewiring probability varies across the sweep — every other
    /// knob (seed included) is shared, so differences between rows are
    /// attributable to topology alone.
    pub fn workload(&self, beta: f64, requests: usize) -> WorkloadConfig {
        WorkloadConfig {
            graph: SmallWorldConfig {
                nodes: self.graph_nodes,
                k: self.k,
                beta,
                seed: self.seed,
            },
            zipf_exponent: self.zipf_exponent,
            walk: WalkConfig {
                restart: self.restart,
                mean_len: self.mean_session,
            },
            diurnal: DiurnalModel {
                base_rate: self.arrival_rate,
                ..DiurnalModel::default()
            },
            requests,
            seed: self.seed,
            ..WorkloadConfig::default()
        }
    }
}

/// One modelled sweep row: the workload at one `β`.
#[derive(Debug, Clone)]
pub struct WorkloadRow {
    /// Rewiring probability.
    pub beta: f64,
    /// Clustering coefficient of the generated graph.
    pub clustering: f64,
    /// Mean shortest-path length of the generated graph.
    pub mean_path: f64,
    /// The modelled SLO numbers for this workload.
    pub slo: ModelledSlo,
}

/// Run the modelled sweep: one row per `β`, each a pure function of the
/// config (these are the gated numbers).
pub fn modelled_sweep(cfg: &E20Config) -> Vec<WorkloadRow> {
    cfg.betas
        .iter()
        .map(|&beta| {
            let wl = cfg.workload(beta, cfg.modelled_requests);
            let graph = wl.site_graph();
            WorkloadRow {
                beta,
                clustering: graph.clustering_coefficient(),
                mean_path: graph.mean_path_length(),
                slo: modelled_slo(&wl, cfg.cluster_nodes, cfg.cache_capacity),
            }
        })
        .collect()
}

/// One live replay outcome, flattened for tables and report records.
#[derive(Debug, Clone)]
pub struct LiveSample {
    /// Target label (`single` / `h2` / `h3` / `edgeN`).
    pub target: String,
    /// Serving nodes behind the target.
    pub nodes: usize,
    /// The raw replay outcome (scorecard + digests).
    pub outcome: ReplayOutcome,
}

/// The live targets E20 replays through, in run order.
pub fn live_targets(cfg: &E20Config) -> Vec<ReplayTarget> {
    vec![
        ReplayTarget::Single,
        ReplayTarget::H3,
        ReplayTarget::Cluster(cfg.cluster_nodes),
    ]
}

fn target_nodes(target: ReplayTarget) -> usize {
    match target {
        ReplayTarget::Cluster(n) => n,
        _ => 1,
    }
}

/// Replay the live trace through each target on a fresh stack.
pub fn live_sweep(cfg: &E20Config, targets: &[ReplayTarget]) -> Vec<LiveSample> {
    let engine = ReplayEngine::from_config(&cfg.workload(cfg.live_beta, cfg.live_requests));
    targets
        .iter()
        .map(|&target| {
            let rcfg = ReplayConfig {
                target,
                threads: cfg.threads,
                ..ReplayConfig::default()
            };
            LiveSample {
                target: target.label(),
                nodes: target_nodes(target),
                outcome: engine.run(&rcfg),
            }
        })
        .collect()
}

/// The replay-determinism witness: what two independent runs agreed on.
#[derive(Debug, Clone, Copy)]
pub struct DeterminismOutcome {
    /// Both runs replayed bit-identical traces.
    pub trace_match: bool,
    /// Both runs produced the same `(seq, status, body)` digest.
    pub response_match: bool,
    /// The single-node and edge-cluster payload digests agree — bytes
    /// must not depend on topology.
    pub cross_target_identical: bool,
}

impl DeterminismOutcome {
    /// All determinism invariants held.
    pub fn deterministic(&self) -> bool {
        self.trace_match && self.response_match && self.cross_target_identical
    }
}

/// Re-derive the whole pipeline twice — trace generation included — and
/// replay each copy on a fresh single-node stack; then compare the
/// single-node payload digest against the edge replay from `live`.
///
/// The response digests are compared unconditionally, chaos installed
/// or not: each server draws faults from its own seeded
/// [`sww_core::FaultScope`] (stream offset restarts at zero per
/// instance), so two independent runs see identical fault schedules and
/// must produce identical `(seq, status, body)` digests. PR 9 waived
/// this under `--chaos` when draws still came from one process-global
/// stream; the per-node scoping removed the need.
pub fn determinism_check(cfg: &E20Config, live: &[LiveSample]) -> DeterminismOutcome {
    let wl = cfg.workload(cfg.live_beta, cfg.live_requests);
    let rcfg = ReplayConfig {
        target: ReplayTarget::Single,
        threads: cfg.threads,
        ..ReplayConfig::default()
    };
    let a = ReplayEngine::from_config(&wl).run(&rcfg);
    let b = ReplayEngine::from_config(&wl).run(&rcfg);
    let single = live.iter().find(|s| s.target == "single");
    let edge = live.iter().find(|s| s.target.starts_with("edge"));
    DeterminismOutcome {
        trace_match: a.trace_digest == b.trace_digest,
        response_match: a.response_digest == b.response_digest,
        cross_target_identical: match (single, edge) {
            (Some(s), Some(e)) => s.outcome.response_digest == e.outcome.response_digest,
            _ => true,
        },
    }
}

/// Render the modelled sweep (the golden/gated surface: every cell is a
/// pure function of the seed).
pub fn modelled_table(cfg: &E20Config, rows: &[WorkloadRow]) -> Table {
    let mut t = Table::new(
        format!(
            "E20 (modelled) — small-world workload ({} pages, k={}, {} reqs/beta, \
             LRU {}/node x {} nodes)",
            cfg.graph_nodes, cfg.k, cfg.modelled_requests, cfg.cache_capacity, cfg.cluster_nodes
        ),
        &[
            "Beta",
            "Clustering",
            "Mean path",
            "Unique pages",
            "Hit rate",
            "Offered qps",
            "p99 ms",
            "Mean ms",
        ],
    );
    for r in rows {
        t.row([
            format!("{:.2}", r.beta),
            format!("{:.4}", r.clustering),
            format!("{:.3}", r.mean_path),
            format!("{}", r.slo.unique_pages),
            format!("{:.4}", r.slo.hit_rate),
            format!("{:.3}", r.slo.offered_qps),
            format!("{:.3}", r.slo.p99_ms),
            format!("{:.3}", r.slo.mean_ms),
        ]);
    }
    t
}

/// Render the live replay scorecards (wall-clock columns — recorded,
/// never gated, never golden).
pub fn live_table(cfg: &E20Config, samples: &[LiveSample]) -> Table {
    let mut t = Table::new(
        format!(
            "E20 (live) — trace replay (beta {}, {} reqs, {} threads)",
            cfg.live_beta, cfg.live_requests, cfg.threads
        ),
        &[
            "Target",
            "Nodes",
            "Requests",
            "OK",
            "Shed",
            "504",
            "Err",
            "Retries",
            "Gen",
            "Coalesced",
            "Hit rate",
            "Wall qps",
            "p50 ms",
            "p99 ms",
        ],
    );
    for s in samples {
        let card = &s.outcome.scorecard;
        t.row([
            s.target.clone(),
            format!("{}", s.nodes),
            format!("{}", card.requests),
            format!("{}", card.ok),
            format!("{}", card.shed),
            format!("{}", card.deadline),
            format!("{}", card.errors),
            format!("{}", card.retries),
            format!("{}", s.outcome.generations),
            format!("{}", s.outcome.coalesced),
            format!("{:.3}", s.outcome.hit_rate),
            format!("{:.1}", card.qps()),
            format!("{:.3}", card.p50_ms()),
            format!("{:.3}", card.p99_ms()),
        ]);
    }
    t
}

/// The SLO gates `bench-workload` (and the report compare) enforce on a
/// finished sweep. Returns human-readable failure lines; empty means the
/// run passed.
pub fn slo_failures(
    cfg: &E20Config,
    rows: &[WorkloadRow],
    determinism: &DeterminismOutcome,
) -> Vec<String> {
    let mut bad = Vec::new();
    let mut sorted: Vec<&WorkloadRow> = rows.iter().collect();
    sorted.sort_by(|a, b| a.clustering.total_cmp(&b.clustering));
    for pair in sorted.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        if hi.slo.hit_rate <= lo.slo.hit_rate {
            bad.push(format!(
                "hit rate must rise with clustering ({:.4} -> {:.4} as C {:.4} -> {:.4})",
                lo.slo.hit_rate, hi.slo.hit_rate, lo.clustering, hi.clustering
            ));
        }
    }
    for r in rows {
        if r.slo.p99_ms > cfg.deadline_ms {
            bad.push(format!(
                "beta {:.2}: modelled p99 {:.3} ms over the {:.0} ms deadline",
                r.beta, r.slo.p99_ms, cfg.deadline_ms
            ));
        }
    }
    if !determinism.trace_match {
        bad.push("replay nondeterministic: trace digests diverged".into());
    }
    if !determinism.response_match {
        bad.push("replay nondeterministic: response digests diverged".into());
    }
    if !determinism.cross_target_identical {
        bad.push("payload digests differ between single-node and edge replays".into());
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::super::POOL_SERIAL;
    use super::*;

    /// Full-size graph (the hit-rate separation needs pages ≫ cache),
    /// small request volume — debug-test speed.
    fn tiny_modelled() -> E20Config {
        E20Config {
            modelled_requests: 4_000,
            ..E20Config::default()
        }
    }

    /// Small graph for the live replays (debug-mode server fetches are
    /// the expensive part; the live gates don't read clustering).
    fn tiny_live() -> E20Config {
        E20Config {
            graph_nodes: 48,
            k: 6,
            live_requests: 90,
            ..E20Config::default()
        }
    }

    #[test]
    fn modelled_sweep_is_deterministic_and_monotone() {
        let cfg = tiny_modelled();
        let a = modelled_sweep(&cfg);
        let b = modelled_sweep(&cfg);
        assert_eq!(a.len(), cfg.betas.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.slo, y.slo, "modelled rows must be pure in the seed");
        }
        // Clustering falls along the sweep (betas ascend), so the hit
        // rate must fall too — the gate reads the same rows reversed.
        for pair in a.windows(2) {
            assert!(pair[0].clustering > pair[1].clustering);
            assert!(pair[0].slo.hit_rate > pair[1].slo.hit_rate);
        }
    }

    #[test]
    fn live_sweep_and_determinism_pass_the_gates() {
        let _guard = POOL_SERIAL.lock().unwrap();
        let cfg = tiny_live();
        let live = live_sweep(&cfg, &live_targets(&cfg));
        assert_eq!(live.len(), 3);
        for s in &live {
            assert_eq!(
                s.outcome.scorecard.ok, s.outcome.scorecard.requests,
                "{}: every replayed request must serve",
                s.target
            );
        }
        let det = determinism_check(&cfg, &live);
        assert!(det.deterministic(), "{det:?}");
        let mcfg = tiny_modelled();
        let rows = modelled_sweep(&mcfg);
        assert_eq!(slo_failures(&mcfg, &rows, &det), Vec::<String>::new());
    }

    /// The gate PR 9 waived: with chaos installed, two independent
    /// replays must *still* agree on response digests, because each
    /// server now draws from its own scoped fault stream (offset zero
    /// per instance) instead of racing the process-global one.
    #[test]
    fn determinism_holds_under_chaos_with_scoped_fault_streams() {
        let _guard = POOL_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let cfg = tiny_live();
        let spec =
            sww_core::ChaosSpec::parse("seed=29,engine.generate=error:0.3").expect("error spec");
        sww_core::faults::install(&spec);
        let det = determinism_check(&cfg, &[]);
        sww_core::faults::clear();
        assert!(det.trace_match, "{det:?}");
        assert!(
            det.response_match,
            "scoped fault streams must replay identically under chaos: {det:?}"
        );
    }

    #[test]
    fn slo_failures_flag_every_violation() {
        let cfg = tiny_modelled();
        let mut rows = modelled_sweep(&cfg);
        // Invert the hit rates and blow the deadline on one row.
        rows.first_mut().unwrap().slo.hit_rate = 0.0;
        rows.last_mut().unwrap().slo.p99_ms = cfg.deadline_ms + 1.0;
        let det = DeterminismOutcome {
            trace_match: true,
            response_match: false,
            cross_target_identical: false,
        };
        let bad = slo_failures(&cfg, &rows, &det);
        assert!(
            bad.iter().any(|l| l.contains("rise with clustering")),
            "{bad:?}"
        );
        assert!(bad.iter().any(|l| l.contains("over the")), "{bad:?}");
        assert!(
            bad.iter().any(|l| l.contains("response digests")),
            "{bad:?}"
        );
        assert!(
            bad.iter().any(|l| l.contains("single-node and edge")),
            "{bad:?}"
        );
    }

    #[test]
    fn tables_render_one_row_per_entry() {
        let cfg = tiny_modelled();
        let rows = modelled_sweep(&cfg);
        assert_eq!(modelled_table(&cfg, &rows).len(), rows.len());
    }
}
