//! E11 — video negotiation savings (§3.2) and E13 — CDN storage and
//! transmission across deployment modes (§2.2).

use crate::table::{bytes, Table};
use sww_core::cdn::{CatalogItem, CdnSimulation, EdgeMode};
use sww_core::video::{negotiate, Resolution, StreamRequest};
use sww_core::GenAbility;

/// One video scenario row.
#[derive(Debug, Clone)]
pub struct VideoRow {
    /// Scenario label.
    pub label: String,
    /// Bytes on the wire for one hour of content.
    pub wire_bytes: u64,
    /// Traditional bytes for the same hour.
    pub traditional_bytes: u64,
    /// Savings factor.
    pub savings: f64,
}

/// Run E11: an hour of 4K60 under different capability combinations.
pub fn video() -> Vec<VideoRow> {
    let req = StreamRequest {
        resolution: Resolution::Uhd4K,
        fps: 60,
        duration_s: 3600,
        segment_s: 6,
    };
    let video_ability = GenAbility::from_bits(GenAbility::VIDEO);
    let scenarios = [
        ("both support video upscale", video_ability, video_ability),
        ("client naive", GenAbility::none(), video_ability),
        ("server naive", video_ability, GenAbility::none()),
    ];
    scenarios
        .into_iter()
        .map(|(label, client, server)| {
            let s = negotiate(req, client, server);
            VideoRow {
                label: label.to_string(),
                wire_bytes: s.wire_bytes,
                traditional_bytes: s.traditional_bytes,
                savings: s.savings_ratio(),
            }
        })
        .collect()
}

/// Render E11.
pub fn video_table(rows: &[VideoRow]) -> Table {
    let mut t = Table::new(
        "E11 — Video negotiation (§3.2): 1h of 4K60 (paper: 60→30fps halves data; 4K→HD saves 2.3x, 7GB/h → 3GB/h)",
        &["Scenario", "Wire", "Traditional", "Savings"],
    );
    for r in rows {
        t.row([
            r.label.clone(),
            bytes(r.wire_bytes),
            bytes(r.traditional_bytes),
            format!("{:.2}x", r.savings),
        ]);
    }
    t
}

/// One CDN deployment row.
#[derive(Debug, Clone)]
pub struct CdnRow {
    /// Mode label.
    pub label: String,
    /// Total edge storage.
    pub storage_bytes: u64,
    /// Edge→user transmission for the request trace.
    pub egress_bytes: u64,
    /// Edge generation energy (Wh) for the trace.
    pub edge_generation_wh: f64,
}

/// Run E13: a 100-edge CDN over a 1000-item catalog of large images,
/// serving a fixed request trace in each mode.
pub fn cdn() -> Vec<CdnRow> {
    let catalog: Vec<CatalogItem> = (0..1000)
        .map(|i| CatalogItem {
            id: format!("obj{i}"),
            media_bytes: 131_072,
            metadata_bytes: 428,
            side: 1024,
        })
        .collect();
    let modes = [
        ("classic (store media)", EdgeMode::StoreMedia),
        (
            "SWW edge (store prompts, generate at edge)",
            EdgeMode::StorePrompts {
                cache_generated: true,
            },
        ),
        ("full SWW (prompts to clients)", EdgeMode::PassPrompts),
    ];
    modes
        .into_iter()
        .map(|(label, mode)| {
            let mut sim = CdnSimulation::new(catalog.clone(), 100, mode);
            // Zipf-flavoured trace: popular objects dominate.
            for r in 0..5000u64 {
                let obj = (r * r % 97 % 1000) as usize;
                let edge = (r % 100) as u32;
                sim.request(edge, &format!("obj{obj}"));
            }
            CdnRow {
                label: label.to_string(),
                storage_bytes: sim.edge_storage_bytes(),
                egress_bytes: sim.edge_to_user_bytes,
                edge_generation_wh: sim.edge_generation_energy.wh(),
            }
        })
        .collect()
}

/// Render E13.
pub fn cdn_table(rows: &[CdnRow]) -> Table {
    let mut t = Table::new(
        "E13 — CDN deployment modes (§2.2): 100 edges, 1000 large images, 5000 requests",
        &["Mode", "Edge storage", "Edge→user bytes", "Edge gen energy"],
    );
    for r in rows {
        t.row([
            r.label.clone(),
            bytes(r.storage_bytes),
            bytes(r.egress_bytes),
            format!("{:.1}Wh", r.edge_generation_wh),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_savings_match_paper_factors() {
        let rows = video();
        // Both support: 2.33 × 2 ≈ 4.67×.
        assert!((rows[0].savings - 4.67).abs() < 0.05, "{}", rows[0].savings);
        assert_eq!(rows[0].traditional_bytes, 7_000_000_000);
        // Either side naive → no savings.
        assert!((rows[1].savings - 1.0).abs() < 1e-6);
        assert!((rows[2].savings - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cdn_storage_and_transmission_tradeoffs() {
        let rows = cdn();
        let classic = &rows[0];
        let edge_gen = &rows[1];
        let full = &rows[2];
        // Storage: both SWW modes shrink storage by the media/metadata
        // ratio (≈306×) across all 100 edges.
        assert!(classic.storage_bytes > edge_gen.storage_bytes * 250);
        assert_eq!(edge_gen.storage_bytes, full.storage_bytes);
        // Transmission: edge generation loses the transmission win.
        assert_eq!(classic.egress_bytes, edge_gen.egress_bytes);
        assert!(full.egress_bytes < classic.egress_bytes / 250);
        // Energy: only the edge-generation mode pays generation energy.
        assert_eq!(classic.edge_generation_wh, 0.0);
        assert!(edge_gen.edge_generation_wh > 1.0);
        assert_eq!(full.edge_generation_wh, 0.0);
    }
}
