//! Machine-readable bench reports (`BENCH_*.json`) and the regression
//! gate that compares a fresh run against a checked-in baseline.
//!
//! The PR 6 report captures the E17 tiled-kernel sweeps plus the E18
//! transport shoot-out in the `sww-bench-pr6/2` schema (documented in
//! PERFORMANCE.md). Two kinds of numbers live side by side and are
//! treated differently:
//!
//! * **Modelled** throughput (`modelled_qps`, `speedup`) comes from the
//!   deterministic cost model, so it is bit-reproducible across hosts —
//!   the regression gate compares these.
//! * **Wall-clock** numbers (`wall_qps`, `p50_ms`, `p99_ms`) are
//!   host-shaped and noisy — recorded for the perf trajectory, never
//!   gated.
//!
//! [`compare`] is the gate `ci.sh bench` runs: every baseline record must
//! still exist, modelled throughput must be within tolerance, the
//! headline speedups must clear the PR 6 floor, and the steady-state
//! allocation counters must read zero.

use crate::experiments::kernel::{KernelConfig, KernelSample, ServingConfig, ServingSample};
use crate::experiments::transport::{TransportConfig, TransportSample};
use sww_json::Value;

/// Schema tag every PR 6 report carries. `/2` added the E18
/// `page_load_transport` records and the `transport_h3_speedup` headline.
pub const PR6_SCHEMA: &str = "sww-bench-pr6/2";

/// Modelled-speedup floor from the PR 6 acceptance criterion: the tiled
/// kernel must buy ≥ 1.5× at batch 8.
pub const SPEEDUP_FLOOR: f64 = 1.5;

/// Round to 3 decimals: keeps checked-in baselines readable while staying
/// far above the cost model's discrimination threshold.
fn r3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn kernel_record(cfg: KernelConfig, s: &KernelSample) -> Value {
    Value::object([
        ("experiment", Value::from("kernel_denoise")),
        ("kernel_tiles", Value::from(s.tiles)),
        ("batch", Value::from(cfg.batch)),
        ("workers", Value::from(s.tiles.saturating_sub(1))),
        ("wall_qps", Value::from(r3(s.wall_qps))),
        ("p50_ms", Value::from(r3(s.p50_ms))),
        ("p99_ms", Value::from(r3(s.p99_ms))),
        ("modelled_qps", Value::from(r3(s.modelled_rate))),
        ("speedup", Value::from(r3(s.speedup))),
        ("alloc_bytes_steady", Value::from(s.alloc_bytes as usize)),
    ])
}

fn serving_record(cfg: ServingConfig, s: &ServingSample) -> Value {
    Value::object([
        ("experiment", Value::from("serve_batched")),
        ("kernel_tiles", Value::from(s.kernel_tiles)),
        ("batch", Value::from(cfg.threads)),
        ("workers", Value::from(cfg.threads)),
        ("wall_qps", Value::from(r3(s.wall_qps))),
        ("p50_ms", Value::from(r3(s.p50_ms))),
        ("p99_ms", Value::from(r3(s.p99_ms))),
        ("modelled_qps", Value::from(r3(s.modelled_rate))),
        ("speedup", Value::from(r3(s.speedup))),
        ("mean_batch", Value::from(r3(s.mean_batch))),
        ("alloc_bytes_steady", Value::from(s.alloc_bytes as usize)),
    ])
}

/// One E18 row: page-load rate over one transport. `modelled_qps` comes
/// from the injected latency alone (`1000/(K·W)` for h2, `1000/W` for
/// h3) so the gate compares exact numbers; the wall-clock percentiles
/// ride along ungated. The pipes are pooled end to end, so the
/// steady-state allocation invariant holds here too.
fn transport_record(cfg: TransportConfig, s: &TransportSample) -> Value {
    Value::object([
        ("experiment", Value::from("page_load_transport")),
        ("transport", Value::from(s.transport.label())),
        ("kernel_tiles", Value::from(1usize)),
        ("recipes_per_page", Value::from(cfg.recipes)),
        ("gen_latency_ms", Value::from(cfg.gen_latency_ms as usize)),
        ("wall_qps", Value::from(r3(s.wall_qps))),
        ("p50_ms", Value::from(r3(s.p50_ms))),
        ("p99_ms", Value::from(r3(s.p99_ms))),
        ("modelled_qps", Value::from(r3(s.modelled_qps))),
        ("alloc_bytes_steady", Value::from(0usize)),
    ])
}

/// Assemble the PR 6 report from both E17 sweeps and the E18 transport
/// comparison.
pub fn pr6_report(
    kcfg: KernelConfig,
    kernel: &[KernelSample],
    scfg: ServingConfig,
    serving: &[ServingSample],
    tcfg: TransportConfig,
    transports: &[TransportSample],
) -> Value {
    let records: Vec<Value> = kernel
        .iter()
        .map(|s| kernel_record(kcfg, s))
        .chain(serving.iter().map(|s| serving_record(scfg, s)))
        .chain(transports.iter().map(|s| transport_record(tcfg, s)))
        .collect();
    let widest = |speedups: Vec<(usize, f64)>| {
        speedups
            .into_iter()
            .max_by_key(|&(tiles, _)| tiles)
            .map_or(1.0, |(_, s)| s)
    };
    let kernel_speedup = widest(kernel.iter().map(|s| (s.tiles, s.speedup)).collect());
    let serving_speedup = widest(
        serving
            .iter()
            .map(|s| (s.kernel_tiles, s.speedup))
            .collect(),
    );
    // Modelled h3-over-h2 page rate: exactly `recipes_per_page` when both
    // transports are present (h3 overlaps what h2 serializes).
    let qps_over = |t: sww_core::TransportKind| {
        transports
            .iter()
            .find(|s| s.transport == t)
            .map(|s| s.modelled_qps)
    };
    let transport_speedup = match (
        qps_over(sww_core::TransportKind::H2),
        qps_over(sww_core::TransportKind::H3),
    ) {
        (Some(h2), Some(h3)) if h2 > 0.0 => h3 / h2,
        _ => 1.0,
    };
    let steady: u64 = kernel.iter().map(|s| s.alloc_bytes).sum::<u64>()
        + serving.iter().map(|s| s.alloc_bytes).sum::<u64>();
    Value::object([
        ("schema", Value::from(PR6_SCHEMA)),
        ("records", Value::Array(records)),
        (
            "summary",
            Value::object([
                ("kernel_speedup_batch8", Value::from(r3(kernel_speedup))),
                ("serving_speedup_batch8", Value::from(r3(serving_speedup))),
                ("transport_h3_speedup", Value::from(r3(transport_speedup))),
                ("steady_state_alloc_bytes", Value::from(steady as usize)),
            ]),
        ),
    ])
}

/// Serialize a report for writing to disk (pretty, trailing newline —
/// diff-friendly for the checked-in baseline).
pub fn render(report: &Value) -> String {
    let mut out = sww_json::to_string_pretty(report);
    out.push('\n');
    out
}

/// A record's identity within a report: `(experiment, kernel_tiles,
/// transport)` — the transport component is empty for the E17 kernel and
/// serving records, which exist once per lane count.
fn record_key(record: &Value) -> (String, u64, String) {
    (
        record["experiment"].as_str().unwrap_or("?").to_owned(),
        record["kernel_tiles"].as_u64().unwrap_or(0),
        record["transport"].as_str().unwrap_or("").to_owned(),
    )
}

/// Gate a fresh report against the checked-in baseline.
///
/// Checks, in order:
///
/// 1. both reports carry the [`PR6_SCHEMA`] tag;
/// 2. every baseline record still exists in `current`;
/// 3. each record's **modelled** throughput is within `tolerance`
///    (fractional, e.g. `0.10`) of the baseline — wall-clock columns are
///    never gated;
/// 4. the current headline speedups clear [`SPEEDUP_FLOOR`];
/// 5. every current record's steady-state allocation counter reads zero.
///
/// Returns the per-check log lines on success, the failure messages
/// otherwise.
pub fn compare(
    baseline: &Value,
    current: &Value,
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for (which, report) in [("baseline", baseline), ("current", current)] {
        if report["schema"].as_str() != Some(PR6_SCHEMA) {
            bad.push(format!("{which}: missing schema tag {PR6_SCHEMA:?}"));
        }
    }
    if !bad.is_empty() {
        return Err(bad);
    }
    let empty = Vec::new();
    let base_records = baseline["records"].as_array().unwrap_or(&empty);
    let cur_records = current["records"].as_array().unwrap_or(&empty);
    for base in base_records {
        let key = record_key(base);
        let Some(cur) = cur_records.iter().find(|r| record_key(r) == key) else {
            bad.push(format!("{key:?}: record missing from current report"));
            continue;
        };
        let base_qps = base["modelled_qps"].as_f64().unwrap_or(0.0);
        let cur_qps = cur["modelled_qps"].as_f64().unwrap_or(0.0);
        if cur_qps < base_qps * (1.0 - tolerance) {
            bad.push(format!(
                "{key:?}: modelled throughput regressed {base_qps:.3} -> {cur_qps:.3} \
                 (> {:.0}% drop)",
                tolerance * 100.0
            ));
        } else {
            ok.push(format!(
                "{key:?}: modelled qps {cur_qps:.3} vs baseline {base_qps:.3}"
            ));
        }
        let alloc = cur["alloc_bytes_steady"].as_u64().unwrap_or(u64::MAX);
        if alloc != 0 {
            bad.push(format!(
                "{key:?}: steady state allocated {alloc} fresh pool bytes"
            ));
        }
    }
    for headline in [
        "kernel_speedup_batch8",
        "serving_speedup_batch8",
        "transport_h3_speedup",
    ] {
        let speedup = current["summary"][headline].as_f64().unwrap_or(0.0);
        if speedup < SPEEDUP_FLOOR {
            bad.push(format!(
                "summary.{headline}: {speedup:.2}x below the {SPEEDUP_FLOOR}x floor"
            ));
        } else {
            ok.push(format!("summary.{headline}: {speedup:.2}x"));
        }
    }
    if bad.is_empty() {
        Ok(ok)
    } else {
        Err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_kernel(tiles: usize, rate: f64, speedup: f64) -> KernelSample {
        KernelSample {
            tiles,
            wall_qps: 100.0,
            p50_ms: 5.0,
            p99_ms: 9.0,
            modelled_rate: rate,
            speedup,
            alloc_bytes: 0,
        }
    }

    fn fake_serving(tiles: usize, rate: f64, speedup: f64) -> ServingSample {
        ServingSample {
            kernel_tiles: tiles,
            wall_qps: 50.0,
            p50_ms: 20.0,
            p99_ms: 40.0,
            modelled_rate: rate,
            speedup,
            mean_batch: 8.0,
            alloc_bytes: 0,
        }
    }

    fn fake_transport(t: sww_core::TransportKind, qps: f64) -> TransportSample {
        TransportSample {
            transport: t,
            p50_ms: 1000.0 / qps,
            p99_ms: 1200.0 / qps,
            wall_qps: qps,
            modelled_qps: qps,
            requests: 12,
            bodies: Default::default(),
        }
    }

    fn fake_transports() -> Vec<TransportSample> {
        vec![
            fake_transport(sww_core::TransportKind::H2, 10.0),
            fake_transport(sww_core::TransportKind::H3, 40.0),
        ]
    }

    fn report() -> Value {
        pr6_report(
            KernelConfig::default(),
            &[fake_kernel(1, 4.0, 1.0), fake_kernel(8, 12.4, 3.1)],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &fake_transports(),
        )
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let r = report();
        let text = render(&r);
        let back = sww_json::parse(&text).expect("render must emit valid JSON");
        assert_eq!(back, r);
        assert_eq!(back["schema"].as_str(), Some(PR6_SCHEMA));
        assert_eq!(back["records"].as_array().unwrap().len(), 6);
        assert_eq!(back["summary"]["kernel_speedup_batch8"].as_f64(), Some(3.1));
        assert_eq!(back["summary"]["transport_h3_speedup"].as_f64(), Some(4.0));
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = report();
        let checks = compare(&r, &r, 0.10).expect("self-compare must pass");
        assert!(checks.iter().any(|l| l.contains("kernel_speedup")));
    }

    #[test]
    fn modelled_regression_fails_the_gate() {
        let base = report();
        let cur = pr6_report(
            KernelConfig::default(),
            // 20% modelled regression on the 8-lane row.
            &[fake_kernel(1, 4.0, 1.0), fake_kernel(8, 9.9, 2.5)],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &fake_transports(),
        );
        let failures = compare(&base, &cur, 0.10).expect_err("regression must fail");
        assert!(
            failures.iter().any(|f| f.contains("regressed")),
            "{failures:?}"
        );
    }

    #[test]
    fn speedup_below_floor_fails_the_gate() {
        let base = report();
        let cur = pr6_report(
            KernelConfig::default(),
            &[fake_kernel(1, 4.0, 1.0), fake_kernel(8, 5.0, 1.25)],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &fake_transports(),
        );
        let failures = compare(&base, &cur, 0.99).expect_err("floor must bind");
        assert!(
            failures.iter().any(|f| f.contains("below the 1.5x floor")),
            "{failures:?}"
        );
    }

    #[test]
    fn steady_state_allocation_fails_the_gate() {
        let base = report();
        let mut leaky = fake_kernel(8, 12.4, 3.1);
        leaky.alloc_bytes = 4096;
        let cur = pr6_report(
            KernelConfig::default(),
            &[fake_kernel(1, 4.0, 1.0), leaky],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &fake_transports(),
        );
        let failures = compare(&base, &cur, 0.10).expect_err("allocation must fail");
        assert!(
            failures.iter().any(|f| f.contains("4096 fresh pool bytes")),
            "{failures:?}"
        );
    }

    #[test]
    fn transport_rows_are_distinct_records_and_gate_the_h3_speedup() {
        let base = report();
        // Dropping the h3 row must fail record presence, and with only h2
        // left the headline collapses to 1.0 — below the floor.
        let cur = pr6_report(
            KernelConfig::default(),
            &[fake_kernel(1, 4.0, 1.0), fake_kernel(8, 12.4, 3.1)],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &[fake_transport(sww_core::TransportKind::H2, 10.0)],
        );
        let failures = compare(&base, &cur, 0.10).expect_err("missing h3 row must fail");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("h3") && f.contains("missing")),
            "{failures:?}"
        );
        assert!(
            failures
                .iter()
                .any(|f| f.contains("transport_h3_speedup") && f.contains("below")),
            "{failures:?}"
        );
    }

    #[test]
    fn missing_record_fails_the_gate() {
        let base = report();
        let cur = pr6_report(
            KernelConfig::default(),
            &[fake_kernel(1, 4.0, 1.0)],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &fake_transports(),
        );
        let failures = compare(&base, &cur, 0.10).expect_err("missing record must fail");
        assert!(
            failures.iter().any(|f| f.contains("missing")),
            "{failures:?}"
        );
    }
}
