//! Machine-readable bench reports (`BENCH_*.json`) and the regression
//! gate that compares a fresh run against a checked-in baseline.
//!
//! The PR 6 report captures the E17 tiled-kernel sweeps, the E18
//! transport shoot-out, the E19 edge-cluster scaling sweep, the E20
//! small-world workload sweep, and the E21 edge-resilience scenarios in
//! the `sww-bench-pr6/5` schema (documented in PERFORMANCE.md). Two
//! kinds of numbers live side by side and are treated differently:
//!
//! * **Modelled** throughput (`modelled_qps`, `speedup`) comes from the
//!   deterministic cost model, so it is bit-reproducible across hosts —
//!   the regression gate compares these.
//! * **Wall-clock** numbers (`wall_qps`, `p50_ms`, `p99_ms`) are
//!   host-shaped and noisy — recorded for the perf trajectory, never
//!   gated.
//!
//! [`compare`] is the gate `ci.sh bench` runs: every baseline record must
//! still exist, modelled throughput must be within tolerance, the
//! headline speedups must clear the PR 6 floor, the steady-state
//! allocation counters must read zero, the E19 global hit rate must
//! strictly increase with node count, the chaos node-kill must lose
//! zero responses with byte-identical payloads, the E20 workload hit
//! rate must strictly increase with graph clustering while the modelled
//! p99 stays under its deadline, the E20 replay must be deterministic,
//! the E21 replicated failover must cost zero regenerations (and the
//! unreplicated control at least one), and the E21 gossip partition
//! must heal within its deterministic round bound.

use crate::experiments::edge::{EdgeChaosOutcome, EdgeClusterConfig, EdgeSample};
use crate::experiments::kernel::{KernelConfig, KernelSample, ServingConfig, ServingSample};
use crate::experiments::resilience::{FailoverOutcome, PartitionOutcome};
use crate::experiments::transport::{TransportConfig, TransportSample};
use crate::experiments::workload::{DeterminismOutcome, E20Config, LiveSample, WorkloadRow};
use sww_json::Value;

/// Schema tag every PR 6 report carries. `/2` added the E18
/// `page_load_transport` records and the `transport_h3_speedup` headline;
/// `/3` added the E19 `edge_cluster` scaling records (keyed by `nodes`)
/// and the `edge_chaos` node-kill record; `/4` added the E20
/// `smallworld_modelled` records (keyed by `clustering`), the
/// `workload_replay` scorecards, and the `workload_determinism` witness;
/// `/5` added the E21 `edge_resilience` records (keyed by `replication`)
/// and the `gossip_partition` heal witness.
pub const PR6_SCHEMA: &str = "sww-bench-pr6/5";

/// Modelled-speedup floor from the PR 6 acceptance criterion: the tiled
/// kernel must buy ≥ 1.5× at batch 8.
pub const SPEEDUP_FLOOR: f64 = 1.5;

/// Round to 3 decimals: keeps checked-in baselines readable while staying
/// far above the cost model's discrimination threshold.
fn r3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn kernel_record(cfg: KernelConfig, s: &KernelSample) -> Value {
    Value::object([
        ("experiment", Value::from("kernel_denoise")),
        ("kernel_tiles", Value::from(s.tiles)),
        ("batch", Value::from(cfg.batch)),
        ("workers", Value::from(s.tiles.saturating_sub(1))),
        ("wall_qps", Value::from(r3(s.wall_qps))),
        ("p50_ms", Value::from(r3(s.p50_ms))),
        ("p99_ms", Value::from(r3(s.p99_ms))),
        ("modelled_qps", Value::from(r3(s.modelled_rate))),
        ("speedup", Value::from(r3(s.speedup))),
        ("alloc_bytes_steady", Value::from(s.alloc_bytes as usize)),
    ])
}

fn serving_record(cfg: ServingConfig, s: &ServingSample) -> Value {
    Value::object([
        ("experiment", Value::from("serve_batched")),
        ("kernel_tiles", Value::from(s.kernel_tiles)),
        ("batch", Value::from(cfg.threads)),
        ("workers", Value::from(cfg.threads)),
        ("wall_qps", Value::from(r3(s.wall_qps))),
        ("p50_ms", Value::from(r3(s.p50_ms))),
        ("p99_ms", Value::from(r3(s.p99_ms))),
        ("modelled_qps", Value::from(r3(s.modelled_rate))),
        ("speedup", Value::from(r3(s.speedup))),
        ("mean_batch", Value::from(r3(s.mean_batch))),
        ("alloc_bytes_steady", Value::from(s.alloc_bytes as usize)),
    ])
}

/// One E18 row: page-load rate over one transport. `modelled_qps` comes
/// from the injected latency alone (`1000/(K·W)` for h2, `1000/W` for
/// h3) so the gate compares exact numbers; the wall-clock percentiles
/// ride along ungated. The pipes are pooled end to end, so the
/// steady-state allocation invariant holds here too.
fn transport_record(cfg: TransportConfig, s: &TransportSample) -> Value {
    Value::object([
        ("experiment", Value::from("page_load_transport")),
        ("transport", Value::from(s.transport.label())),
        ("kernel_tiles", Value::from(1usize)),
        ("recipes_per_page", Value::from(cfg.recipes)),
        ("gen_latency_ms", Value::from(cfg.gen_latency_ms as usize)),
        ("wall_qps", Value::from(r3(s.wall_qps))),
        ("p50_ms", Value::from(r3(s.p50_ms))),
        ("p99_ms", Value::from(r3(s.p99_ms))),
        ("modelled_qps", Value::from(r3(s.modelled_qps))),
        ("alloc_bytes_steady", Value::from(0usize)),
    ])
}

/// One E19 row: the edge cluster at one node count. `modelled_qps` is
/// ring ownership × the cost model — deterministic, gated; the hit rate
/// is also deterministic (request volume and prompt pool are both fixed
/// by the config) and gated for strict monotonicity across node counts.
fn edge_record(cfg: &EdgeClusterConfig, s: &EdgeSample) -> Value {
    Value::object([
        ("experiment", Value::from("edge_cluster")),
        ("nodes", Value::from(s.nodes)),
        ("kernel_tiles", Value::from(1usize)),
        ("prompts", Value::from(cfg.prompts)),
        ("requests", Value::from(s.requests as usize)),
        ("generations", Value::from(s.generations as usize)),
        ("hit_rate", Value::from(r3(s.hit_rate))),
        ("peer_fills", Value::from(s.peer_fills as usize)),
        ("max_owned", Value::from(s.max_owned)),
        ("wall_qps", Value::from(r3(s.wall_qps))),
        ("p50_ms", Value::from(r3(s.p50_ms))),
        ("p99_ms", Value::from(r3(s.p99_ms))),
        ("modelled_qps", Value::from(r3(s.modelled_qps))),
        ("alloc_bytes_steady", Value::from(0usize)),
    ])
}

/// The E19 chaos node-kill outcome. `modelled_qps` is pinned at zero —
/// the chaos run is gated on its own invariants (`lost == 0`,
/// `byte_identical`), not on throughput.
fn chaos_record(o: &EdgeChaosOutcome) -> Value {
    Value::object([
        ("experiment", Value::from("edge_chaos")),
        ("nodes", Value::from(o.nodes)),
        ("kernel_tiles", Value::from(1usize)),
        ("requests", Value::from(o.requests as usize)),
        ("completed", Value::from(o.completed as usize)),
        ("lost", Value::from(o.lost as usize)),
        ("failovers", Value::from(o.failovers as usize)),
        ("retries", Value::from(o.retries as usize)),
        ("byte_identical", Value::from(o.byte_identical)),
        ("modelled_qps", Value::from(0.0)),
        ("alloc_bytes_steady", Value::from(0usize)),
    ])
}

/// One E21 failover row: the owner-kill scenario at one replication
/// level. `modelled_qps` is pinned at zero — the scenario is gated on
/// its own invariants (`lost == 0`, `byte_identical`, `regenerations`
/// exactly zero with replicas and nonzero without), not on throughput.
fn resilience_record(o: &FailoverOutcome) -> Value {
    Value::object([
        ("experiment", Value::from("edge_resilience")),
        ("nodes", Value::from(o.nodes)),
        ("replication", Value::from(o.replication)),
        ("kernel_tiles", Value::from(1usize)),
        ("requests", Value::from(o.requests as usize)),
        ("completed", Value::from(o.completed as usize)),
        ("lost", Value::from(o.lost as usize)),
        ("byte_identical", Value::from(o.byte_identical)),
        ("regenerations", Value::from(o.regenerations as usize)),
        ("replica_pushes", Value::from(o.replica_pushes as usize)),
        ("replica_hits", Value::from(o.replica_hits as usize)),
        ("modelled_qps", Value::from(0.0)),
        ("alloc_bytes_steady", Value::from(0usize)),
    ])
}

/// The E21 gossip partition-heal witness: the partition must be
/// noticed, the heal must converge within the deterministic bound, and
/// two runs from the same seed must agree round for round.
fn partition_record(o: &PartitionOutcome) -> Value {
    Value::object([
        ("experiment", Value::from("gossip_partition")),
        ("nodes", Value::from(o.nodes)),
        ("kernel_tiles", Value::from(1usize)),
        ("diverged", Value::from(o.diverged)),
        ("rounds_to_heal", Value::from(o.rounds_to_heal as usize)),
        ("bound", Value::from(o.bound as usize)),
        ("converged", Value::from(o.converged)),
        ("deterministic", Value::from(o.deterministic)),
        ("modelled_qps", Value::from(0.0)),
        ("alloc_bytes_steady", Value::from(0usize)),
    ])
}

/// One E20 modelled row: the small-world workload at one clustering
/// coefficient. Every column is a pure function of the seed (graph,
/// popularity, walks, arrivals, and the discrete-event queue all derive
/// from it), so the hit rate and the modelled p99 are gated exactly.
fn workload_record(cfg: &E20Config, r: &WorkloadRow) -> Value {
    Value::object([
        ("experiment", Value::from("smallworld_modelled")),
        ("clustering", Value::from(r3(r.clustering))),
        ("beta", Value::from(r3(r.beta))),
        ("nodes", Value::from(cfg.cluster_nodes)),
        ("transport", Value::from("modelled")),
        ("kernel_tiles", Value::from(1usize)),
        ("requests", Value::from(r.slo.requests as usize)),
        ("unique_pages", Value::from(r.slo.unique_pages)),
        ("hit_rate", Value::from(r3(r.slo.hit_rate))),
        ("deadline_ms", Value::from(r3(cfg.deadline_ms))),
        ("p99_ms", Value::from(r3(r.slo.p99_ms))),
        ("mean_ms", Value::from(r3(r.slo.mean_ms))),
        ("modelled_qps", Value::from(r3(r.slo.offered_qps))),
        ("alloc_bytes_steady", Value::from(0usize)),
    ])
}

/// One E20 live replay scorecard. Wall-clock columns ride along ungated
/// (`modelled_qps` is pinned at zero so the throughput check is inert);
/// the deterministic columns (`generations`, `hit_rate`) are covered by
/// the determinism record's digest equality.
fn replay_record(clustering: f64, s: &LiveSample) -> Value {
    let card = &s.outcome.scorecard;
    Value::object([
        ("experiment", Value::from("workload_replay")),
        ("transport", Value::from(s.target.as_str())),
        ("clustering", Value::from(r3(clustering))),
        ("nodes", Value::from(s.nodes)),
        ("kernel_tiles", Value::from(1usize)),
        ("requests", Value::from(card.requests as usize)),
        ("ok", Value::from(card.ok as usize)),
        ("shed", Value::from(card.shed as usize)),
        ("deadline_hits", Value::from(card.deadline as usize)),
        ("errors", Value::from(card.errors as usize)),
        ("retries", Value::from(card.retries as usize)),
        ("generations", Value::from(s.outcome.generations as usize)),
        ("coalesced", Value::from(s.outcome.coalesced as usize)),
        ("hit_rate", Value::from(r3(s.outcome.hit_rate))),
        ("wall_qps", Value::from(r3(card.qps()))),
        ("p50_ms", Value::from(r3(card.p50_ms()))),
        ("p99_ms", Value::from(r3(card.p99_ms()))),
        ("modelled_qps", Value::from(0.0)),
        ("alloc_bytes_steady", Value::from(0usize)),
    ])
}

/// The E20 replay-determinism witness: two independent pipeline runs
/// (trace generation included) plus the single-vs-edge payload digest
/// comparison, each reduced to a gated boolean.
fn determinism_record(d: &DeterminismOutcome) -> Value {
    Value::object([
        ("experiment", Value::from("workload_determinism")),
        ("transport", Value::from("single")),
        ("nodes", Value::from(1usize)),
        ("kernel_tiles", Value::from(1usize)),
        ("trace_match", Value::from(d.trace_match)),
        ("response_match", Value::from(d.response_match)),
        (
            "cross_target_identical",
            Value::from(d.cross_target_identical),
        ),
        ("modelled_qps", Value::from(0.0)),
        ("alloc_bytes_steady", Value::from(0usize)),
    ])
}

/// The E19 inputs to a report: sweep config, per-width samples, and the
/// chaos node-kill outcome — grouped so `pr6_report` keeps a sane arity
/// as experiments accumulate.
pub struct EdgeSection<'a> {
    /// Sweep configuration (prompt pool, threads, replicas).
    pub cfg: &'a EdgeClusterConfig,
    /// One sample per node count, in sweep order.
    pub sweep: &'a [EdgeSample],
    /// The node-kill outcome.
    pub chaos: &'a EdgeChaosOutcome,
}

/// The E21 inputs to a report: one failover outcome per replication
/// level plus the gossip partition-heal witness.
pub struct ResilienceSection<'a> {
    /// One outcome per replication level, in sweep order.
    pub failover: &'a [FailoverOutcome],
    /// The partition-heal outcome.
    pub partition: &'a PartitionOutcome,
}

/// The E20 inputs to a report: sweep config, modelled rows, live replay
/// scorecards (with the clustering coefficient of the live workload's
/// graph), and the determinism witness.
pub struct WorkloadSection<'a> {
    /// Sweep configuration (betas, graph shape, cache, deadline).
    pub cfg: &'a E20Config,
    /// One modelled row per `β`, in sweep order.
    pub modelled: &'a [WorkloadRow],
    /// Live replay scorecards (single / h3 / edge).
    pub live: &'a [LiveSample],
    /// Clustering coefficient of the graph the live replays browsed.
    pub live_clustering: f64,
    /// The replay-determinism witness.
    pub determinism: &'a DeterminismOutcome,
}

/// Assemble the PR 6 report from both E17 sweeps, the E18 transport
/// comparison, the E19 edge-cluster sweep + chaos outcome, the E20
/// small-world workload sweep, and the E21 resilience scenarios.
#[allow(clippy::too_many_arguments)]
pub fn pr6_report(
    kcfg: KernelConfig,
    kernel: &[KernelSample],
    scfg: ServingConfig,
    serving: &[ServingSample],
    tcfg: TransportConfig,
    transports: &[TransportSample],
    edge: EdgeSection<'_>,
    workload: WorkloadSection<'_>,
    resilience: ResilienceSection<'_>,
) -> Value {
    let records: Vec<Value> = kernel
        .iter()
        .map(|s| kernel_record(kcfg, s))
        .chain(serving.iter().map(|s| serving_record(scfg, s)))
        .chain(transports.iter().map(|s| transport_record(tcfg, s)))
        .chain(edge.sweep.iter().map(|s| edge_record(edge.cfg, s)))
        .chain(std::iter::once(chaos_record(edge.chaos)))
        .chain(
            workload
                .modelled
                .iter()
                .map(|r| workload_record(workload.cfg, r)),
        )
        .chain(
            workload
                .live
                .iter()
                .map(|s| replay_record(workload.live_clustering, s)),
        )
        .chain(std::iter::once(determinism_record(workload.determinism)))
        .chain(resilience.failover.iter().map(resilience_record))
        .chain(std::iter::once(partition_record(resilience.partition)))
        .collect();
    let widest = |speedups: Vec<(usize, f64)>| {
        speedups
            .into_iter()
            .max_by_key(|&(tiles, _)| tiles)
            .map_or(1.0, |(_, s)| s)
    };
    let kernel_speedup = widest(kernel.iter().map(|s| (s.tiles, s.speedup)).collect());
    let serving_speedup = widest(
        serving
            .iter()
            .map(|s| (s.kernel_tiles, s.speedup))
            .collect(),
    );
    // Modelled h3-over-h2 page rate: exactly `recipes_per_page` when both
    // transports are present (h3 overlaps what h2 serializes).
    let qps_over = |t: sww_core::TransportKind| {
        transports
            .iter()
            .find(|s| s.transport == t)
            .map(|s| s.modelled_qps)
    };
    let transport_speedup = match (
        qps_over(sww_core::TransportKind::H2),
        qps_over(sww_core::TransportKind::H3),
    ) {
        (Some(h2), Some(h3)) if h2 > 0.0 => h3 / h2,
        _ => 1.0,
    };
    let steady: u64 = kernel.iter().map(|s| s.alloc_bytes).sum::<u64>()
        + serving.iter().map(|s| s.alloc_bytes).sum::<u64>();
    // Peak global hit rate: the widest cluster in the sweep.
    let edge_hit_rate = edge
        .sweep
        .iter()
        .max_by_key(|s| s.nodes)
        .map_or(0.0, |s| s.hit_rate);
    // E20 headline: the hit rate of the most clustered workload.
    let workload_hit_rate = workload
        .modelled
        .iter()
        .max_by(|a, b| a.clustering.total_cmp(&b.clustering))
        .map_or(0.0, |r| r.slo.hit_rate);
    Value::object([
        ("schema", Value::from(PR6_SCHEMA)),
        ("records", Value::Array(records)),
        (
            "summary",
            Value::object([
                ("kernel_speedup_batch8", Value::from(r3(kernel_speedup))),
                ("serving_speedup_batch8", Value::from(r3(serving_speedup))),
                ("transport_h3_speedup", Value::from(r3(transport_speedup))),
                ("edge_hit_rate_peak", Value::from(r3(edge_hit_rate))),
                ("edge_chaos_lost", Value::from(edge.chaos.lost as usize)),
                (
                    "workload_hit_rate_clustered",
                    Value::from(r3(workload_hit_rate)),
                ),
                (
                    "workload_replay_deterministic",
                    Value::from(workload.determinism.deterministic()),
                ),
                (
                    // Regenerations at the highest replication level —
                    // zero when replicas fully absorb the owner kill.
                    "resilience_replicated_regen",
                    Value::from(
                        resilience
                            .failover
                            .iter()
                            .max_by_key(|o| o.replication)
                            .map_or(0, |o| o.regenerations as usize),
                    ),
                ),
                (
                    "gossip_heal_rounds",
                    Value::from(resilience.partition.rounds_to_heal as usize),
                ),
                ("steady_state_alloc_bytes", Value::from(steady as usize)),
            ]),
        ),
    ])
}

/// Serialize a report for writing to disk (pretty, trailing newline —
/// diff-friendly for the checked-in baseline).
pub fn render(report: &Value) -> String {
    let mut out = sww_json::to_string_pretty(report);
    out.push('\n');
    out
}

/// A record's identity within a report: `(experiment, kernel_tiles,
/// transport, nodes, clustering, replication)` — the transport component
/// is empty for the E17 kernel and serving records (which exist once per
/// lane count), the nodes component is zero for everything but the E19
/// edge records (which exist once per cluster size), the clustering
/// component is empty for everything but the E20 workload records (which
/// exist once per graph topology), and the replication component is zero
/// for everything but the E21 resilience records (which exist once per
/// replication level).
fn record_key(record: &Value) -> (String, u64, String, u64, String, u64) {
    (
        record["experiment"].as_str().unwrap_or("?").to_owned(),
        record["kernel_tiles"].as_u64().unwrap_or(0),
        record["transport"].as_str().unwrap_or("").to_owned(),
        record["nodes"].as_u64().unwrap_or(0),
        record["clustering"]
            .as_f64()
            .map(|c| format!("{c:.3}"))
            .unwrap_or_default(),
        record["replication"].as_u64().unwrap_or(0),
    )
}

/// Gate a fresh report against the checked-in baseline.
///
/// Checks, in order:
///
/// 1. both reports carry the [`PR6_SCHEMA`] tag;
/// 2. every baseline record still exists in `current`;
/// 3. each record's **modelled** throughput is within `tolerance`
///    (fractional, e.g. `0.10`) of the baseline — wall-clock columns are
///    never gated;
/// 4. the current headline speedups clear [`SPEEDUP_FLOOR`];
/// 5. every current record's steady-state allocation counter reads zero;
/// 6. the E19 `edge_cluster` hit rate **strictly increases** with node
///    count — the cluster-wide exactly-once property in one number;
/// 7. every `edge_chaos` record lost zero responses and kept payloads
///    byte-identical to the single-node baseline;
/// 8. the E20 `smallworld_modelled` hit rate **strictly increases** with
///    graph clustering (locality is what the bounded cache converts into
///    hits) and every modelled p99 stays under its recorded deadline;
/// 9. every `workload_determinism` record witnessed bit-identical traces,
///    matching response digests, and topology-independent payloads;
/// 10. every E21 `edge_resilience` record lost zero responses with
///     byte-identical payloads, replicated runs (`replication ≥ 2`) cost
///     **zero** regenerations while serving from replicas, and the
///     unreplicated control re-rendered at least once — the contrast
///     that proves replicas carried the failover;
/// 11. every `gossip_partition` record diverged under the partition,
///     healed to a converged view within its deterministic round bound,
///     and replayed identically from the same seed.
///
/// Returns the per-check log lines on success, the failure messages
/// otherwise.
pub fn compare(
    baseline: &Value,
    current: &Value,
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for (which, report) in [("baseline", baseline), ("current", current)] {
        if report["schema"].as_str() != Some(PR6_SCHEMA) {
            bad.push(format!("{which}: missing schema tag {PR6_SCHEMA:?}"));
        }
    }
    if !bad.is_empty() {
        return Err(bad);
    }
    let empty = Vec::new();
    let base_records = baseline["records"].as_array().unwrap_or(&empty);
    let cur_records = current["records"].as_array().unwrap_or(&empty);
    for base in base_records {
        let key = record_key(base);
        let Some(cur) = cur_records.iter().find(|r| record_key(r) == key) else {
            bad.push(format!("{key:?}: record missing from current report"));
            continue;
        };
        let base_qps = base["modelled_qps"].as_f64().unwrap_or(0.0);
        let cur_qps = cur["modelled_qps"].as_f64().unwrap_or(0.0);
        if cur_qps < base_qps * (1.0 - tolerance) {
            bad.push(format!(
                "{key:?}: modelled throughput regressed {base_qps:.3} -> {cur_qps:.3} \
                 (> {:.0}% drop)",
                tolerance * 100.0
            ));
        } else {
            ok.push(format!(
                "{key:?}: modelled qps {cur_qps:.3} vs baseline {base_qps:.3}"
            ));
        }
        let alloc = cur["alloc_bytes_steady"].as_u64().unwrap_or(u64::MAX);
        if alloc != 0 {
            bad.push(format!(
                "{key:?}: steady state allocated {alloc} fresh pool bytes"
            ));
        }
    }
    // E19: the global hit rate must strictly increase with node count —
    // if it plateaus, some node generated a recipe it did not own and the
    // cluster-wide single-flight is broken.
    let mut edge_rows: Vec<(u64, f64)> = cur_records
        .iter()
        .filter(|r| r["experiment"].as_str() == Some("edge_cluster"))
        .map(|r| {
            (
                r["nodes"].as_u64().unwrap_or(0),
                r["hit_rate"].as_f64().unwrap_or(0.0),
            )
        })
        .collect();
    edge_rows.sort_by_key(|&(nodes, _)| nodes);
    for pair in edge_rows.windows(2) {
        let ((n0, h0), (n1, h1)) = (pair[0], pair[1]);
        if h1 <= h0 {
            bad.push(format!(
                "edge_cluster: hit rate must strictly increase with nodes \
                 ({n0} nodes: {h0:.3} -> {n1} nodes: {h1:.3})"
            ));
        } else {
            ok.push(format!(
                "edge_cluster: hit rate {h0:.3} @ {n0} nodes < {h1:.3} @ {n1} nodes"
            ));
        }
    }
    // E19 chaos: a node-kill may cost retries, never responses or bytes.
    for chaos in cur_records
        .iter()
        .filter(|r| r["experiment"].as_str() == Some("edge_chaos"))
    {
        let nodes = chaos["nodes"].as_u64().unwrap_or(0);
        let lost = chaos["lost"].as_u64().unwrap_or(u64::MAX);
        if lost != 0 {
            bad.push(format!("edge_chaos @ {nodes} nodes: {lost} lost responses"));
        } else {
            ok.push(format!("edge_chaos @ {nodes} nodes: zero lost responses"));
        }
        if chaos["byte_identical"].as_bool() != Some(true) {
            bad.push(format!(
                "edge_chaos @ {nodes} nodes: payloads diverged from the 1-node baseline"
            ));
        } else {
            ok.push(format!(
                "edge_chaos @ {nodes} nodes: payloads byte-identical"
            ));
        }
    }
    // E20: the workload hit rate must strictly increase with graph
    // clustering — clustered neighbourhoods keep random-walk revisits
    // inside the bounded LRU; if the curve flattens, the cache stopped
    // converting locality into hits. The modelled p99 must also stay
    // under the deadline each record carries.
    let mut workload_rows: Vec<(f64, f64)> = cur_records
        .iter()
        .filter(|r| r["experiment"].as_str() == Some("smallworld_modelled"))
        .map(|r| {
            (
                r["clustering"].as_f64().unwrap_or(0.0),
                r["hit_rate"].as_f64().unwrap_or(0.0),
            )
        })
        .collect();
    workload_rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    for pair in workload_rows.windows(2) {
        let ((c0, h0), (c1, h1)) = (pair[0], pair[1]);
        if h1 <= h0 {
            bad.push(format!(
                "smallworld_modelled: hit rate must strictly increase with clustering \
                 (C {c0:.3}: {h0:.3} -> C {c1:.3}: {h1:.3})"
            ));
        } else {
            ok.push(format!(
                "smallworld_modelled: hit rate {h0:.3} @ C {c0:.3} < {h1:.3} @ C {c1:.3}"
            ));
        }
    }
    for row in cur_records
        .iter()
        .filter(|r| r["experiment"].as_str() == Some("smallworld_modelled"))
    {
        let clustering = row["clustering"].as_f64().unwrap_or(0.0);
        let p99 = row["p99_ms"].as_f64().unwrap_or(f64::MAX);
        let deadline = row["deadline_ms"].as_f64().unwrap_or(0.0);
        if p99 > deadline {
            bad.push(format!(
                "smallworld_modelled @ C {clustering:.3}: modelled p99 {p99:.3} ms \
                 over the {deadline:.0} ms deadline"
            ));
        } else {
            ok.push(format!(
                "smallworld_modelled @ C {clustering:.3}: p99 {p99:.3} ms under \
                 {deadline:.0} ms"
            ));
        }
    }
    // E20 determinism: every witness bit must hold.
    for det in cur_records
        .iter()
        .filter(|r| r["experiment"].as_str() == Some("workload_determinism"))
    {
        for (field, what) in [
            ("trace_match", "trace digests"),
            ("response_match", "response digests"),
            ("cross_target_identical", "cross-topology payloads"),
        ] {
            if det[field].as_bool() != Some(true) {
                bad.push(format!("workload_determinism: {what} diverged"));
            } else {
                ok.push(format!("workload_determinism: {what} agree"));
            }
        }
    }
    // E21 failover: an owner kill may never lose a response or change a
    // byte; with replicas it must also cost zero regenerations, and the
    // unreplicated control must pay at least one — otherwise the gate
    // would pass vacuously on a cluster that never replicated at all.
    for res in cur_records
        .iter()
        .filter(|r| r["experiment"].as_str() == Some("edge_resilience"))
    {
        let replication = res["replication"].as_u64().unwrap_or(0);
        let lost = res["lost"].as_u64().unwrap_or(u64::MAX);
        let regen = res["regenerations"].as_u64().unwrap_or(u64::MAX);
        let hits = res["replica_hits"].as_u64().unwrap_or(0);
        if lost != 0 {
            bad.push(format!(
                "edge_resilience @ replication {replication}: {lost} lost responses"
            ));
        } else {
            ok.push(format!(
                "edge_resilience @ replication {replication}: zero lost responses"
            ));
        }
        if res["byte_identical"].as_bool() != Some(true) {
            bad.push(format!(
                "edge_resilience @ replication {replication}: payloads diverged \
                 from the owner's bytes"
            ));
        } else {
            ok.push(format!(
                "edge_resilience @ replication {replication}: payloads byte-identical"
            ));
        }
        if replication >= 2 {
            if regen != 0 {
                bad.push(format!(
                    "edge_resilience @ replication {replication}: owner kill cost \
                     {regen} regenerations (replicas must absorb it)"
                ));
            } else {
                ok.push(format!(
                    "edge_resilience @ replication {replication}: zero regenerations"
                ));
            }
            if hits == 0 {
                bad.push(format!(
                    "edge_resilience @ replication {replication}: no replica hits — \
                     the failover never touched a replica"
                ));
            } else {
                ok.push(format!(
                    "edge_resilience @ replication {replication}: {hits} replica hits"
                ));
            }
        } else if regen == 0 {
            bad.push(format!(
                "edge_resilience @ replication {replication}: the unreplicated \
                 control did not re-render — the contrast is vacuous"
            ));
        } else {
            ok.push(format!(
                "edge_resilience @ replication {replication}: control re-rendered \
                 {regen} time(s)"
            ));
        }
    }
    // E21 partition: noticed, healed in bound, replayed bit-for-bit.
    for part in cur_records
        .iter()
        .filter(|r| r["experiment"].as_str() == Some("gossip_partition"))
    {
        let nodes = part["nodes"].as_u64().unwrap_or(0);
        let rounds = part["rounds_to_heal"].as_u64().unwrap_or(u64::MAX);
        let bound = part["bound"].as_u64().unwrap_or(0);
        for (field, what) in [
            ("diverged", "the partition was never noticed"),
            ("converged", "the heal never converged"),
            ("deterministic", "the heal did not replay deterministically"),
        ] {
            if part[field].as_bool() != Some(true) {
                bad.push(format!("gossip_partition @ {nodes} nodes: {what}"));
            } else {
                ok.push(format!("gossip_partition @ {nodes} nodes: {field}"));
            }
        }
        if rounds > bound {
            bad.push(format!(
                "gossip_partition @ {nodes} nodes: healed in {rounds} rounds, \
                 over the {bound}-round bound"
            ));
        } else {
            ok.push(format!(
                "gossip_partition @ {nodes} nodes: healed in {rounds}/{bound} rounds"
            ));
        }
    }
    for headline in [
        "kernel_speedup_batch8",
        "serving_speedup_batch8",
        "transport_h3_speedup",
    ] {
        let speedup = current["summary"][headline].as_f64().unwrap_or(0.0);
        if speedup < SPEEDUP_FLOOR {
            bad.push(format!(
                "summary.{headline}: {speedup:.2}x below the {SPEEDUP_FLOOR}x floor"
            ));
        } else {
            ok.push(format!("summary.{headline}: {speedup:.2}x"));
        }
    }
    if bad.is_empty() {
        Ok(ok)
    } else {
        Err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sww_workload::replay::{ModelledSlo, ReplayOutcome};
    use sww_workload::scorecard::Scorecard;

    fn fake_row(beta: f64, clustering: f64, hit: f64, p99: f64) -> WorkloadRow {
        WorkloadRow {
            beta,
            clustering,
            mean_path: 3.0,
            slo: ModelledSlo {
                requests: 20_000,
                unique_pages: 192,
                hit_rate: hit,
                offered_qps: 48.0,
                p99_ms: p99,
                mean_ms: 60.0,
            },
        }
    }

    fn fake_live(target: &str, nodes: usize) -> LiveSample {
        let mut card = Scorecard::new(target);
        for _ in 0..12 {
            card.record(200, 900);
        }
        card.finish(0.4);
        LiveSample {
            target: target.into(),
            nodes,
            outcome: ReplayOutcome {
                scorecard: card,
                trace_digest: 11,
                response_digest: 22,
                generations: 5,
                coalesced: 3,
                naive_requests: 6,
                hit_rate: 0.25,
            },
        }
    }

    /// Owned E20 fakes; `section` borrows them into a [`WorkloadSection`].
    struct WlFakes {
        cfg: E20Config,
        rows: Vec<WorkloadRow>,
        live: Vec<LiveSample>,
        det: DeterminismOutcome,
    }

    impl WlFakes {
        fn ok() -> WlFakes {
            WlFakes {
                cfg: E20Config::default(),
                rows: vec![
                    fake_row(0.02, 0.614, 0.780, 1300.0),
                    fake_row(0.20, 0.367, 0.744, 1800.0),
                    fake_row(1.00, 0.034, 0.730, 1990.0),
                ],
                live: vec![
                    fake_live("single", 1),
                    fake_live("h3", 1),
                    fake_live("edge4", 4),
                ],
                det: DeterminismOutcome {
                    trace_match: true,
                    response_match: true,
                    cross_target_identical: true,
                },
            }
        }

        fn section(&self) -> WorkloadSection<'_> {
            WorkloadSection {
                cfg: &self.cfg,
                modelled: &self.rows,
                live: &self.live,
                live_clustering: 0.614,
                determinism: &self.det,
            }
        }
    }

    fn fake_kernel(tiles: usize, rate: f64, speedup: f64) -> KernelSample {
        KernelSample {
            tiles,
            wall_qps: 100.0,
            p50_ms: 5.0,
            p99_ms: 9.0,
            modelled_rate: rate,
            speedup,
            alloc_bytes: 0,
        }
    }

    fn fake_serving(tiles: usize, rate: f64, speedup: f64) -> ServingSample {
        ServingSample {
            kernel_tiles: tiles,
            wall_qps: 50.0,
            p50_ms: 20.0,
            p99_ms: 40.0,
            modelled_rate: rate,
            speedup,
            mean_batch: 8.0,
            alloc_bytes: 0,
        }
    }

    fn fake_transport(t: sww_core::TransportKind, qps: f64) -> TransportSample {
        TransportSample {
            transport: t,
            p50_ms: 1000.0 / qps,
            p99_ms: 1200.0 / qps,
            wall_qps: qps,
            modelled_qps: qps,
            requests: 12,
            bodies: Default::default(),
        }
    }

    fn fake_transports() -> Vec<TransportSample> {
        vec![
            fake_transport(sww_core::TransportKind::H2, 10.0),
            fake_transport(sww_core::TransportKind::H3, 40.0),
        ]
    }

    fn fake_edge(nodes: usize, hit_rate: f64, qps: f64) -> EdgeSample {
        EdgeSample {
            nodes,
            requests: (nodes * 20) as u64,
            generations: 10,
            coalesced: 5,
            peer_fills: 4,
            fill_hits: 6,
            local: 8,
            routed: 6,
            failovers: 0,
            hit_rate,
            max_owned: 6,
            modelled_qps: qps,
            wall_qps: qps * 0.8,
            p50_ms: 3.0,
            p99_ms: 9.0,
        }
    }

    fn fake_edges() -> Vec<EdgeSample> {
        vec![
            fake_edge(1, 0.5, 2.0),
            fake_edge(2, 0.75, 4.0),
            fake_edge(4, 0.875, 8.0),
        ]
    }

    fn fake_chaos(lost: u64, byte_identical: bool) -> EdgeChaosOutcome {
        EdgeChaosOutcome {
            nodes: 3,
            requests: 30,
            completed: 30 - lost,
            lost,
            failovers: 12,
            retries: 14,
            generations: 13,
            byte_identical,
            killed: "n0".into(),
        }
    }

    fn fake_failover(replication: usize, regen: u64, hits: u64) -> FailoverOutcome {
        FailoverOutcome {
            replication,
            nodes: 3,
            requests: 30,
            completed: 30,
            lost: 0,
            byte_identical: true,
            warm_generations: 10,
            regenerations: regen,
            replica_pushes: if replication >= 2 { 10 } else { 0 },
            replica_hits: hits,
            killed: "n0".into(),
        }
    }

    fn fake_partition() -> PartitionOutcome {
        PartitionOutcome {
            nodes: 3,
            diverged: true,
            rounds_to_heal: 7,
            bound: 24,
            converged: true,
            deterministic: true,
            digest: 0xfeed,
        }
    }

    /// Owned E21 fakes; `section` borrows them into a [`ResilienceSection`].
    struct ResFakes {
        failover: Vec<FailoverOutcome>,
        partition: PartitionOutcome,
    }

    impl ResFakes {
        fn ok() -> ResFakes {
            ResFakes {
                failover: vec![fake_failover(1, 4, 0), fake_failover(2, 0, 12)],
                partition: fake_partition(),
            }
        }

        fn section(&self) -> ResilienceSection<'_> {
            ResilienceSection {
                failover: &self.failover,
                partition: &self.partition,
            }
        }
    }

    fn report_with_wl(edge: &[EdgeSample], chaos: &EdgeChaosOutcome, wl: &WlFakes) -> Value {
        pr6_report(
            KernelConfig::default(),
            &[fake_kernel(1, 4.0, 1.0), fake_kernel(8, 12.4, 3.1)],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &fake_transports(),
            EdgeSection {
                cfg: &EdgeClusterConfig::default(),
                sweep: edge,
                chaos,
            },
            wl.section(),
            ResFakes::ok().section(),
        )
    }

    fn report_with(edge: &[EdgeSample], chaos: &EdgeChaosOutcome) -> Value {
        report_with_wl(edge, chaos, &WlFakes::ok())
    }

    fn report_with_res(res: &ResFakes) -> Value {
        pr6_report(
            KernelConfig::default(),
            &[fake_kernel(1, 4.0, 1.0), fake_kernel(8, 12.4, 3.1)],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &fake_transports(),
            EdgeSection {
                cfg: &EdgeClusterConfig::default(),
                sweep: &fake_edges(),
                chaos: &fake_chaos(0, true),
            },
            WlFakes::ok().section(),
            res.section(),
        )
    }

    fn report() -> Value {
        report_with(&fake_edges(), &fake_chaos(0, true))
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let r = report();
        let text = render(&r);
        let back = sww_json::parse(&text).expect("render must emit valid JSON");
        assert_eq!(back, r);
        assert_eq!(back["schema"].as_str(), Some(PR6_SCHEMA));
        // 2 kernel + 2 serving + 2 transport + 3 edge + 1 chaos
        // + 3 workload modelled + 3 workload replay + 1 determinism
        // + 2 edge_resilience + 1 gossip_partition.
        assert_eq!(back["records"].as_array().unwrap().len(), 20);
        assert_eq!(
            back["summary"]["workload_hit_rate_clustered"].as_f64(),
            Some(0.78)
        );
        assert_eq!(
            back["summary"]["workload_replay_deterministic"].as_bool(),
            Some(true)
        );
        assert_eq!(back["summary"]["kernel_speedup_batch8"].as_f64(), Some(3.1));
        assert_eq!(back["summary"]["transport_h3_speedup"].as_f64(), Some(4.0));
        assert_eq!(back["summary"]["edge_hit_rate_peak"].as_f64(), Some(0.875));
        assert_eq!(back["summary"]["edge_chaos_lost"].as_u64(), Some(0));
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = report();
        let checks = compare(&r, &r, 0.10).expect("self-compare must pass");
        assert!(checks.iter().any(|l| l.contains("kernel_speedup")));
    }

    #[test]
    fn modelled_regression_fails_the_gate() {
        let base = report();
        let cur = pr6_report(
            KernelConfig::default(),
            // 20% modelled regression on the 8-lane row.
            &[fake_kernel(1, 4.0, 1.0), fake_kernel(8, 9.9, 2.5)],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &fake_transports(),
            EdgeSection {
                cfg: &EdgeClusterConfig::default(),
                sweep: &fake_edges(),
                chaos: &fake_chaos(0, true),
            },
            WlFakes::ok().section(),
            ResFakes::ok().section(),
        );
        let failures = compare(&base, &cur, 0.10).expect_err("regression must fail");
        assert!(
            failures.iter().any(|f| f.contains("regressed")),
            "{failures:?}"
        );
    }

    #[test]
    fn speedup_below_floor_fails_the_gate() {
        let base = report();
        let cur = pr6_report(
            KernelConfig::default(),
            &[fake_kernel(1, 4.0, 1.0), fake_kernel(8, 5.0, 1.25)],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &fake_transports(),
            EdgeSection {
                cfg: &EdgeClusterConfig::default(),
                sweep: &fake_edges(),
                chaos: &fake_chaos(0, true),
            },
            WlFakes::ok().section(),
            ResFakes::ok().section(),
        );
        let failures = compare(&base, &cur, 0.99).expect_err("floor must bind");
        assert!(
            failures.iter().any(|f| f.contains("below the 1.5x floor")),
            "{failures:?}"
        );
    }

    #[test]
    fn steady_state_allocation_fails_the_gate() {
        let base = report();
        let mut leaky = fake_kernel(8, 12.4, 3.1);
        leaky.alloc_bytes = 4096;
        let cur = pr6_report(
            KernelConfig::default(),
            &[fake_kernel(1, 4.0, 1.0), leaky],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &fake_transports(),
            EdgeSection {
                cfg: &EdgeClusterConfig::default(),
                sweep: &fake_edges(),
                chaos: &fake_chaos(0, true),
            },
            WlFakes::ok().section(),
            ResFakes::ok().section(),
        );
        let failures = compare(&base, &cur, 0.10).expect_err("allocation must fail");
        assert!(
            failures.iter().any(|f| f.contains("4096 fresh pool bytes")),
            "{failures:?}"
        );
    }

    #[test]
    fn transport_rows_are_distinct_records_and_gate_the_h3_speedup() {
        let base = report();
        // Dropping the h3 row must fail record presence, and with only h2
        // left the headline collapses to 1.0 — below the floor.
        let cur = pr6_report(
            KernelConfig::default(),
            &[fake_kernel(1, 4.0, 1.0), fake_kernel(8, 12.4, 3.1)],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &[fake_transport(sww_core::TransportKind::H2, 10.0)],
            EdgeSection {
                cfg: &EdgeClusterConfig::default(),
                sweep: &fake_edges(),
                chaos: &fake_chaos(0, true),
            },
            WlFakes::ok().section(),
            ResFakes::ok().section(),
        );
        let failures = compare(&base, &cur, 0.10).expect_err("missing h3 row must fail");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("h3") && f.contains("missing")),
            "{failures:?}"
        );
        assert!(
            failures
                .iter()
                .any(|f| f.contains("transport_h3_speedup") && f.contains("below")),
            "{failures:?}"
        );
    }

    #[test]
    fn missing_record_fails_the_gate() {
        let base = report();
        let cur = pr6_report(
            KernelConfig::default(),
            &[fake_kernel(1, 4.0, 1.0)],
            ServingConfig::default(),
            &[fake_serving(1, 4.0, 1.0), fake_serving(8, 12.4, 3.1)],
            TransportConfig::default(),
            &fake_transports(),
            EdgeSection {
                cfg: &EdgeClusterConfig::default(),
                sweep: &fake_edges(),
                chaos: &fake_chaos(0, true),
            },
            WlFakes::ok().section(),
            ResFakes::ok().section(),
        );
        let failures = compare(&base, &cur, 0.10).expect_err("missing record must fail");
        assert!(
            failures.iter().any(|f| f.contains("missing")),
            "{failures:?}"
        );
    }

    #[test]
    fn edge_records_are_keyed_by_node_count() {
        let base = report();
        // Dropping the 4-node row must fail presence even though a
        // 2-node edge_cluster record with the same tiles/transport
        // remains — the nodes component disambiguates.
        let cur = report_with(
            &[fake_edge(1, 0.5, 2.0), fake_edge(2, 0.75, 4.0)],
            &fake_chaos(0, true),
        );
        let failures = compare(&base, &cur, 0.10).expect_err("missing 4-node row must fail");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("edge_cluster") && f.contains("missing")),
            "{failures:?}"
        );
    }

    #[test]
    fn flat_edge_hit_rate_fails_the_gate() {
        let base = report();
        // 4 nodes no better than 2: the exactly-once property broke.
        let cur = report_with(
            &[
                fake_edge(1, 0.5, 2.0),
                fake_edge(2, 0.75, 4.0),
                fake_edge(4, 0.75, 8.0),
            ],
            &fake_chaos(0, true),
        );
        let failures = compare(&base, &cur, 0.99).expect_err("flat hit rate must fail");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("strictly increase with nodes")),
            "{failures:?}"
        );
    }

    #[test]
    fn workload_rows_are_keyed_by_clustering() {
        let base = report();
        // Dropping the most clustered row must fail presence even though
        // two smallworld_modelled records with the same experiment,
        // tiles, transport, and nodes remain — clustering disambiguates.
        let mut wl = WlFakes::ok();
        wl.rows.remove(0);
        let cur = report_with_wl(&fake_edges(), &fake_chaos(0, true), &wl);
        let failures = compare(&base, &cur, 0.10).expect_err("missing clustered row must fail");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("smallworld_modelled") && f.contains("missing")),
            "{failures:?}"
        );
    }

    #[test]
    fn flat_workload_hit_rate_fails_the_gate() {
        let base = report();
        // The clustered graph no better than the mid one: the bounded
        // cache stopped converting locality into hits.
        let mut wl = WlFakes::ok();
        wl.rows[0].slo.hit_rate = wl.rows[1].slo.hit_rate;
        let cur = report_with_wl(&fake_edges(), &fake_chaos(0, true), &wl);
        let failures = compare(&base, &cur, 0.99).expect_err("flat hit rate must fail");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("strictly increase with clustering")),
            "{failures:?}"
        );
    }

    #[test]
    fn workload_p99_over_deadline_fails_the_gate() {
        let base = report();
        let mut wl = WlFakes::ok();
        wl.rows[2].slo.p99_ms = wl.cfg.deadline_ms + 0.5;
        let cur = report_with_wl(&fake_edges(), &fake_chaos(0, true), &wl);
        let failures = compare(&base, &cur, 0.99).expect_err("p99 over deadline must fail");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("over the") && f.contains("deadline")),
            "{failures:?}"
        );
    }

    #[test]
    fn replay_nondeterminism_fails_the_gate() {
        let base = report();
        let mut wl = WlFakes::ok();
        wl.det.response_match = false;
        wl.det.cross_target_identical = false;
        let cur = report_with_wl(&fake_edges(), &fake_chaos(0, true), &wl);
        assert_eq!(
            cur["summary"]["workload_replay_deterministic"].as_bool(),
            Some(false)
        );
        let failures = compare(&base, &cur, 0.99).expect_err("nondeterminism must fail");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("response digests diverged")),
            "{failures:?}"
        );
        assert!(
            failures
                .iter()
                .any(|f| f.contains("cross-topology payloads diverged")),
            "{failures:?}"
        );
    }

    #[test]
    fn resilience_records_are_keyed_by_replication() {
        let base = report();
        // Dropping the replicated row must fail presence even though an
        // edge_resilience record with the same experiment, tiles,
        // transport, and nodes remains — replication disambiguates.
        let mut res = ResFakes::ok();
        res.failover.retain(|o| o.replication < 2);
        let failures =
            compare(&base, &report_with_res(&res), 0.10).expect_err("missing level must fail");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("edge_resilience") && f.contains("missing")),
            "{failures:?}"
        );
    }

    #[test]
    fn replicated_regeneration_fails_the_gate() {
        let base = report();
        // A replicated failover that still re-rendered: replicas failed.
        let mut res = ResFakes::ok();
        res.failover[1] = fake_failover(2, 3, 12);
        let failures = compare(&base, &report_with_res(&res), 0.99).expect_err("regen must fail");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("3 regenerations") && f.contains("replicas must absorb")),
            "{failures:?}"
        );
        // ... and one that never touched a replica at all.
        res.failover[1] = fake_failover(2, 0, 0);
        let failures = compare(&base, &report_with_res(&res), 0.99).expect_err("no hits must fail");
        assert!(
            failures.iter().any(|f| f.contains("no replica hits")),
            "{failures:?}"
        );
    }

    #[test]
    fn vacuous_unreplicated_control_fails_the_gate() {
        let base = report();
        // The replication-1 control not re-rendering means the scenario
        // never actually exercised the owner's keys.
        let mut res = ResFakes::ok();
        res.failover[0] = fake_failover(1, 0, 0);
        let failures =
            compare(&base, &report_with_res(&res), 0.99).expect_err("vacuous control must fail");
        assert!(
            failures.iter().any(|f| f.contains("contrast is vacuous")),
            "{failures:?}"
        );
    }

    #[test]
    fn unhealed_or_slow_partition_fails_the_gate() {
        let base = report();
        let mut res = ResFakes::ok();
        res.partition.converged = false;
        res.partition.deterministic = false;
        res.partition.rounds_to_heal = res.partition.bound + 1;
        let failures =
            compare(&base, &report_with_res(&res), 0.99).expect_err("bad partition must fail");
        assert!(
            failures.iter().any(|f| f.contains("never converged")),
            "{failures:?}"
        );
        assert!(
            failures
                .iter()
                .any(|f| f.contains("did not replay deterministically")),
            "{failures:?}"
        );
        assert!(
            failures
                .iter()
                .any(|f| f.contains("over the 24-round bound")),
            "{failures:?}"
        );
    }

    #[test]
    fn chaos_losses_and_divergent_bytes_fail_the_gate() {
        let base = report();
        let cur = report_with(&fake_edges(), &fake_chaos(3, false));
        let failures = compare(&base, &cur, 0.99).expect_err("chaos losses must fail");
        assert!(
            failures.iter().any(|f| f.contains("3 lost responses")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("diverged")),
            "{failures:?}"
        );
    }
}
