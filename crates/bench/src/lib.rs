//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6) plus the quantified claims of §2.2, §3.2 and §7.
//!
//! Each experiment lives in [`experiments`] as a pure function returning
//! structured rows; the `report` binary prints them side by side with the
//! paper's published values, and the criterion benches measure the real
//! compute behind the hot paths. See DESIGN.md for the experiment index
//! (E1–E13) and EXPERIMENTS.md for recorded paper-vs-measured results.

pub mod experiments;
pub mod report;
pub mod table;

pub use table::Table;
