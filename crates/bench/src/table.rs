//! Plain-text table rendering for the report binary.

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds compactly.
pub fn secs(t: f64) -> String {
    if t < 0.1 {
        format!("{:.3}s", t)
    } else if t < 10.0 {
        format!("{:.2}s", t)
    } else {
        format!("{:.1}s", t)
    }
}

/// Format watt-hours compactly.
pub fn wh(e: f64) -> String {
    format!("{e:.3}Wh")
}

/// Format bytes with a unit.
pub fn bytes(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.2}MB", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}kB", n as f64 / 1e3)
    } else {
        format!("{n}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["Model", "CLIP"]);
        t.row(["SD 2.1", "0.19"]);
        t.row(["DALLE 3 long name", "0.32"]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("Model"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(0.05), "0.050s");
        assert_eq!(secs(6.2), "6.20s");
        assert_eq!(secs(310.0), "310.0s");
        assert_eq!(wh(0.21), "0.210Wh");
        assert_eq!(bytes(428), "428B");
        assert_eq!(bytes(8_920), "8.92kB");
        assert_eq!(bytes(1_400_000), "1.40MB");
    }
}
