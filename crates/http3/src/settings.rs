//! HTTP/3 settings (RFC 9114 §7.2.4) with the SWW extension.
//!
//! HTTP/3 reserves `0x1f·N + 0x21` identifiers for grease and inherits
//! HTTP/2's ignore-unknown rule, so a new setting deploys the same way the
//! paper's 0x07 does under HTTP/2. The SWW identifier here is `0x5757`
//! ("WW"), outside both the standard and grease spaces.

use crate::frame::H3Frame;
use sww_http2::GenAbility;

/// SETTINGS_QPACK_MAX_TABLE_CAPACITY (RFC 9204).
pub const SETTINGS_QPACK_MAX_TABLE_CAPACITY: u64 = 0x01;
/// SETTINGS_MAX_FIELD_SECTION_SIZE (RFC 9114).
pub const SETTINGS_MAX_FIELD_SECTION_SIZE: u64 = 0x06;
/// SETTINGS_QPACK_BLOCKED_STREAMS (RFC 9204).
pub const SETTINGS_QPACK_BLOCKED_STREAMS: u64 = 0x07;
/// The SWW generative-ability advertisement for HTTP/3.
pub const SETTINGS_SWW_GEN_ABILITY: u64 = 0x5757;

/// HTTP/3 connection settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct H3Settings {
    /// QPACK dynamic table bound; this implementation always announces 0
    /// (static-table-only QPACK, a legal configuration).
    pub qpack_max_table_capacity: u64,
    /// Largest acceptable field section.
    pub max_field_section_size: Option<u64>,
    /// Generative ability (the SWW extension).
    pub gen_ability: GenAbility,
}

impl Default for H3Settings {
    fn default() -> H3Settings {
        H3Settings {
            qpack_max_table_capacity: 0,
            max_field_section_size: None,
            gen_ability: GenAbility::none(),
        }
    }
}

impl H3Settings {
    /// The settings an SWW endpoint announces.
    pub fn sww(ability: GenAbility) -> H3Settings {
        H3Settings {
            gen_ability: ability,
            ..H3Settings::default()
        }
    }

    /// Build the control-stream SETTINGS frame.
    pub fn to_frame(&self) -> H3Frame {
        let mut pairs = vec![(
            SETTINGS_QPACK_MAX_TABLE_CAPACITY,
            self.qpack_max_table_capacity,
        )];
        if let Some(m) = self.max_field_section_size {
            pairs.push((SETTINGS_MAX_FIELD_SECTION_SIZE, m));
        }
        if self.gen_ability.supported() {
            pairs.push((SETTINGS_SWW_GEN_ABILITY, u64::from(self.gen_ability.bits())));
        }
        H3Frame::Settings(pairs)
    }

    /// A SETTINGS frame carrying exactly the ability pair — even when the
    /// ability is empty. Settings keep their previous value until
    /// re-announced, so a mid-connection *withdraw* must put the zero on
    /// the wire; [`H3Settings::to_frame`] omits the pair for endpoints
    /// that never participate, which would silently leave the old
    /// advertisement standing.
    pub fn ability_update_frame(ability: GenAbility) -> H3Frame {
        H3Frame::Settings(vec![(SETTINGS_SWW_GEN_ABILITY, u64::from(ability.bits()))])
    }

    /// Apply received pairs; unknown identifiers are ignored (§7.2.4.1).
    pub fn apply(&mut self, pairs: &[(u64, u64)]) {
        for &(id, value) in pairs {
            match id {
                SETTINGS_QPACK_MAX_TABLE_CAPACITY => self.qpack_max_table_capacity = value,
                SETTINGS_MAX_FIELD_SECTION_SIZE => self.max_field_section_size = Some(value),
                SETTINGS_SWW_GEN_ABILITY => self.gen_ability = GenAbility::from_bits(value as u32),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_frame() {
        let s = H3Settings::sww(GenAbility::full());
        let H3Frame::Settings(pairs) = s.to_frame() else {
            panic!("expected settings frame");
        };
        assert!(pairs.contains(&(SETTINGS_SWW_GEN_ABILITY, 1)));
        let mut peer = H3Settings::default();
        peer.apply(&pairs);
        assert!(peer.gen_ability.can_generate());
    }

    #[test]
    fn unknown_and_grease_ignored() {
        let mut s = H3Settings::default();
        s.apply(&[(0x21, 99), (0x21 + 0x1f, 1), (0xdead, 7)]);
        assert_eq!(s, H3Settings::default());
    }

    #[test]
    fn upscale_only_travels() {
        let s = H3Settings::sww(GenAbility::upscale_only());
        let H3Frame::Settings(pairs) = s.to_frame() else {
            panic!()
        };
        let mut peer = H3Settings::default();
        peer.apply(&pairs);
        assert!(peer.gen_ability.can_upscale());
        assert!(!peer.gen_ability.can_generate());
    }

    #[test]
    fn no_ability_means_no_extension_pair() {
        let H3Frame::Settings(pairs) = H3Settings::default().to_frame() else {
            panic!()
        };
        assert!(pairs.iter().all(|&(id, _)| id != SETTINGS_SWW_GEN_ABILITY));
    }
}
