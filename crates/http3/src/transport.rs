//! A minimal QUIC-like stream multiplexer over one reliable byte pipe.
//!
//! Real QUIC (UDP datagrams, TLS 1.3, loss recovery, flow control) is out
//! of scope — the paper's §3.1 point is about SETTINGS semantics, which
//! need only ordered, multiplexed streams. Stream identifiers follow QUIC
//! (RFC 9000 §2.1): the two low bits encode initiator and directionality,
//! so client-bidi streams are 0, 4, 8, …, client-uni 2, 6, …, server-uni
//! 3, 7, ….
//!
//! Wire format per chunk: `varint stream_id | u8 flags | varint len | bytes`
//! with flag bit 0 = FIN.

use crate::varint;
use std::collections::HashMap;
use std::pin::Pin;
use std::task::{Context, Poll};
use tokio::io::{AsyncRead, AsyncWrite, AsyncWriteExt, ReadBuf};

/// Stream-id helpers.
pub mod stream_id {
    /// First client-initiated bidirectional stream.
    pub const CLIENT_BIDI_BASE: u64 = 0;
    /// First client-initiated unidirectional stream.
    pub const CLIENT_UNI_BASE: u64 = 2;
    /// First server-initiated unidirectional stream.
    pub const SERVER_UNI_BASE: u64 = 3;

    /// Whether a stream is unidirectional.
    pub fn is_uni(id: u64) -> bool {
        id & 0x2 != 0
    }

    /// Whether the client initiated the stream.
    pub fn is_client_initiated(id: u64) -> bool {
        id & 0x1 == 0
    }
}

/// One received chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamChunk {
    /// Stream the data belongs to.
    pub stream_id: u64,
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Whether the sender finished the stream.
    pub fin: bool,
}

/// Transport errors.
#[derive(Debug)]
pub enum TransportError {
    /// Socket error.
    Io(std::io::Error),
    /// Peer closed the pipe.
    Closed,
    /// Structurally invalid chunk.
    Malformed(&'static str),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "io: {e}"),
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Malformed(m) => write!(f, "malformed chunk: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TransportError::Closed
        } else {
            TransportError::Io(e)
        }
    }
}

/// The multiplexer: owns the pipe and reassembles per-stream data.
#[derive(Debug)]
pub struct QuicLite<T> {
    io: T,
    /// Next bidi stream id to open locally.
    next_bidi: u64,
    /// Next uni stream id to open locally.
    next_uni: u64,
    /// Buffered whole streams (completed with FIN) awaiting the reader.
    finished: HashMap<u64, Vec<u8>>,
    /// Partially received streams.
    partial: HashMap<u64, Vec<u8>>,
    /// Raw octets read off the pipe but not yet parsed into a chunk.
    /// Chunk parsing is restartable from this buffer, which makes
    /// [`QuicLite::poll_recv_chunk`] cancel-safe: a future dropped
    /// mid-header loses nothing.
    rbuf: Vec<u8>,
    /// Parse cursor into `rbuf` (consumed prefix, compacted lazily).
    rpos: usize,
    /// The pipe reported EOF; parsing continues until `rbuf` drains.
    eof: bool,
}

/// Maximum accepted chunk payload, bounding buffer growth.
const MAX_CHUNK: u64 = 1 << 22;

impl<T: AsyncRead + AsyncWrite + Unpin> QuicLite<T> {
    /// Client-side endpoint.
    pub fn client(io: T) -> QuicLite<T> {
        QuicLite {
            io,
            next_bidi: stream_id::CLIENT_BIDI_BASE,
            next_uni: stream_id::CLIENT_UNI_BASE,
            finished: HashMap::new(),
            partial: HashMap::new(),
            rbuf: Vec::new(),
            rpos: 0,
            eof: false,
        }
    }

    /// Server-side endpoint.
    pub fn server(io: T) -> QuicLite<T> {
        QuicLite {
            io,
            next_bidi: 1, // server-initiated bidi (unused by HTTP/3)
            next_uni: stream_id::SERVER_UNI_BASE,
            finished: HashMap::new(),
            partial: HashMap::new(),
            rbuf: Vec::new(),
            rpos: 0,
            eof: false,
        }
    }

    /// Allocate a locally initiated bidirectional stream id.
    pub fn open_bidi(&mut self) -> u64 {
        let id = self.next_bidi;
        self.next_bidi += 4;
        id
    }

    /// Allocate a locally initiated unidirectional stream id.
    pub fn open_uni(&mut self) -> u64 {
        let id = self.next_uni;
        self.next_uni += 4;
        id
    }

    /// Send bytes on a stream.
    pub async fn send(
        &mut self,
        stream: u64,
        data: &[u8],
        fin: bool,
    ) -> Result<(), TransportError> {
        let mut head = Vec::with_capacity(16);
        varint::encode(stream, &mut head);
        head.push(u8::from(fin));
        varint::encode(data.len() as u64, &mut head);
        self.io.write_all(&head).await?;
        self.io.write_all(data).await?;
        self.io.flush().await?;
        Ok(())
    }

    /// Try to parse one complete chunk out of the read buffer. Returns
    /// `Ok(None)` when the buffer holds only a partial chunk.
    fn parse_chunk(&mut self) -> Result<Option<StreamChunk>, TransportError> {
        let buf = &self.rbuf[self.rpos..];
        let mut pos = 0usize;
        let Ok(stream_id) = varint::decode(buf, &mut pos) else {
            return Ok(None);
        };
        let Some(&flag) = buf.get(pos) else {
            return Ok(None);
        };
        pos += 1;
        let Ok(len) = varint::decode(buf, &mut pos) else {
            return Ok(None);
        };
        if len > MAX_CHUNK {
            return Err(TransportError::Malformed("chunk too large"));
        }
        let len = len as usize;
        if buf.len() < pos + len {
            return Ok(None);
        }
        let data = buf[pos..pos + len].to_vec();
        self.rpos += pos + len;
        // Compact once the consumed prefix dominates the buffer.
        if self.rpos > 4096 && self.rpos * 2 > self.rbuf.len() {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        Ok(Some(StreamChunk {
            stream_id,
            data,
            fin: flag & 1 != 0,
        }))
    }

    /// Poll for the next chunk from the peer. Restartable: partial reads
    /// accumulate in an internal buffer, so callers may drop the
    /// surrounding future between polls without losing wire state. This
    /// is what lets a server interleave "wait for more requests" with
    /// "send finished responses" on one task.
    pub fn poll_recv_chunk(
        &mut self,
        cx: &mut Context<'_>,
    ) -> Poll<Result<StreamChunk, TransportError>> {
        loop {
            if let Some(chunk) = self.parse_chunk()? {
                return Poll::Ready(Ok(chunk));
            }
            if self.eof {
                return Poll::Ready(Err(if self.rpos < self.rbuf.len() {
                    TransportError::Malformed("pipe closed mid-chunk")
                } else {
                    TransportError::Closed
                }));
            }
            let mut tmp = [0u8; 4096];
            let mut rb = ReadBuf::new(&mut tmp);
            match Pin::new(&mut self.io).poll_read(cx, &mut rb) {
                Poll::Ready(Ok(())) if rb.filled().is_empty() => self.eof = true,
                Poll::Ready(Ok(())) => self.rbuf.extend_from_slice(rb.filled()),
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e.into())),
                Poll::Pending => return Poll::Pending,
            }
        }
    }

    /// Receive the next chunk from the peer.
    pub async fn recv_chunk(&mut self) -> Result<StreamChunk, TransportError> {
        std::future::poll_fn(|cx| self.poll_recv_chunk(cx)).await
    }

    /// Route one received chunk into the per-stream reassembly maps.
    fn ingest(&mut self, chunk: StreamChunk) {
        let buf = self.partial.entry(chunk.stream_id).or_default();
        buf.extend_from_slice(&chunk.data);
        if chunk.fin {
            let whole = self.partial.remove(&chunk.stream_id).unwrap_or_default();
            self.finished.insert(chunk.stream_id, whole);
        }
    }

    /// Poll until *any* stream finishes; `Ready((id, payload))` hands the
    /// completed stream over. The poll-shaped twin of
    /// [`QuicLite::recv_any_stream`], for callers that multiplex reading
    /// with other event sources.
    pub fn poll_recv_any_stream(
        &mut self,
        cx: &mut Context<'_>,
    ) -> Poll<Result<(u64, Vec<u8>), TransportError>> {
        loop {
            if let Some(id) = self.finished.keys().next().copied() {
                let data = self.finished.remove(&id).expect("key just seen");
                return Poll::Ready(Ok((id, data)));
            }
            match self.poll_recv_chunk(cx) {
                Poll::Ready(Ok(chunk)) => self.ingest(chunk),
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => return Poll::Pending,
            }
        }
    }

    /// Read chunks until `stream` finishes, buffering other streams;
    /// returns that stream's complete payload.
    pub async fn recv_stream(&mut self, stream: u64) -> Result<Vec<u8>, TransportError> {
        loop {
            if let Some(done) = self.finished.remove(&stream) {
                return Ok(done);
            }
            let chunk = self.recv_chunk().await?;
            self.ingest(chunk);
        }
    }

    /// Read chunks until *any* stream finishes; returns `(id, payload)`.
    pub async fn recv_any_stream(&mut self) -> Result<(u64, Vec<u8>), TransportError> {
        std::future::poll_fn(|cx| self.poll_recv_any_stream(cx)).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn stream_ids_follow_quic_parity() {
        let (a, _b) = tokio::io::duplex(1024);
        let mut client = QuicLite::client(a);
        assert_eq!(client.open_bidi(), 0);
        assert_eq!(client.open_bidi(), 4);
        assert_eq!(client.open_uni(), 2);
        assert!(stream_id::is_client_initiated(0));
        assert!(stream_id::is_uni(2));
        assert!(!stream_id::is_uni(4));
        assert!(!stream_id::is_client_initiated(3));
    }

    #[tokio::test]
    async fn interleaved_streams_reassemble() {
        let (a, b) = tokio::io::duplex(1 << 16);
        let mut tx = QuicLite::client(a);
        let mut rx = QuicLite::server(b);
        tx.send(0, b"hello ", false).await.unwrap();
        tx.send(4, b"other", true).await.unwrap();
        tx.send(0, b"world", true).await.unwrap();
        // Stream 0 completes after stream 4's chunks arrive interleaved.
        let zero = rx.recv_stream(0).await.unwrap();
        assert_eq!(zero, b"hello world");
        let four = rx.recv_stream(4).await.unwrap();
        assert_eq!(four, b"other");
    }

    #[tokio::test]
    async fn recv_any_returns_first_finished() {
        let (a, b) = tokio::io::duplex(1 << 16);
        let mut tx = QuicLite::client(a);
        let mut rx = QuicLite::server(b);
        tx.send(8, b"first", true).await.unwrap();
        let (id, data) = rx.recv_any_stream().await.unwrap();
        assert_eq!((id, data.as_slice()), (8, &b"first"[..]));
    }

    #[tokio::test]
    async fn closed_pipe_reports_closed() {
        let (a, b) = tokio::io::duplex(1024);
        drop(b);
        let mut rx = QuicLite::<tokio::io::DuplexStream>::server(a);
        assert!(matches!(rx.recv_chunk().await, Err(TransportError::Closed)));
    }

    #[tokio::test]
    async fn large_payload_roundtrip() {
        let (a, b) = tokio::io::duplex(1 << 20);
        let mut tx = QuicLite::client(a);
        let mut rx = QuicLite::server(b);
        let big = vec![7u8; 200_000];
        let big2 = big.clone();
        let send = tokio::spawn(async move {
            tx.send(0, &big2, true).await.unwrap();
        });
        let got = rx.recv_stream(0).await.unwrap();
        send.await.unwrap();
        assert_eq!(got, big);
    }
}
