//! QUIC variable-length integers (RFC 9000 §16).
//!
//! The two most significant bits of the first octet encode the total
//! length (1, 2, 4 or 8 octets); the remainder is the big-endian value.
//! Maximum value `2^62 - 1`.

/// Largest encodable value.
pub const MAX: u64 = (1 << 62) - 1;

/// Errors from varint decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// Input ended before the full integer.
    Truncated,
    /// Value exceeds 2^62-1 (only possible via the encode path).
    TooLarge,
}

/// Encoded length in octets for `value`.
pub fn len(value: u64) -> usize {
    match value {
        0..=0x3f => 1,
        0x40..=0x3fff => 2,
        0x4000..=0x3fff_ffff => 4,
        _ => 8,
    }
}

/// Append the varint encoding of `value` to `out`. Panics (debug) above
/// [`MAX`].
pub fn encode(value: u64, out: &mut Vec<u8>) {
    debug_assert!(value <= MAX, "varint out of range");
    match len(value) {
        1 => out.push(value as u8),
        2 => out.extend_from_slice(&(0x4000u16 | value as u16).to_be_bytes()),
        4 => out.extend_from_slice(&(0x8000_0000u32 | value as u32).to_be_bytes()),
        _ => out.extend_from_slice(&(0xc000_0000_0000_0000u64 | value).to_be_bytes()),
    }
}

/// Decode a varint at `buf[*pos]`, advancing `pos`.
pub fn decode(buf: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let first = *buf.get(*pos).ok_or(VarintError::Truncated)?;
    let n = 1usize << (first >> 6);
    if buf.len() < *pos + n {
        return Err(VarintError::Truncated);
    }
    let mut value = u64::from(first & 0x3f);
    for i in 1..n {
        value = (value << 8) | u64::from(buf[*pos + i]);
    }
    *pos += n;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc9000_examples() {
        // RFC 9000 §A.1 sample values.
        let cases: [(u64, &[u8]); 4] = [
            (
                151_288_809_941_952_652,
                &[0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c],
            ),
            (494_878_333, &[0x9d, 0x7f, 0x3e, 0x7d]),
            (15_293, &[0x7b, 0xbd]),
            (37, &[0x25]),
        ];
        for (value, wire) in cases {
            let mut out = Vec::new();
            encode(value, &mut out);
            assert_eq!(out, wire, "encode {value}");
            let mut pos = 0;
            assert_eq!(decode(wire, &mut pos).unwrap(), value);
            assert_eq!(pos, wire.len());
        }
    }

    #[test]
    fn boundaries_roundtrip() {
        for v in [0, 63, 64, 16_383, 16_384, 0x3fff_ffff, 0x4000_0000, MAX] {
            let mut out = Vec::new();
            encode(v, &mut out);
            assert_eq!(out.len(), len(v));
            let mut pos = 0;
            assert_eq!(decode(&out, &mut pos).unwrap(), v, "v={v}");
        }
    }

    #[test]
    fn truncated_rejected() {
        let mut out = Vec::new();
        encode(16_384, &mut out); // 4-octet encoding
        for cut in 0..out.len() {
            let mut pos = 0;
            assert_eq!(decode(&out[..cut], &mut pos), Err(VarintError::Truncated));
        }
    }

    #[test]
    fn two_byte_minimum_encoding_decodes() {
        // A non-minimal encoding (value 5 in 2 bytes) still decodes; QUIC
        // permits this except where a spec says otherwise.
        let wire = [0x40, 0x05];
        let mut pos = 0;
        assert_eq!(decode(&wire, &mut pos).unwrap(), 5);
    }
}
