//! HTTP/3 connection endpoints: control-stream SETTINGS exchange carrying
//! the SWW extension, and request/response transfer on bidirectional
//! streams — demonstrating the paper's §3.1 claim that the HTTP/2
//! negotiation carries over to HTTP/3 unchanged in spirit.

use crate::frame::{FrameError, H3Frame};
use crate::qpack;
use crate::settings::H3Settings;
use crate::transport::{QuicLite, TransportError};
use crate::varint;
use bytes::Bytes;
use sww_http2::{GenAbility, Request, Response};
use tokio::io::{AsyncRead, AsyncWrite};

/// Unidirectional stream type for the control stream (RFC 9114 §6.2.1).
pub const STREAM_TYPE_CONTROL: u64 = 0x00;

/// HTTP/3 layer errors.
#[derive(Debug)]
pub enum H3Error {
    /// Transport failure.
    Transport(TransportError),
    /// Frame-layer failure.
    Frame(FrameError),
    /// QPACK failure.
    Qpack(qpack::QpackError),
    /// Semantic violation.
    Protocol(String),
}

impl std::fmt::Display for H3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            H3Error::Transport(e) => write!(f, "transport: {e}"),
            H3Error::Frame(e) => write!(f, "frame: {e:?}"),
            H3Error::Qpack(e) => write!(f, "qpack: {e:?}"),
            H3Error::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for H3Error {}

impl From<TransportError> for H3Error {
    fn from(e: TransportError) -> Self {
        H3Error::Transport(e)
    }
}

impl From<FrameError> for H3Error {
    fn from(e: FrameError) -> Self {
        H3Error::Frame(e)
    }
}

impl From<qpack::QpackError> for H3Error {
    fn from(e: qpack::QpackError) -> Self {
        H3Error::Qpack(e)
    }
}

/// What one unidirectional (control) stream carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ControlSignal {
    /// SETTINGS were applied (initial exchange or a mid-connection
    /// update such as an ability withdraw/restore).
    Settings,
    /// The peer announced graceful shutdown.
    Goaway,
}

/// Build a control-stream payload: stream type + one SETTINGS frame.
pub(crate) fn control_stream_payload(settings: &H3Settings) -> Vec<u8> {
    control_frame_payload(&settings.to_frame())
}

/// Build a control-stream payload carrying an arbitrary control frame
/// (SETTINGS update, GOAWAY). The `QuicLite` shim closes each stream
/// with FIN before the receiver sees it, so every control *message*
/// travels on a fresh control-typed stream rather than as successive
/// frames on one long-lived stream — same frames, shim-shaped framing.
pub(crate) fn control_frame_payload(frame: &H3Frame) -> Vec<u8> {
    let mut out = Vec::new();
    varint::encode(STREAM_TYPE_CONTROL, &mut out);
    frame.encode(&mut out);
    out
}

/// Parse a received control stream: verify the type, apply SETTINGS or
/// note a GOAWAY, and report which it was.
pub(crate) fn apply_control_stream(
    data: &[u8],
    settings: &mut H3Settings,
) -> Result<ControlSignal, H3Error> {
    let mut pos = 0usize;
    let stream_type = varint::decode(data, &mut pos)
        .map_err(|_| H3Error::Protocol("control stream type truncated".into()))?;
    if stream_type != STREAM_TYPE_CONTROL {
        return Err(H3Error::Protocol(format!(
            "unexpected unidirectional stream type {stream_type}"
        )));
    }
    let frame = H3Frame::decode(data, &mut pos)?;
    match frame {
        H3Frame::Settings(pairs) => {
            settings.apply(&pairs);
            Ok(ControlSignal::Settings)
        }
        H3Frame::GoAway(_) => Ok(ControlSignal::Goaway),
        other => Err(H3Error::Protocol(format!(
            "control frame must be SETTINGS or GOAWAY, got {other:?}"
        ))),
    }
}

/// Encode a request as an HTTP/3 request-stream payload.
pub(crate) fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    H3Frame::Headers(Bytes::from(qpack::encode(&req.to_fields()))).encode(&mut out);
    if !req.body.is_empty() {
        H3Frame::Data(req.body.clone()).encode(&mut out);
    }
    out
}

/// Decode a request-stream payload into a request.
pub(crate) fn decode_request(data: &[u8]) -> Result<Request, H3Error> {
    let (fields, body) = decode_message(data)?;
    let mut req = Request::from_fields(fields).map_err(|e| H3Error::Protocol(e.to_string()))?;
    req.body = body;
    Ok(req)
}

/// Encode a response as a response-stream payload.
pub(crate) fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    H3Frame::Headers(Bytes::from(qpack::encode(&resp.to_fields()))).encode(&mut out);
    if !resp.body.is_empty() {
        H3Frame::Data(resp.body.clone()).encode(&mut out);
    }
    out
}

fn decode_response(data: &[u8]) -> Result<Response, H3Error> {
    let (fields, body) = decode_message(data)?;
    let mut resp = Response::from_fields(fields).map_err(|e| H3Error::Protocol(e.to_string()))?;
    resp.body = body;
    Ok(resp)
}

/// Shared message decoding: HEADERS then zero or more DATA frames,
/// ignoring reserved/unknown frames per RFC 9114 §9.
fn decode_message(data: &[u8]) -> Result<(Vec<sww_http2::hpack::HeaderField>, Bytes), H3Error> {
    let mut pos = 0usize;
    let mut fields = None;
    let mut body = Vec::new();
    while pos < data.len() {
        match H3Frame::decode(data, &mut pos)? {
            H3Frame::Headers(block) => {
                if fields.is_none() {
                    fields = Some(qpack::decode(&block)?);
                }
                // A second HEADERS frame would be trailers; ignored.
            }
            H3Frame::Data(d) => body.extend_from_slice(&d),
            H3Frame::Unknown { .. } => {} // greased frames are skipped
            other => {
                return Err(H3Error::Protocol(format!(
                    "unexpected frame on request stream: {other:?}"
                )))
            }
        }
    }
    let fields = fields.ok_or_else(|| H3Error::Protocol("message without HEADERS".into()))?;
    Ok((fields, Bytes::from(body)))
}

/// A resumption ticket: the server settings a client remembers from a
/// previous connection. Presenting one lets
/// [`H3ClientConnection::handshake_0rtt`] skip the wait for the server's
/// control stream and put the first request on the wire in the very
/// first flight — the QUIC 0-RTT shape, minus the crypto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTicket {
    /// The server's settings as seen when the ticket was minted.
    pub server_settings: H3Settings,
}

/// An HTTP/3 client connection.
pub struct H3ClientConnection<T> {
    quic: QuicLite<T>,
    local: H3Settings,
    remote: H3Settings,
    /// Responses that finished while we were waiting on a different
    /// stream — the no-head-of-line-blocking stash.
    ready: std::collections::HashMap<u64, Vec<u8>>,
    /// Whether the server's authoritative control stream has been seen
    /// (false while running on a 0-RTT ticket).
    server_control_seen: bool,
    /// The server announced graceful shutdown.
    goaway: bool,
    /// This connection resumed from a [`SessionTicket`].
    resumed: bool,
}

impl<T: AsyncRead + AsyncWrite + Unpin> H3ClientConnection<T> {
    fn start(io: T, ability: GenAbility) -> (QuicLite<T>, H3Settings, Vec<u8>) {
        let quic = QuicLite::client(io);
        let local = H3Settings::sww(ability);
        let payload = control_stream_payload(&local);
        (quic, local, payload)
    }

    /// Handshake: exchange control streams carrying SETTINGS (including
    /// GEN_ABILITY) and return the connected client.
    pub async fn handshake(io: T, ability: GenAbility) -> Result<H3ClientConnection<T>, H3Error> {
        let (mut quic, local, payload) = Self::start(io, ability);
        let control = quic.open_uni();
        quic.send(control, &payload, true).await?;
        let mut conn = H3ClientConnection {
            quic,
            local,
            remote: H3Settings::default(),
            ready: std::collections::HashMap::new(),
            server_control_seen: false,
            goaway: false,
            resumed: false,
        };
        // Await the server's control stream before the first request —
        // the full 1-RTT setup.
        while !conn.server_control_seen {
            let (stream, data) = conn.quic.recv_any_stream().await?;
            conn.consume(stream, data)?;
        }
        Ok(conn)
    }

    /// 0-RTT resumption: adopt the ticket's remembered server settings
    /// and return immediately — without reading a single server byte —
    /// so the first request rides the same flight as the client's
    /// SETTINGS. The server's real control stream is applied whenever it
    /// arrives, transparently correcting a stale ticket.
    pub async fn handshake_0rtt(
        io: T,
        ability: GenAbility,
        ticket: SessionTicket,
    ) -> Result<H3ClientConnection<T>, H3Error> {
        let (mut quic, local, payload) = Self::start(io, ability);
        let control = quic.open_uni();
        quic.send(control, &payload, true).await?;
        Ok(H3ClientConnection {
            quic,
            local,
            remote: ticket.server_settings,
            ready: std::collections::HashMap::new(),
            server_control_seen: false,
            goaway: false,
            resumed: true,
        })
    }

    /// Mint a resumption ticket for a future [`handshake_0rtt`].
    ///
    /// [`handshake_0rtt`]: H3ClientConnection::handshake_0rtt
    pub fn session_ticket(&self) -> SessionTicket {
        SessionTicket {
            server_settings: self.remote,
        }
    }

    /// Whether this connection resumed from a ticket.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Whether the server's authoritative control stream has been seen
    /// (always true after [`H3ClientConnection::handshake`]; becomes true
    /// on a 0-RTT connection once any response has been collected).
    pub fn server_control_seen(&self) -> bool {
        self.server_control_seen
    }

    /// Whether the server announced graceful shutdown (GOAWAY).
    pub fn goaway_received(&self) -> bool {
        self.goaway
    }

    /// The server's advertised ability.
    pub fn server_ability(&self) -> GenAbility {
        self.remote.gen_ability
    }

    /// The shared capability after negotiation.
    pub fn negotiated_ability(&self) -> GenAbility {
        self.local.gen_ability.intersect(self.remote.gen_ability)
    }

    /// Re-announce this client's ability mid-connection (withdraw or
    /// restore) on a fresh control-typed stream. The pair is always
    /// explicit on the wire — settings keep their previous value, so
    /// withdrawal cannot be expressed by omission.
    pub async fn update_ability(&mut self, ability: GenAbility) -> Result<(), H3Error> {
        self.local.gen_ability = ability;
        let stream = self.quic.open_uni();
        let payload = control_frame_payload(&H3Settings::ability_update_frame(ability));
        self.quic.send(stream, &payload, true).await?;
        Ok(())
    }

    /// Route one completed incoming stream: server-uni streams carry
    /// control signals, bidirectional streams carry responses (stashed
    /// until their requester asks).
    fn consume(&mut self, stream: u64, data: Vec<u8>) -> Result<(), H3Error> {
        if crate::transport::stream_id::is_uni(stream) {
            // The first authoritative SETTINGS replace a 0-RTT ticket's
            // remembered values wholesale — an omitted ability pair from
            // a non-participating server must erase the stale guess, not
            // merge with it. Later updates merge as usual.
            let mut incoming = if self.server_control_seen {
                self.remote
            } else {
                H3Settings::default()
            };
            match apply_control_stream(&data, &mut incoming)? {
                ControlSignal::Settings => {
                    self.remote = incoming;
                    self.server_control_seen = true;
                }
                ControlSignal::Goaway => self.goaway = true,
            }
        } else {
            self.ready.insert(stream, data);
        }
        Ok(())
    }

    /// Read until `stream` completes, consuming control streams and
    /// stashing other responses along the way.
    async fn collect(&mut self, stream: u64) -> Result<Response, H3Error> {
        loop {
            if let Some(data) = self.ready.remove(&stream) {
                return decode_response(&data);
            }
            let (id, data) = self.quic.recv_any_stream().await?;
            self.consume(id, data)?;
        }
    }

    /// Issue a request on a fresh bidirectional stream.
    pub async fn send_request(&mut self, req: &Request) -> Result<Response, H3Error> {
        let stream = self.quic.open_bidi();
        self.quic.send(stream, &encode_request(req), true).await?;
        self.collect(stream).await
    }

    /// Issue a batch of requests, each on its own stream, *before*
    /// reading any response — the page-load pattern. Responses are
    /// returned in request order but collected in arrival order, so one
    /// slow generation never blocks the wire behind it (no head-of-line
    /// blocking across streams).
    pub async fn send_requests(&mut self, reqs: &[Request]) -> Result<Vec<Response>, H3Error> {
        let mut streams = Vec::with_capacity(reqs.len());
        for req in reqs {
            let stream = self.quic.open_bidi();
            self.quic.send(stream, &encode_request(req), true).await?;
            streams.push(stream);
        }
        let mut out = Vec::with_capacity(streams.len());
        for stream in streams {
            out.push(self.collect(stream).await?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::serve_h3_connection;

    async fn pair(
        server_ability: GenAbility,
        client_ability: GenAbility,
    ) -> H3ClientConnection<tokio::io::DuplexStream> {
        let (a, b) = tokio::io::duplex(1 << 20);
        tokio::spawn(async move {
            let _ = serve_h3_connection(b, server_ability, |req: Request, ctx| {
                let mut resp = Response::ok(Bytes::from(format!(
                    "echo:{} gen:{}",
                    req.path,
                    ctx.negotiated().can_generate()
                )));
                resp.headers.insert("content-type", "text/plain");
                resp
            })
            .await;
        });
        H3ClientConnection::handshake(a, client_ability)
            .await
            .expect("h3 handshake")
    }

    #[tokio::test]
    async fn h3_negotiation_both_support() {
        let mut client = pair(GenAbility::full(), GenAbility::full()).await;
        assert!(client.negotiated_ability().can_generate());
        assert!(client.server_ability().can_generate());
        let resp = client.send_request(&Request::get("/h3")).await.unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(&resp.body[..], b"echo:/h3 gen:true");
    }

    #[tokio::test]
    async fn h3_negotiation_fallback() {
        let mut client = pair(GenAbility::full(), GenAbility::none()).await;
        assert!(!client.negotiated_ability().supported());
        let resp = client.send_request(&Request::get("/x")).await.unwrap();
        assert_eq!(&resp.body[..], b"echo:/x gen:false");
    }

    #[tokio::test]
    async fn h3_multiple_requests_distinct_streams() {
        let mut client = pair(GenAbility::full(), GenAbility::full()).await;
        for i in 0..5 {
            let resp = client
                .send_request(&Request::get(format!("/r{i}")))
                .await
                .unwrap();
            assert_eq!(&resp.body[..], format!("echo:/r{i} gen:true").as_bytes());
        }
    }

    #[tokio::test]
    async fn h3_post_body_travels() {
        let (a, b) = tokio::io::duplex(1 << 20);
        tokio::spawn(async move {
            let _ = serve_h3_connection(b, GenAbility::full(), |req: Request, _ctx| {
                Response::ok(Bytes::from(req.body.len().to_string()))
            })
            .await;
        });
        let mut client = H3ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let mut req = Request::get("/upload");
        req.method = "POST".into();
        req.body = Bytes::from(vec![1u8; 50_000]);
        let resp = client.send_request(&req).await.unwrap();
        assert_eq!(&resp.body[..], b"50000");
    }

    #[tokio::test]
    async fn same_ability_type_as_http2() {
        // The §3.1 point: one capability model across both protocol
        // versions. Negotiate over H3, then reuse the value with the
        // HTTP/2 Settings structure.
        let client = pair(GenAbility::upscale_only(), GenAbility::upscale_only()).await;
        let negotiated = client.negotiated_ability();
        assert!(negotiated.can_upscale());
        let h2 = sww_http2::Settings::sww(negotiated);
        assert!(h2.gen_ability.can_upscale());
    }
}
