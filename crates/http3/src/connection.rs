//! HTTP/3 connection endpoints: control-stream SETTINGS exchange carrying
//! the SWW extension, and request/response transfer on bidirectional
//! streams — demonstrating the paper's §3.1 claim that the HTTP/2
//! negotiation carries over to HTTP/3 unchanged in spirit.

use crate::frame::{FrameError, H3Frame};
use crate::qpack;
use crate::settings::H3Settings;
use crate::transport::{QuicLite, TransportError};
use crate::varint;
use bytes::Bytes;
use sww_http2::{GenAbility, Request, Response};
use tokio::io::{AsyncRead, AsyncWrite};

/// Unidirectional stream type for the control stream (RFC 9114 §6.2.1).
pub const STREAM_TYPE_CONTROL: u64 = 0x00;

/// HTTP/3 layer errors.
#[derive(Debug)]
pub enum H3Error {
    /// Transport failure.
    Transport(TransportError),
    /// Frame-layer failure.
    Frame(FrameError),
    /// QPACK failure.
    Qpack(qpack::QpackError),
    /// Semantic violation.
    Protocol(String),
}

impl std::fmt::Display for H3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            H3Error::Transport(e) => write!(f, "transport: {e}"),
            H3Error::Frame(e) => write!(f, "frame: {e:?}"),
            H3Error::Qpack(e) => write!(f, "qpack: {e:?}"),
            H3Error::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for H3Error {}

impl From<TransportError> for H3Error {
    fn from(e: TransportError) -> Self {
        H3Error::Transport(e)
    }
}

impl From<FrameError> for H3Error {
    fn from(e: FrameError) -> Self {
        H3Error::Frame(e)
    }
}

impl From<qpack::QpackError> for H3Error {
    fn from(e: qpack::QpackError) -> Self {
        H3Error::Qpack(e)
    }
}

/// Build the control-stream payload: stream type + SETTINGS frame.
fn control_stream_payload(settings: &H3Settings) -> Vec<u8> {
    let mut out = Vec::new();
    varint::encode(STREAM_TYPE_CONTROL, &mut out);
    settings.to_frame().encode(&mut out);
    out
}

/// Parse a received control stream: verify the type and apply SETTINGS.
fn apply_control_stream(data: &[u8], settings: &mut H3Settings) -> Result<(), H3Error> {
    let mut pos = 0usize;
    let stream_type = varint::decode(data, &mut pos)
        .map_err(|_| H3Error::Protocol("control stream type truncated".into()))?;
    if stream_type != STREAM_TYPE_CONTROL {
        return Err(H3Error::Protocol(format!(
            "unexpected unidirectional stream type {stream_type}"
        )));
    }
    let frame = H3Frame::decode(data, &mut pos)?;
    match frame {
        H3Frame::Settings(pairs) => {
            settings.apply(&pairs);
            Ok(())
        }
        other => Err(H3Error::Protocol(format!(
            "first control frame must be SETTINGS, got {other:?}"
        ))),
    }
}

/// Encode a request as an HTTP/3 request-stream payload.
fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    H3Frame::Headers(Bytes::from(qpack::encode(&req.to_fields()))).encode(&mut out);
    if !req.body.is_empty() {
        H3Frame::Data(req.body.clone()).encode(&mut out);
    }
    out
}

/// Decode a request-stream payload into a request.
fn decode_request(data: &[u8]) -> Result<Request, H3Error> {
    let (fields, body) = decode_message(data)?;
    let mut req = Request::from_fields(fields).map_err(|e| H3Error::Protocol(e.to_string()))?;
    req.body = body;
    Ok(req)
}

/// Encode a response as a response-stream payload.
fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    H3Frame::Headers(Bytes::from(qpack::encode(&resp.to_fields()))).encode(&mut out);
    if !resp.body.is_empty() {
        H3Frame::Data(resp.body.clone()).encode(&mut out);
    }
    out
}

fn decode_response(data: &[u8]) -> Result<Response, H3Error> {
    let (fields, body) = decode_message(data)?;
    let mut resp = Response::from_fields(fields).map_err(|e| H3Error::Protocol(e.to_string()))?;
    resp.body = body;
    Ok(resp)
}

/// Shared message decoding: HEADERS then zero or more DATA frames,
/// ignoring reserved/unknown frames per RFC 9114 §9.
fn decode_message(data: &[u8]) -> Result<(Vec<sww_http2::hpack::HeaderField>, Bytes), H3Error> {
    let mut pos = 0usize;
    let mut fields = None;
    let mut body = Vec::new();
    while pos < data.len() {
        match H3Frame::decode(data, &mut pos)? {
            H3Frame::Headers(block) => {
                if fields.is_none() {
                    fields = Some(qpack::decode(&block)?);
                }
                // A second HEADERS frame would be trailers; ignored.
            }
            H3Frame::Data(d) => body.extend_from_slice(&d),
            H3Frame::Unknown { .. } => {} // greased frames are skipped
            other => {
                return Err(H3Error::Protocol(format!(
                    "unexpected frame on request stream: {other:?}"
                )))
            }
        }
    }
    let fields = fields.ok_or_else(|| H3Error::Protocol("message without HEADERS".into()))?;
    Ok((fields, Bytes::from(body)))
}

/// An HTTP/3 client connection.
pub struct H3ClientConnection<T> {
    quic: QuicLite<T>,
    local: H3Settings,
    remote: H3Settings,
}

impl<T: AsyncRead + AsyncWrite + Unpin> H3ClientConnection<T> {
    /// Handshake: exchange control streams carrying SETTINGS (including
    /// GEN_ABILITY) and return the connected client.
    pub async fn handshake(io: T, ability: GenAbility) -> Result<H3ClientConnection<T>, H3Error> {
        let mut quic = QuicLite::client(io);
        let local = H3Settings::sww(ability);
        let control = quic.open_uni();
        quic.send(control, &control_stream_payload(&local), true)
            .await?;
        // Await the server's control stream (server-uni id 3).
        let data = quic.recv_stream(3).await?;
        let mut remote = H3Settings::default();
        apply_control_stream(&data, &mut remote)?;
        Ok(H3ClientConnection {
            quic,
            local,
            remote,
        })
    }

    /// The server's advertised ability.
    pub fn server_ability(&self) -> GenAbility {
        self.remote.gen_ability
    }

    /// The shared capability after negotiation.
    pub fn negotiated_ability(&self) -> GenAbility {
        self.local.gen_ability.intersect(self.remote.gen_ability)
    }

    /// Issue a request on a fresh bidirectional stream.
    pub async fn send_request(&mut self, req: &Request) -> Result<Response, H3Error> {
        let stream = self.quic.open_bidi();
        self.quic.send(stream, &encode_request(req), true).await?;
        let data = self.quic.recv_stream(stream).await?;
        decode_response(&data)
    }
}

/// Serve one HTTP/3 connection: exchange SETTINGS, then answer request
/// streams until the peer closes.
pub async fn serve_h3_connection<T, H>(
    io: T,
    ability: GenAbility,
    mut handler: H,
) -> Result<u64, H3Error>
where
    T: AsyncRead + AsyncWrite + Unpin,
    H: FnMut(Request, GenAbility) -> Response,
{
    let mut quic = QuicLite::server(io);
    let local = H3Settings::sww(ability);
    let control = quic.open_uni();
    quic.send(control, &control_stream_payload(&local), true)
        .await?;
    let mut remote = H3Settings::default();
    let mut served = 0u64;
    let mut got_control = false;
    loop {
        let (stream, data) = match quic.recv_any_stream().await {
            Ok(x) => x,
            Err(TransportError::Closed) => return Ok(served),
            Err(e) => return Err(e.into()),
        };
        if crate::transport::stream_id::is_uni(stream) {
            apply_control_stream(&data, &mut remote)?;
            got_control = true;
            continue;
        }
        if !got_control {
            return Err(H3Error::Protocol("request before client SETTINGS".into()));
        }
        let req = decode_request(&data)?;
        let negotiated = local.gen_ability.intersect(remote.gen_ability);
        let resp = handler(req, negotiated);
        quic.send(stream, &encode_response(&resp), true).await?;
        served += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    async fn pair(
        server_ability: GenAbility,
        client_ability: GenAbility,
    ) -> H3ClientConnection<tokio::io::DuplexStream> {
        let (a, b) = tokio::io::duplex(1 << 20);
        tokio::spawn(async move {
            let _ = serve_h3_connection(b, server_ability, |req, negotiated| {
                let mut resp = Response::ok(Bytes::from(format!(
                    "echo:{} gen:{}",
                    req.path,
                    negotiated.can_generate()
                )));
                resp.headers.insert("content-type", "text/plain");
                resp
            })
            .await;
        });
        H3ClientConnection::handshake(a, client_ability)
            .await
            .expect("h3 handshake")
    }

    #[tokio::test]
    async fn h3_negotiation_both_support() {
        let mut client = pair(GenAbility::full(), GenAbility::full()).await;
        assert!(client.negotiated_ability().can_generate());
        assert!(client.server_ability().can_generate());
        let resp = client.send_request(&Request::get("/h3")).await.unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(&resp.body[..], b"echo:/h3 gen:true");
    }

    #[tokio::test]
    async fn h3_negotiation_fallback() {
        let mut client = pair(GenAbility::full(), GenAbility::none()).await;
        assert!(!client.negotiated_ability().supported());
        let resp = client.send_request(&Request::get("/x")).await.unwrap();
        assert_eq!(&resp.body[..], b"echo:/x gen:false");
    }

    #[tokio::test]
    async fn h3_multiple_requests_distinct_streams() {
        let mut client = pair(GenAbility::full(), GenAbility::full()).await;
        for i in 0..5 {
            let resp = client
                .send_request(&Request::get(format!("/r{i}")))
                .await
                .unwrap();
            assert_eq!(&resp.body[..], format!("echo:/r{i} gen:true").as_bytes());
        }
    }

    #[tokio::test]
    async fn h3_post_body_travels() {
        let (a, b) = tokio::io::duplex(1 << 20);
        tokio::spawn(async move {
            let _ = serve_h3_connection(b, GenAbility::full(), |req, _| {
                Response::ok(Bytes::from(req.body.len().to_string()))
            })
            .await;
        });
        let mut client = H3ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let mut req = Request::get("/upload");
        req.method = "POST".into();
        req.body = Bytes::from(vec![1u8; 50_000]);
        let resp = client.send_request(&req).await.unwrap();
        assert_eq!(&resp.body[..], b"50000");
    }

    #[tokio::test]
    async fn same_ability_type_as_http2() {
        // The §3.1 point: one capability model across both protocol
        // versions. Negotiate over H3, then reuse the value with the
        // HTTP/2 Settings structure.
        let client = pair(GenAbility::upscale_only(), GenAbility::upscale_only()).await;
        let negotiated = client.negotiated_ability();
        assert!(negotiated.can_upscale());
        let h2 = sww_http2::Settings::sww(negotiated);
        assert!(h2.gen_ability.can_upscale());
    }
}
