//! HTTP/3 frames (RFC 9114 §7.2): varint type + varint length + payload.

use crate::varint::{self, VarintError};
use bytes::Bytes;

/// Frame type codes (RFC 9114 §11.2.1).
pub const TYPE_DATA: u64 = 0x00;
/// HEADERS frame type.
pub const TYPE_HEADERS: u64 = 0x01;
/// CANCEL_PUSH frame type.
pub const TYPE_CANCEL_PUSH: u64 = 0x03;
/// SETTINGS frame type.
pub const TYPE_SETTINGS: u64 = 0x04;
/// PUSH_PROMISE frame type.
pub const TYPE_PUSH_PROMISE: u64 = 0x05;
/// GOAWAY frame type.
pub const TYPE_GOAWAY: u64 = 0x07;
/// MAX_PUSH_ID frame type.
pub const TYPE_MAX_PUSH_ID: u64 = 0x0d;

/// Frame types of the form `0x1f * N + 0x21` are reserved to be ignored
/// (RFC 9114 §7.2.8) — the same grease mechanism that lets the SWW
/// SETTINGS extension deploy incrementally.
pub fn is_reserved_type(t: u64) -> bool {
    t >= 0x21 && (t - 0x21).is_multiple_of(0x1f)
}

/// A parsed HTTP/3 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H3Frame {
    /// DATA: request/response content.
    Data(Bytes),
    /// HEADERS: a QPACK-encoded field section.
    Headers(Bytes),
    /// SETTINGS: identifier/value pairs (control stream only).
    Settings(Vec<(u64, u64)>),
    /// GOAWAY carrying a stream/push id.
    GoAway(u64),
    /// CANCEL_PUSH / MAX_PUSH_ID and friends we note but don't act on.
    CancelPush(u64),
    /// MAX_PUSH_ID.
    MaxPushId(u64),
    /// Reserved or unknown type: ignored per §9.
    Unknown {
        /// Raw frame type.
        kind: u64,
        /// Raw payload.
        payload: Bytes,
    },
}

/// Frame codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bytes yet (streaming decoders retry with more data).
    Incomplete,
    /// Structurally invalid frame.
    Malformed(&'static str),
}

impl From<VarintError> for FrameError {
    fn from(e: VarintError) -> Self {
        match e {
            VarintError::Truncated => FrameError::Incomplete,
            VarintError::TooLarge => FrameError::Malformed("varint too large"),
        }
    }
}

impl H3Frame {
    /// Encode into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            H3Frame::Data(p) => frame_header_payload(TYPE_DATA, p, out),
            H3Frame::Headers(p) => frame_header_payload(TYPE_HEADERS, p, out),
            H3Frame::Settings(pairs) => {
                let mut body = Vec::new();
                for &(id, value) in pairs {
                    varint::encode(id, &mut body);
                    varint::encode(value, &mut body);
                }
                frame_header_payload(TYPE_SETTINGS, &body, out);
            }
            H3Frame::GoAway(id) => {
                let mut body = Vec::new();
                varint::encode(*id, &mut body);
                frame_header_payload(TYPE_GOAWAY, &body, out);
            }
            H3Frame::CancelPush(id) => {
                let mut body = Vec::new();
                varint::encode(*id, &mut body);
                frame_header_payload(TYPE_CANCEL_PUSH, &body, out);
            }
            H3Frame::MaxPushId(id) => {
                let mut body = Vec::new();
                varint::encode(*id, &mut body);
                frame_header_payload(TYPE_MAX_PUSH_ID, &body, out);
            }
            H3Frame::Unknown { kind, payload } => frame_header_payload(*kind, payload, out),
        }
    }

    /// Decode one frame from `buf[*pos..]`, advancing `pos`. Returns
    /// `Err(Incomplete)` when more bytes are needed.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<H3Frame, FrameError> {
        let mut p = *pos;
        let kind = varint::decode(buf, &mut p)?;
        let length = varint::decode(buf, &mut p)? as usize;
        if buf.len() < p + length {
            return Err(FrameError::Incomplete);
        }
        let payload = &buf[p..p + length];
        let frame = match kind {
            TYPE_DATA => H3Frame::Data(Bytes::copy_from_slice(payload)),
            TYPE_HEADERS => H3Frame::Headers(Bytes::copy_from_slice(payload)),
            TYPE_SETTINGS => {
                let mut pairs = Vec::new();
                let mut q = 0usize;
                while q < payload.len() {
                    let id = varint::decode(payload, &mut q)
                        .map_err(|_| FrameError::Malformed("settings id truncated"))?;
                    let value = varint::decode(payload, &mut q)
                        .map_err(|_| FrameError::Malformed("settings value truncated"))?;
                    pairs.push((id, value));
                }
                H3Frame::Settings(pairs)
            }
            TYPE_GOAWAY => {
                let mut q = 0usize;
                let id = varint::decode(payload, &mut q)
                    .map_err(|_| FrameError::Malformed("goaway id truncated"))?;
                H3Frame::GoAway(id)
            }
            TYPE_CANCEL_PUSH => {
                let mut q = 0usize;
                let id = varint::decode(payload, &mut q)
                    .map_err(|_| FrameError::Malformed("cancel_push id truncated"))?;
                H3Frame::CancelPush(id)
            }
            TYPE_MAX_PUSH_ID => {
                let mut q = 0usize;
                let id = varint::decode(payload, &mut q)
                    .map_err(|_| FrameError::Malformed("max_push_id truncated"))?;
                H3Frame::MaxPushId(id)
            }
            other => H3Frame::Unknown {
                kind: other,
                payload: Bytes::copy_from_slice(payload),
            },
        };
        *pos = p + length;
        Ok(frame)
    }
}

fn frame_header_payload(kind: u64, payload: &[u8], out: &mut Vec<u8>) {
    varint::encode(kind, out);
    varint::encode(payload.len() as u64, out);
    out.extend_from_slice(payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: &H3Frame) -> H3Frame {
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let mut pos = 0;
        let out = H3Frame::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        out
    }

    #[test]
    fn all_frames_roundtrip() {
        for f in [
            H3Frame::Data(Bytes::from_static(b"body")),
            H3Frame::Headers(Bytes::from_static(&[0x00, 0x00, 0xd1])),
            H3Frame::Settings(vec![(0x06, 4096), (0x4242, 1)]),
            H3Frame::GoAway(12),
            H3Frame::CancelPush(3),
            H3Frame::MaxPushId(100),
            H3Frame::Unknown {
                kind: 0x21,
                payload: Bytes::from_static(b"grease"),
            },
        ] {
            assert_eq!(roundtrip(&f), f);
        }
    }

    #[test]
    fn incomplete_input_signals_retry() {
        let mut buf = Vec::new();
        H3Frame::Data(Bytes::from_static(b"0123456789")).encode(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(
                H3Frame::decode(&buf[..cut], &mut pos),
                Err(FrameError::Incomplete),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn reserved_types_detected() {
        assert!(is_reserved_type(0x21));
        assert!(is_reserved_type(0x21 + 0x1f));
        assert!(is_reserved_type(0x21 + 31 * 0x1f));
        assert!(!is_reserved_type(0x04));
        assert!(!is_reserved_type(0x22));
    }

    #[test]
    fn back_to_back_frames_decode_sequentially() {
        let mut buf = Vec::new();
        H3Frame::Headers(Bytes::from_static(b"h")).encode(&mut buf);
        H3Frame::Data(Bytes::from_static(b"d1")).encode(&mut buf);
        H3Frame::Data(Bytes::from_static(b"d2")).encode(&mut buf);
        let mut pos = 0;
        assert!(matches!(
            H3Frame::decode(&buf, &mut pos).unwrap(),
            H3Frame::Headers(_)
        ));
        assert!(matches!(
            H3Frame::decode(&buf, &mut pos).unwrap(),
            H3Frame::Data(_)
        ));
        assert!(matches!(
            H3Frame::decode(&buf, &mut pos).unwrap(),
            H3Frame::Data(_)
        ));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn malformed_settings_rejected() {
        // SETTINGS body with an id but no value.
        let mut buf = Vec::new();
        varint::encode(TYPE_SETTINGS, &mut buf);
        varint::encode(1, &mut buf);
        buf.push(0x06);
        let mut pos = 0;
        assert!(matches!(
            H3Frame::decode(&buf, &mut pos),
            Err(FrameError::Malformed(_))
        ));
    }
}
