#![warn(missing_docs)]

//! HTTP/3 support for SWW — the paper's §3.1 next step.
//!
//! "As HTTP/3 adoption is increasing, future SWW will require HTTP/3
//! support. We believe that similar use of SETTINGS under HTTP/3 can allow
//! to advertise client-server GenAI capabilities."
//!
//! This crate implements the HTTP/3 layer (RFC 9114 subset) over a QUIC
//! stream abstraction:
//!
//! * [`varint`] — QUIC variable-length integers (RFC 9000 §16), the
//!   encoding every HTTP/3 structure is built from,
//! * [`frame`] — HTTP/3 frames (DATA, HEADERS, SETTINGS, GOAWAY, …) with
//!   the reserved-type/ignore-unknown rules,
//! * [`settings`] — HTTP/3 SETTINGS including the SWW extension. HTTP/3
//!   setting identifiers of the form `0x1f * N + 0x21` are reserved for
//!   exercising ignore-unknown behaviour, so the GEN_ABILITY identifier is
//!   registered outside that space, mirroring the 0x07 prototype id,
//! * [`qpack`] — QPACK-lite: the RFC 9204 static table and prefixed-
//!   integer/literal encodings without dynamic-table state (a legal,
//!   interoperable encoder configuration),
//! * [`transport`] — a minimal QUIC-like stream multiplexer over any
//!   reliable byte pipe: client/server unidirectional control streams and
//!   bidirectional request streams with varint stream framing. A real
//!   QUIC implementation (UDP, loss recovery, TLS) is out of scope; the
//!   paper's negotiation semantics only need ordered streams,
//! * [`connection`] — the H3 client connection: control-stream SETTINGS
//!   exchange, GEN_ABILITY negotiation, pipelined request streams and
//!   0-RTT resumption tickets,
//! * [`server`] — the serving driver: one event loop per connection that
//!   dispatches each request stream to its own worker, so a slow
//!   generation never head-of-line-blocks the other streams.

pub mod connection;
pub mod frame;
pub mod qpack;
pub mod server;
pub mod settings;
pub mod transport;
pub mod varint;

pub use connection::{H3ClientConnection, H3Error, SessionTicket};
pub use server::{serve_h3_connection, serve_h3_connection_until, H3ServeContext, H3ServeStats};
pub use settings::{H3Settings, SETTINGS_SWW_GEN_ABILITY};

/// Re-export: the capability type is shared with HTTP/2.
pub use sww_http2::GenAbility;
