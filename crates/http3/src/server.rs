//! The HTTP/3 serving driver: a single-task event loop that multiplexes
//! control streams, request streams and handler completions over one
//! `QuicLite` connection.
//!
//! The h2 driver (`sww_http2::serve_connection_until`) answers requests
//! inline, one at a time — HTTP/2's stream multiplexing shares a
//! connection, but a slow handler still serializes everything behind it.
//! Here each decoded request is handed to its own worker thread and the
//! loop keeps reading; responses are shipped the moment they finish, in
//! *completion* order, not arrival order. That is the QUIC property the
//! paper's §3.1 cares about: one slow generation does not stall the other
//! recipes on the page.
//!
//! The loop itself never blocks on a handler. It parks in a single
//! `poll_fn` that watches two event sources at once: the transport
//! ([`QuicLite::poll_recv_chunk`] is restartable, so a partially read
//! frame survives between polls) and a completion queue fed by the worker
//! threads.

use crate::connection::{
    apply_control_stream, control_frame_payload, control_stream_payload, decode_request,
    encode_response, ControlSignal, H3Error,
};
use crate::frame::H3Frame;
use crate::settings::H3Settings;
use crate::transport::{stream_id, QuicLite, TransportError};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::task::Poll;
use sww_http2::{GenAbility, Request, Response};
use tokio::io::{AsyncRead, AsyncWrite};

/// Per-request negotiation context handed to the h3 handler, mirroring
/// `sww_http2::ServeContext`. Abilities are re-read from connection state
/// on every request, so a mid-connection SETTINGS update (withdraw or
/// restore) takes effect on the next request — the same live-renegotiation
/// semantics as the h2 path.
#[derive(Debug, Clone, Copy)]
pub struct H3ServeContext {
    /// The client's most recently advertised ability.
    pub client_ability: GenAbility,
    /// The ability this server announced on its control stream.
    pub server_ability: GenAbility,
}

impl H3ServeContext {
    /// The shared capability: intersection of both advertisements.
    pub fn negotiated(&self) -> GenAbility {
        self.client_ability.intersect(self.server_ability)
    }
}

/// What one connection did, returned when the peer hangs up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct H3ServeStats {
    /// Request streams decoded and dispatched.
    pub requests: u64,
    /// Responses fully written back.
    pub responses: u64,
    /// Client control-stream messages applied (initial SETTINGS plus any
    /// mid-connection ability updates).
    pub settings_updates: u64,
    /// Whether this server sent GOAWAY before closing.
    pub sent_goaway: bool,
}

/// Completions flowing from worker threads back to the event loop.
type DoneQueue = Arc<Mutex<VecDeque<(u64, Response)>>>;

enum Event {
    /// A handler finished; drain the completion queue.
    Completed,
    /// A whole incoming stream arrived.
    Stream(u64, Vec<u8>),
    /// The peer closed the pipe.
    Closed,
    /// `should_close` flipped while the loop was parked.
    Drain,
}

/// Serve one HTTP/3 connection until the peer closes or `should_close`
/// reports drain.
///
/// The server announces `ability` in its control-stream SETTINGS; each
/// request stream is decoded and dispatched to `handler` on a dedicated
/// worker thread, so concurrent requests make progress independently.
/// When `should_close` turns true the server sends GOAWAY on a fresh
/// control-typed stream, stops accepting new request streams, finishes
/// the ones in flight and returns.
///
/// The handler must be `Fn + Send + Sync` (not `FnMut`): it runs on
/// worker threads, concurrently with itself.
pub async fn serve_h3_connection_until<T, H, P>(
    io: T,
    ability: GenAbility,
    handler: H,
    should_close: P,
) -> Result<H3ServeStats, H3Error>
where
    T: AsyncRead + AsyncWrite + Unpin,
    H: Fn(Request, H3ServeContext) -> Response + Send + Sync + 'static,
    P: Fn() -> bool,
{
    let mut quic = QuicLite::server(io);
    let local = H3Settings::sww(ability);
    let control = quic.open_uni();
    quic.send(control, &control_stream_payload(&local), true)
        .await?;

    let handler = Arc::new(handler);
    let done: DoneQueue = Arc::new(Mutex::new(VecDeque::new()));
    let mut remote = H3Settings::default();
    let mut got_control = false;
    let mut outstanding = 0usize;
    let mut peer_closed = false;
    let mut stats = H3ServeStats::default();

    loop {
        // Ship every finished response before blocking again — completion
        // order, not arrival order.
        loop {
            let next = done.lock().expect("h3 completion queue").pop_front();
            let Some((stream, resp)) = next else { break };
            quic.send(stream, &encode_response(&resp), true).await?;
            outstanding -= 1;
            stats.responses += 1;
        }

        if should_close() && !stats.sent_goaway {
            // GOAWAY rides a fresh control-typed stream (the shim closes
            // each stream with FIN, so the original control stream is
            // already spent). The id names the first unaccepted request
            // stream, per RFC 9114 §5.2.
            let goaway = quic.open_uni();
            let payload = control_frame_payload(&H3Frame::GoAway(stats.requests * 4));
            quic.send(goaway, &payload, true).await?;
            stats.sent_goaway = true;
        }

        if peer_closed || stats.sent_goaway {
            if outstanding == 0 {
                return Ok(stats);
            }
            // Only handler completions can make progress now.
            std::future::poll_fn(|_cx| {
                if done.lock().expect("h3 completion queue").is_empty() {
                    Poll::Pending
                } else {
                    Poll::Ready(())
                }
            })
            .await;
            continue;
        }

        // Park until a worker completes, the transport yields a whole
        // stream, or drain is requested. The executor re-polls pending
        // futures, so the completion queue and drain flag are re-checked
        // even though neither has a waker to signal.
        let event = std::future::poll_fn(|cx| {
            if !done.lock().expect("h3 completion queue").is_empty() {
                return Poll::Ready(Ok(Event::Completed));
            }
            if should_close() {
                return Poll::Ready(Ok(Event::Drain));
            }
            match quic.poll_recv_any_stream(cx) {
                Poll::Ready(Ok((id, data))) => Poll::Ready(Ok(Event::Stream(id, data))),
                Poll::Ready(Err(TransportError::Closed)) => Poll::Ready(Ok(Event::Closed)),
                Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
                Poll::Pending => Poll::Pending,
            }
        })
        .await?;

        match event {
            Event::Completed | Event::Drain => {}
            Event::Closed => peer_closed = true,
            Event::Stream(stream, data) if stream_id::is_uni(stream) => {
                if apply_control_stream(&data, &mut remote)? == ControlSignal::Settings {
                    got_control = true;
                    stats.settings_updates += 1;
                }
            }
            Event::Stream(stream, data) => {
                if !got_control {
                    return Err(H3Error::Protocol("request before client SETTINGS".into()));
                }
                let req = decode_request(&data)?;
                stats.requests += 1;
                let ctx = H3ServeContext {
                    client_ability: remote.gen_ability,
                    server_ability: local.gen_ability,
                };
                let work = Arc::clone(&handler);
                let sink = Arc::clone(&done);
                outstanding += 1;
                std::thread::spawn(move || {
                    let resp = work(req, ctx);
                    sink.lock()
                        .expect("h3 completion queue")
                        .push_back((stream, resp));
                });
            }
        }
    }
}

/// Serve one HTTP/3 connection until the peer closes.
pub async fn serve_h3_connection<T, H>(
    io: T,
    ability: GenAbility,
    handler: H,
) -> Result<H3ServeStats, H3Error>
where
    T: AsyncRead + AsyncWrite + Unpin,
    H: Fn(Request, H3ServeContext) -> Response + Send + Sync + 'static,
{
    serve_h3_connection_until(io, ability, handler, || false).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::H3ClientConnection;
    use bytes::Bytes;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[tokio::test]
    async fn slow_stream_does_not_block_fast_streams() {
        // The no-HoL property at the transport layer: stream /slow takes
        // ~80ms of wall time inside its handler, yet /fast responses
        // complete and are shipped while it runs.
        let (a, b) = tokio::io::duplex(1 << 20);
        tokio::spawn(async move {
            let _ = serve_h3_connection(b, GenAbility::full(), |req: Request, _ctx| {
                if req.path == "/slow" {
                    std::thread::sleep(Duration::from_millis(80));
                }
                Response::ok(Bytes::from(format!("done:{}", req.path)))
            })
            .await;
        });
        let mut client = H3ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let reqs = vec![
            Request::get("/slow"),
            Request::get("/fast1"),
            Request::get("/fast2"),
        ];
        let start = std::time::Instant::now();
        let resps = client.send_requests(&reqs).await.unwrap();
        let elapsed = start.elapsed();
        assert_eq!(&resps[0].body[..], b"done:/slow");
        assert_eq!(&resps[1].body[..], b"done:/fast1");
        assert_eq!(&resps[2].body[..], b"done:/fast2");
        // Serial execution would need 80ms for /slow alone; concurrent
        // handling keeps total near the single slowest request.
        assert!(
            elapsed < Duration::from_millis(240),
            "page took {elapsed:?}, streams appear serialized"
        );
    }

    #[tokio::test]
    async fn ability_withdraw_and_restore_take_effect_mid_connection() {
        let (a, b) = tokio::io::duplex(1 << 20);
        tokio::spawn(async move {
            let _ = serve_h3_connection(b, GenAbility::full(), |_req, ctx: H3ServeContext| {
                Response::ok(Bytes::from(format!(
                    "gen:{}",
                    ctx.negotiated().can_generate()
                )))
            })
            .await;
        });
        let mut client = H3ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let r = client.send_request(&Request::get("/a")).await.unwrap();
        assert_eq!(&r.body[..], b"gen:true");
        // Withdraw: the zero-valued pair must go on the wire.
        client.update_ability(GenAbility::none()).await.unwrap();
        let r = client.send_request(&Request::get("/b")).await.unwrap();
        assert_eq!(&r.body[..], b"gen:false");
        // Restore.
        client.update_ability(GenAbility::full()).await.unwrap();
        let r = client.send_request(&Request::get("/c")).await.unwrap();
        assert_eq!(&r.body[..], b"gen:true");
    }

    #[tokio::test]
    async fn drain_sends_goaway_and_finishes_in_flight() {
        let closing = Arc::new(AtomicBool::new(false));
        let close_flag = Arc::clone(&closing);
        let (a, b) = tokio::io::duplex(1 << 20);
        let server = tokio::spawn(async move {
            serve_h3_connection_until(
                b,
                GenAbility::full(),
                |req: Request, _ctx| Response::ok(Bytes::from(format!("ok:{}", req.path))),
                move || close_flag.load(Ordering::SeqCst),
            )
            .await
        });
        let mut client = H3ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let r = client.send_request(&Request::get("/one")).await.unwrap();
        assert_eq!(&r.body[..], b"ok:/one");
        closing.store(true, Ordering::SeqCst);
        let stats = server.await.unwrap().unwrap();
        assert!(stats.sent_goaway);
        assert_eq!(stats.responses, 1);
    }

    #[tokio::test]
    async fn zero_rtt_resume_skips_the_settings_wait() {
        // First connection: full handshake, mint a ticket.
        let (a, b) = tokio::io::duplex(1 << 20);
        tokio::spawn(async move {
            let _ = serve_h3_connection(b, GenAbility::full(), |req: Request, _| {
                Response::ok(Bytes::from(format!("v:{}", req.path)))
            })
            .await;
        });
        let client = H3ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let ticket = client.session_ticket();
        assert!(ticket.server_settings.gen_ability.can_generate());

        // Second connection: request departs before any server byte is
        // read, negotiating off the ticket.
        let (a2, b2) = tokio::io::duplex(1 << 20);
        tokio::spawn(async move {
            let _ = serve_h3_connection(b2, GenAbility::full(), |req: Request, _| {
                Response::ok(Bytes::from(format!("v:{}", req.path)))
            })
            .await;
        });
        let mut resumed = H3ClientConnection::handshake_0rtt(a2, GenAbility::full(), ticket)
            .await
            .unwrap();
        assert!(resumed.resumed());
        assert!(!resumed.server_control_seen());
        assert!(resumed.negotiated_ability().can_generate());
        let r = resumed.send_request(&Request::get("/0rtt")).await.unwrap();
        assert_eq!(&r.body[..], b"v:/0rtt");
        // Collecting the response necessarily drained the server's real
        // control stream: the ticket is now validated.
        assert!(resumed.server_control_seen());
    }

    #[tokio::test]
    async fn stale_ticket_corrected_by_real_control_stream() {
        // Ticket claims full ability, but the server came back degraded.
        let ticket = SessionTicketFixture::full();
        let (a, b) = tokio::io::duplex(1 << 20);
        tokio::spawn(async move {
            let _ = serve_h3_connection(b, GenAbility::none(), |_req, ctx: H3ServeContext| {
                Response::ok(Bytes::from(format!(
                    "gen:{}",
                    ctx.negotiated().can_generate()
                )))
            })
            .await;
        });
        let mut client = H3ClientConnection::handshake_0rtt(a, GenAbility::full(), ticket)
            .await
            .unwrap();
        // Optimistic view from the ticket...
        assert!(client.negotiated_ability().can_generate());
        let r = client.send_request(&Request::get("/x")).await.unwrap();
        // ...the server answered with its degraded reality, and the
        // client's view has been corrected by the authoritative SETTINGS.
        assert_eq!(&r.body[..], b"gen:false");
        assert!(!client.negotiated_ability().can_generate());
    }

    /// Ticket fixtures for resumption tests.
    struct SessionTicketFixture;
    impl SessionTicketFixture {
        fn full() -> crate::connection::SessionTicket {
            crate::connection::SessionTicket {
                server_settings: H3Settings::sww(GenAbility::full()),
            }
        }
    }
}
