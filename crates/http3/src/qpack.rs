//! QPACK-lite (RFC 9204 subset): field sections encoded with a zeroed
//! required-insert-count prefix and static-table-only references — a legal
//! QPACK configuration (dynamic capacity 0) that never blocks on the
//! encoder stream.
//!
//! The static table reuses the HPACK static table (1-based there, 0-based
//! here). RFC 9204 defines its own 99-entry table; since both ends of this
//! implementation share the code, the table choice is self-consistent and
//! the *mechanism* (prefixed integers, name references, Huffman literals)
//! is exercised identically.

use sww_http2::hpack::huffman;
use sww_http2::hpack::table::STATIC_TABLE;
use sww_http2::hpack::HeaderField;

/// QPACK errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QpackError {
    /// Input ended early or a prefix was inconsistent.
    Truncated,
    /// Unknown static index.
    BadIndex(u64),
    /// A representation this static-only decoder cannot resolve.
    DynamicReference,
    /// Invalid string payload.
    BadString,
}

/// Encode a prefixed integer (RFC 9204 §4.1.1 — same scheme as HPACK).
fn put_int(value: u64, prefix_bits: u8, tag: u8, out: &mut Vec<u8>) {
    let max_prefix = (1u64 << prefix_bits) - 1;
    if value < max_prefix {
        out.push(tag | value as u8);
        return;
    }
    out.push(tag | max_prefix as u8);
    let mut rest = value - max_prefix;
    while rest >= 128 {
        out.push((rest % 128) as u8 | 0x80);
        rest /= 128;
    }
    out.push(rest as u8);
}

fn get_int(buf: &[u8], pos: &mut usize, prefix_bits: u8) -> Result<u64, QpackError> {
    let first = *buf.get(*pos).ok_or(QpackError::Truncated)?;
    *pos += 1;
    let max_prefix = (1u64 << prefix_bits) - 1;
    let mut value = u64::from(first) & max_prefix;
    if value < max_prefix {
        return Ok(value);
    }
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(QpackError::Truncated)?;
        *pos += 1;
        if shift > 56 {
            return Err(QpackError::Truncated);
        }
        value += u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn put_string(s: &[u8], prefix_bits: u8, tag: u8, huffman_bit: u8, out: &mut Vec<u8>) {
    let hlen = huffman::encoded_len(s);
    if hlen < s.len() {
        put_int(hlen as u64, prefix_bits, tag | huffman_bit, out);
        out.extend_from_slice(&huffman::encode(s));
    } else {
        put_int(s.len() as u64, prefix_bits, tag, out);
        out.extend_from_slice(s);
    }
}

fn get_string(
    buf: &[u8],
    pos: &mut usize,
    prefix_bits: u8,
    huffman_bit: u8,
) -> Result<String, QpackError> {
    let tag = *buf.get(*pos).ok_or(QpackError::Truncated)?;
    let huff = tag & huffman_bit != 0;
    let len = get_int(buf, pos, prefix_bits)? as usize;
    let end = pos.checked_add(len).ok_or(QpackError::Truncated)?;
    if end > buf.len() {
        return Err(QpackError::Truncated);
    }
    let raw = &buf[*pos..end];
    *pos = end;
    let bytes = if huff {
        huffman::decode(raw).map_err(|_| QpackError::BadString)?
    } else {
        raw.to_vec()
    };
    String::from_utf8(bytes).map_err(|_| QpackError::BadString)
}

/// Find a static-table index (0-based) with an exact match.
fn static_find(name: &str, value: &str) -> Option<u64> {
    STATIC_TABLE
        .iter()
        .position(|&(n, v)| n == name && v == value)
        .map(|i| i as u64)
}

fn static_find_name(name: &str) -> Option<u64> {
    STATIC_TABLE
        .iter()
        .position(|&(n, _)| n == name)
        .map(|i| i as u64)
}

/// Encode a field section.
pub fn encode(fields: &[HeaderField]) -> Vec<u8> {
    let mut out = Vec::with_capacity(fields.len() * 12);
    // Encoded field section prefix (§4.5.1): required insert count 0,
    // sign 0, delta base 0 — static-only sections never reference the
    // dynamic table.
    out.push(0x00);
    out.push(0x00);
    for f in fields {
        if let Some(idx) = static_find(&f.name, &f.value) {
            // Indexed field line, static (1 T=1 6-bit index): 11xxxxxx.
            put_int(idx, 6, 0xc0, &mut out);
        } else if let Some(idx) = static_find_name(&f.name) {
            // Literal with name reference, static (0101xxxx): N=0.
            put_int(idx, 4, 0x50, &mut out);
            put_string(f.value.as_bytes(), 7, 0x00, 0x80, &mut out);
        } else {
            // Literal with literal name (001Nhxxx): N=0, 3-bit name len.
            put_string(f.name.as_bytes(), 3, 0x20, 0x08, &mut out);
            put_string(f.value.as_bytes(), 7, 0x00, 0x80, &mut out);
        }
    }
    out
}

/// Decode a field section.
pub fn decode(buf: &[u8]) -> Result<Vec<HeaderField>, QpackError> {
    let mut pos = 0usize;
    // Prefix: required insert count + base.
    let ric = get_int(buf, &mut pos, 8)?;
    if ric != 0 {
        // A non-zero count references the dynamic table we never use.
        return Err(QpackError::DynamicReference);
    }
    let _base = get_int(buf, &mut pos, 7)?;
    let mut out = Vec::new();
    while pos < buf.len() {
        let tag = buf[pos];
        if tag & 0x80 != 0 {
            // Indexed field line: 1Txxxxxx.
            if tag & 0x40 == 0 {
                return Err(QpackError::DynamicReference);
            }
            let idx = get_int(buf, &mut pos, 6)?;
            let (n, v) = STATIC_TABLE
                .get(idx as usize)
                .ok_or(QpackError::BadIndex(idx))?;
            out.push(HeaderField::new(*n, *v));
        } else if tag & 0xc0 == 0x40 {
            // Literal with name reference: 01NTxxxx.
            if tag & 0x10 == 0 {
                return Err(QpackError::DynamicReference);
            }
            let idx = get_int(buf, &mut pos, 4)?;
            let (n, _) = STATIC_TABLE
                .get(idx as usize)
                .ok_or(QpackError::BadIndex(idx))?;
            let value = get_string(buf, &mut pos, 7, 0x80)?;
            out.push(HeaderField::new(*n, value));
        } else if tag & 0xe0 == 0x20 {
            // Literal with literal name: 001Nhxxx.
            let name = get_string(buf, &mut pos, 3, 0x08)?;
            let value = get_string(buf, &mut pos, 7, 0x80)?;
            out.push(HeaderField::new(name, value));
        } else {
            return Err(QpackError::DynamicReference);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> Vec<HeaderField> {
        vec![
            HeaderField::new(":method", "GET"),
            HeaderField::new(":scheme", "https"),
            HeaderField::new(":authority", "sww.example"),
            HeaderField::new(":path", "/wiki/landscape"),
            HeaderField::new("x-sww-client", "h3-prototype"),
        ]
    }

    #[test]
    fn roundtrip() {
        let f = fields();
        let block = encode(&f);
        assert_eq!(decode(&block).unwrap(), f);
    }

    #[test]
    fn static_exact_matches_are_compact() {
        let block = encode(&[HeaderField::new(":method", "GET")]);
        // 2-byte prefix + 1-byte indexed line.
        assert_eq!(block.len(), 3);
    }

    #[test]
    fn unknown_names_still_roundtrip() {
        let f = vec![HeaderField::new("x-completely-custom", "value with spaces")];
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn truncation_rejected() {
        // Truncating the prefix errors; an intact prefix alone is a valid
        // empty section; truncating *inside* a field errors. Use a single
        // literal-name field so every interior cut lands mid-field.
        let block = encode(&[HeaderField::new("x-very-custom-name", "long enough value")]);
        assert!(decode(&block[..0]).is_err());
        assert!(decode(&block[..1]).is_err());
        assert!(decode(&block[..2]).unwrap().is_empty());
        for cut in 3..block.len() - 1 {
            assert!(decode(&block[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn dynamic_references_rejected() {
        // Indexed field line with T=0 (dynamic).
        assert_eq!(
            decode(&[0x00, 0x00, 0x80]),
            Err(QpackError::DynamicReference)
        );
        // Non-zero required insert count.
        assert_eq!(decode(&[0x01, 0x00]), Err(QpackError::DynamicReference));
    }

    #[test]
    fn bad_static_index_rejected() {
        let mut block = vec![0x00, 0x00];
        put_int(98, 6, 0xc0, &mut block); // beyond the 61-entry table
        assert!(matches!(decode(&block), Err(QpackError::BadIndex(_))));
    }

    #[test]
    fn empty_section_is_empty_list() {
        assert!(decode(&encode(&[])).unwrap().is_empty());
    }
}
