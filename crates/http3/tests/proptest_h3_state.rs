//! Stateful HTTP/3 wire properties, mirroring the HPACK suite
//! (`crates/http2/tests/proptest_hpack.rs`): where that file drives a
//! persistent encoder/decoder pair over many blocks, this one drives the
//! h3 layers over whole *streams* — back-to-back frame sequences,
//! truncation at every byte (the restartable-decode property the
//! cancel-safe transport depends on), a reference model of SETTINGS
//! accumulation including the ability withdraw/restore rule, and QPACK's
//! deliberate statelessness (the anti-HPACK: no dynamic table, so no
//! state to keep in sync).

use bytes::Bytes;
use proptest::prelude::*;
use sww_http2::hpack::HeaderField;
use sww_http2::GenAbility;
use sww_http3::frame::{FrameError, H3Frame};
use sww_http3::qpack;
use sww_http3::varint;
use sww_http3::{H3Settings, SETTINGS_SWW_GEN_ABILITY};

fn arb_header() -> impl Strategy<Value = HeaderField> {
    ("[a-z][a-z0-9-]{0,24}", "[ -~]{0,64}").prop_map(|(n, v)| HeaderField::new(n, v))
}

fn arb_ability() -> impl Strategy<Value = GenAbility> {
    prop_oneof![
        Just(GenAbility::none()),
        Just(GenAbility::full()),
        Just(GenAbility::upscale_only()),
        (0u32..16).prop_map(GenAbility::from_bits),
    ]
}

/// Frames whose encoding is canonical (encode∘decode = id): free-form
/// payload carriers plus the structured SETTINGS/GOAWAY pair.
fn arb_frame() -> impl Strategy<Value = H3Frame> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..96).prop_map(|p| H3Frame::Data(Bytes::from(p))),
        prop::collection::vec(arb_header(), 0..6)
            .prop_map(|h| H3Frame::Headers(Bytes::from(qpack::encode(&h)))),
        prop::collection::vec((0u64..(1 << 20), 0u64..(1 << 30)), 0..6).prop_map(H3Frame::Settings),
        (0u64..(1 << 20)).prop_map(H3Frame::GoAway),
        (64u64..1000, prop::collection::vec(any::<u8>(), 0..48)).prop_map(|(kind, payload)| {
            H3Frame::Unknown {
                kind,
                payload: Bytes::from(payload),
            }
        }),
    ]
}

/// One step of the SETTINGS model test: what an endpoint might put on a
/// control stream over a connection's lifetime.
#[derive(Debug, Clone)]
enum SettingsOp {
    /// A full announcement (`H3Settings::sww(..).to_frame()`): omits the
    /// ability pair entirely when the ability is empty.
    Announce(GenAbility),
    /// A mid-connection ability update: always carries the explicit
    /// pair, zero included — the only way to withdraw.
    UpdateAbility(GenAbility),
    /// Unknown/grease identifiers, which must be ignored.
    Grease(u64, u64),
}

fn arb_settings_op() -> impl Strategy<Value = SettingsOp> {
    prop_oneof![
        arb_ability().prop_map(SettingsOp::Announce),
        arb_ability().prop_map(SettingsOp::UpdateAbility),
        ((0u64..4096), (0u64..1 << 16)).prop_map(|(n, v)| SettingsOp::Grease(0x21 + 0x1f * n, v)),
    ]
}

fn settings_pairs(frame: H3Frame) -> Vec<(u64, u64)> {
    match frame {
        H3Frame::Settings(pairs) => pairs,
        other => panic!("expected SETTINGS, got {other:?}"),
    }
}

proptest! {
    /// A whole stream of frames encoded back to back decodes to exactly
    /// the same sequence, with the cursor landing on every frame
    /// boundary — the stateful analogue of the single-frame round-trip.
    #[test]
    fn frame_streams_roundtrip_in_order(frames in prop::collection::vec(arb_frame(), 1..8)) {
        let mut buf = Vec::new();
        for f in &frames {
            f.encode(&mut buf);
        }
        let mut pos = 0;
        for want in &frames {
            prop_assert_eq!(&H3Frame::decode(&buf, &mut pos).unwrap(), want);
        }
        prop_assert_eq!(pos, buf.len(), "decoder must consume the stream exactly");
    }

    /// Cutting that stream at *any* byte yields a clean prefix of the
    /// original frames followed by `Incomplete` — never a panic, never a
    /// wrong frame. This is the property the buffered QUIC-lite reader
    /// relies on to resume after a partial read.
    #[test]
    fn truncated_streams_decode_to_a_prefix_then_incomplete(
        frames in prop::collection::vec(arb_frame(), 1..6),
        cut_seed in any::<u32>(),
    ) {
        let mut buf = Vec::new();
        let mut boundaries = Vec::new();
        for f in &frames {
            f.encode(&mut buf);
            boundaries.push(buf.len());
        }
        let cut = cut_seed as usize % (buf.len() + 1);
        let mut pos = 0;
        let mut decoded = Vec::new();
        loop {
            match H3Frame::decode(&buf[..cut], &mut pos) {
                Ok(f) => decoded.push(f),
                Err(FrameError::Incomplete) => break,
                Err(e) => prop_assert!(false, "truncation gave {:?}", e),
            }
        }
        // Exactly the frames whose boundary fits inside the cut.
        let whole = boundaries.iter().filter(|&&b| b <= cut).count();
        prop_assert_eq!(decoded.len(), whole);
        prop_assert_eq!(&decoded[..], &frames[..whole]);
        prop_assert_eq!(pos, boundaries.get(whole.wrapping_sub(1)).copied().unwrap_or(0),
            "cursor must stay parked on the last complete boundary");
    }

    /// Reference model of SETTINGS accumulation over a connection:
    /// values persist until re-announced, unknown identifiers are
    /// ignored, and — the withdraw trap — a full announcement with no
    /// ability *omits* the pair and therefore leaves the previous
    /// advertisement standing, while `ability_update_frame` always puts
    /// the explicit (possibly zero) pair on the wire.
    #[test]
    fn settings_accumulation_matches_the_latest_pair_model(
        ops in prop::collection::vec(arb_settings_op(), 0..24)
    ) {
        let mut live = H3Settings::default();
        let mut model_ability = GenAbility::none();
        for op in ops {
            match op {
                SettingsOp::Announce(ability) => {
                    live.apply(&settings_pairs(H3Settings::sww(ability).to_frame()));
                    if ability.supported() {
                        model_ability = ability;
                    }
                    // else: pair omitted, previous value stands.
                }
                SettingsOp::UpdateAbility(ability) => {
                    live.apply(&settings_pairs(H3Settings::ability_update_frame(ability)));
                    model_ability = ability;
                }
                SettingsOp::Grease(id, value) => {
                    // Grease identifiers never collide with the SWW pair.
                    prop_assert!(id != SETTINGS_SWW_GEN_ABILITY);
                    live.apply(&[(id, value)]);
                }
            }
            prop_assert_eq!(live.gen_ability.bits(), model_ability.bits());
        }
    }

    /// An explicit zero update always withdraws, whatever history came
    /// before — and a later update restores.
    #[test]
    fn withdraw_then_restore_always_lands(
        history in prop::collection::vec(arb_settings_op(), 0..12),
        restored in arb_ability(),
    ) {
        let mut live = H3Settings::default();
        for op in history {
            match op {
                SettingsOp::Announce(a) => {
                    live.apply(&settings_pairs(H3Settings::sww(a).to_frame()));
                }
                SettingsOp::UpdateAbility(a) => {
                    live.apply(&settings_pairs(H3Settings::ability_update_frame(a)));
                }
                SettingsOp::Grease(id, v) => live.apply(&[(id, v)]),
            }
        }
        live.apply(&settings_pairs(H3Settings::ability_update_frame(GenAbility::none())));
        prop_assert!(!live.gen_ability.supported(), "explicit zero must withdraw");
        live.apply(&settings_pairs(H3Settings::ability_update_frame(restored)));
        prop_assert_eq!(live.gen_ability.bits(), restored.bits());
    }

    /// QPACK here is deliberately stateless (static table only): the
    /// same block encodes to the same bytes no matter what was encoded
    /// before, and every block decodes exactly. The anti-HPACK property
    /// — HPACK's suite checks tables stay in sync; this one checks there
    /// is no table to desynchronize.
    #[test]
    fn qpack_blocks_are_order_independent(
        blocks in prop::collection::vec(prop::collection::vec(arb_header(), 0..10), 1..6)
    ) {
        let first_pass: Vec<Vec<u8>> = blocks.iter().map(|b| qpack::encode(b)).collect();
        for (block, encoded) in blocks.iter().zip(&first_pass) {
            prop_assert_eq!(&qpack::decode(encoded).unwrap(), block);
            // Re-encoding after the whole history: bit-identical.
            prop_assert_eq!(&qpack::encode(block), encoded, "hidden encoder state");
        }
    }

    /// Back-to-back varints decode in order and consume the buffer
    /// exactly — the primitive under both the frame layer and the
    /// QUIC-lite chunk header.
    #[test]
    fn varint_streams_roundtrip(values in prop::collection::vec(0u64..(1 << 62), 1..32)) {
        let mut buf = Vec::new();
        for &v in &values {
            varint::encode(v, &mut buf);
        }
        let mut pos = 0;
        for &want in &values {
            prop_assert_eq!(varint::decode(&buf, &mut pos).unwrap(), want);
        }
        prop_assert_eq!(pos, buf.len());
    }
}
