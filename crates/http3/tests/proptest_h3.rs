//! Property tests for the HTTP/3 wire layers.

use bytes::Bytes;
use proptest::prelude::*;
use sww_http2::hpack::HeaderField;
use sww_http3::frame::H3Frame;
use sww_http3::qpack;
use sww_http3::varint;

proptest! {
    #[test]
    fn varint_roundtrips(v in 0u64..(1 << 62)) {
        let mut buf = Vec::new();
        varint::encode(v, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(varint::decode(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(buf.len(), varint::len(v));
    }

    #[test]
    fn varint_decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..16)) {
        let mut pos = 0;
        let _ = varint::decode(&data, &mut pos);
    }

    #[test]
    fn frames_roundtrip(
        kind in prop_oneof![Just(0u64), Just(1), Just(3), Just(7), Just(0x21), 64u64..1000],
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Only types whose payload is free-form roundtrip byte-exact; use
        // DATA/HEADERS/unknown for arbitrary payloads.
        let frame = match kind {
            0 => H3Frame::Data(Bytes::from(payload)),
            1 => H3Frame::Headers(Bytes::from(payload)),
            _ => H3Frame::Unknown { kind: kind.max(8), payload: Bytes::from(payload) },
        };
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let mut pos = 0;
        prop_assert_eq!(H3Frame::decode(&buf, &mut pos).unwrap(), frame);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn frame_decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut pos = 0;
        let _ = H3Frame::decode(&data, &mut pos);
    }

    #[test]
    fn settings_pairs_roundtrip(pairs in prop::collection::vec((0u64..(1<<20), 0u64..(1<<30)), 0..10)) {
        let frame = H3Frame::Settings(pairs.clone());
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let mut pos = 0;
        match H3Frame::decode(&buf, &mut pos).unwrap() {
            H3Frame::Settings(got) => prop_assert_eq!(got, pairs),
            other => prop_assert!(false, "wrong frame {:?}", other),
        }
    }

    #[test]
    fn qpack_roundtrips_headers(
        headers in prop::collection::vec(
            ("[a-z][a-z0-9-]{0,20}", "[ -~]{0,48}").prop_map(|(n, v)| HeaderField::new(n, v)),
            0..12
        )
    ) {
        let block = qpack::encode(&headers);
        prop_assert_eq!(qpack::decode(&block).unwrap(), headers);
    }

    #[test]
    fn qpack_decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = qpack::decode(&data);
    }
}
