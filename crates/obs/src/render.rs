//! Prometheus text-format exposition, hand-rolled (no dependencies).

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use crate::registry::{Registry, Series, SeriesKey};

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// `{k="v",...}` with an extra label appended, or `""` when empty.
fn label_block(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn write_series(out: &mut String, key: &SeriesKey, series: &Series) {
    match series {
        Series::Counter(c) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                key.name,
                label_block(&key.labels, None),
                c.get()
            );
        }
        Series::Gauge(g) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                key.name,
                label_block(&key.labels, None),
                g.get()
            );
        }
        Series::Histogram(h) => {
            let mut cumulative = 0u64;
            for (i, bound) in h.data.bounds.iter().enumerate() {
                cumulative += h.data.counts[i].load(Ordering::Relaxed);
                let le = format!("{bound}");
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    key.name,
                    label_block(&key.labels, Some(("le", &le))),
                    cumulative
                );
            }
            cumulative += h.data.counts[h.data.bounds.len()].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                key.name,
                label_block(&key.labels, Some(("le", "+Inf"))),
                cumulative
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                key.name,
                label_block(&key.labels, None),
                h.sum()
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                key.name,
                label_block(&key.labels, None),
                cumulative
            );
        }
    }
}

impl Registry {
    /// Serialise every series in the Prometheus text format. Series are
    /// ordered by `(name, labels)`, each name preceded by a `# TYPE` line,
    /// so output is deterministic for a given registry state.
    pub fn render(&self) -> String {
        let map = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut last_name: Option<&'static str> = None;
        for (key, series) in map.iter() {
            if last_name != Some(key.name) {
                let kind = match series {
                    Series::Counter(_) => "counter",
                    Series::Gauge(_) => "gauge",
                    Series::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {}", key.name, kind);
                last_name = Some(key.name);
            }
            write_series(&mut out, key, series);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_histograms() {
        let r = Registry::new();
        r.counter("a_total", &[("k", "x")]).add(7);
        let h = r.histogram("lat_seconds", &[], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = r.render();
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total{k=\"x\"} 7"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count 3"));
    }

    #[test]
    fn escapes_label_values() {
        let r = Registry::new();
        r.counter("e_total", &[("p", "a\"b\\c")]).inc();
        assert!(r.render().contains("e_total{p=\"a\\\"b\\\\c\"} 1"));
    }
}
