//! `sww-obs`: the observability subsystem for the SWW reproduction.
//!
//! Everything the stack records about itself flows through this crate:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) live in a global
//!   [`Registry`] keyed by `(name, labels)`. Handles wrap atomics, so
//!   updating a metric is a single atomic op; the registry lock is only
//!   taken when a series is first resolved, and callers on hot paths can
//!   cache handles.
//! * **Span timing** ([`Span`]) measures real wall-clock elapsed time and,
//!   side by side, the *virtual* (modelled) time of the same operation —
//!   e.g. the generation seconds predicted by `sww-energy::cost` — in two
//!   parallel histograms. This keeps simulated-time results separable from
//!   host performance in every exposition.
//! * **Exposition** ([`render`]) serialises the whole registry in the
//!   Prometheus text format (`name{label="v"} value`), hand-rolled with no
//!   dependencies. `GenerativeServer` serves it at `/metrics`, the `sww
//!   stats` subcommand prints it, and the `report` binary appends it as a
//!   metrics appendix on stderr.
//!
//! The contract for every series (name, type, unit, labels, emitting code
//! path) is documented in `OBSERVABILITY.md` at the repository root.
//! Instrumentation is observe-only by design: recording a metric never
//! changes negotiation, generation, or wire behaviour, so calibrated
//! experiment outputs are byte-identical with and without scraping.
//!
//! # Example
//!
//! ```
//! let c = sww_obs::counter("doc_events_total", &[("kind", "demo")]);
//! c.inc();
//! let h = sww_obs::histogram("doc_latency_seconds", &[], sww_obs::DURATION_BUCKETS);
//! h.observe(0.02);
//! let text = sww_obs::render();
//! assert!(text.contains("doc_events_total{kind=\"demo\"} 1"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
mod registry;
mod render;
mod span;

pub use metrics::{Counter, Gauge, Histogram, DURATION_BUCKETS, SIZE_BUCKETS};
pub use registry::Registry;
pub use span::Span;

/// Resolve (registering on first use) a counter in the global registry.
///
/// # Panics
/// Panics if the series name is already registered as a different type.
pub fn counter(name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    Registry::global().counter(name, labels)
}

/// Resolve (registering on first use) a gauge in the global registry.
///
/// # Panics
/// Panics if the series name is already registered as a different type.
pub fn gauge(name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
    Registry::global().gauge(name, labels)
}

/// Resolve (registering on first use) a histogram in the global registry.
/// `buckets` are upper bounds in ascending order; a `+Inf` bucket is
/// implicit. Bucket layout is fixed by whichever call registers first.
///
/// # Panics
/// Panics if the series name is already registered as a different type.
pub fn histogram(
    name: &'static str,
    labels: &[(&'static str, &str)],
    buckets: &[f64],
) -> Histogram {
    Registry::global().histogram(name, labels, buckets)
}

/// Serialise the global registry in the Prometheus text format.
pub fn render() -> String {
    Registry::global().render()
}

/// Drop every series in the global registry (test isolation).
pub fn reset() {
    Registry::global().reset();
}
