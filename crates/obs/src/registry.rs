//! The series registry: `(name, labels) → metric`, with a process-global
//! instance behind [`Registry::global`].

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// A fully qualified series identity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct SeriesKey {
    pub(crate) name: &'static str,
    pub(crate) labels: Vec<(&'static str, String)>,
}

#[derive(Debug, Clone)]
pub(crate) enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Series {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

/// A set of metric series. Resolution takes the registry lock; the handles
/// returned update lock-free atomics and may be cached by callers.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) series: Mutex<BTreeMap<SeriesKey, Series>>,
}

fn key(name: &'static str, labels: &[(&'static str, &str)]) -> SeriesKey {
    SeriesKey {
        name,
        labels: labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect(),
    }
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`Registry::global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry that all of `sww` records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Resolve a counter, registering it on first use.
    ///
    /// # Panics
    /// Panics if the series exists with a different type.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        let mut map = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let entry = map
            .entry(key(name, labels))
            .or_insert_with(|| Series::Counter(Counter::new()));
        match entry {
            Series::Counter(c) => c.clone(),
            other => panic!("series {name} already registered as a {}", other.kind()),
        }
    }

    /// Resolve a gauge, registering it on first use.
    ///
    /// # Panics
    /// Panics if the series exists with a different type.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        let mut map = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let entry = map
            .entry(key(name, labels))
            .or_insert_with(|| Series::Gauge(Gauge::new()));
        match entry {
            Series::Gauge(g) => g.clone(),
            other => panic!("series {name} already registered as a {}", other.kind()),
        }
    }

    /// Resolve a histogram, registering it on first use with `buckets`
    /// (later callers inherit the registered bucket layout).
    ///
    /// # Panics
    /// Panics if the series exists with a different type.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        buckets: &[f64],
    ) -> Histogram {
        let mut map = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let entry = map
            .entry(key(name, labels))
            .or_insert_with(|| Series::Histogram(Histogram::new(buckets)));
        match entry {
            Series::Histogram(h) => h.clone(),
            other => panic!("series {name} already registered as a {}", other.kind()),
        }
    }

    /// Drop every registered series.
    pub fn reset(&self) {
        self.series
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_shares_storage() {
        let r = Registry::new();
        r.counter("x_total", &[("k", "a")]).add(2);
        r.counter("x_total", &[("k", "a")]).inc();
        assert_eq!(r.counter("x_total", &[("k", "a")]).get(), 3);
        // Different label value is a distinct series.
        assert_eq!(r.counter("x_total", &[("k", "b")]).get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("y_total", &[]);
        r.gauge("y_total", &[]);
    }
}
