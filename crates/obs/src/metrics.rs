//! The three metric kinds: monotone counters, settable gauges, and
//! fixed-bucket histograms. All are cheap clonable handles over atomics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default buckets for durations in seconds (100µs … 100s).
pub const DURATION_BUCKETS: &[f64] = &[
    1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 10.0, 30.0, 100.0,
];

/// Default buckets for byte sizes (64 B … 16 MiB).
pub const SIZE_BUCKETS: &[f64] = &[
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0,
];

/// Monotonically increasing event count.
#[derive(Debug, Clone)]
pub struct Counter {
    pub(crate) value: Arc<AtomicU64>,
}

impl Counter {
    pub(crate) fn new() -> Counter {
        Counter {
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways, stored as `f64` bits in an atomic.
#[derive(Debug, Clone)]
pub struct Gauge {
    pub(crate) bits: Arc<AtomicU64>,
}

impl Gauge {
    pub(crate) fn new() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Replace the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) with a compare-and-swap loop.
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramData {
    /// Ascending upper bounds; the final `+Inf` bucket is implicit.
    pub(crate) bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; `counts.len() ==
    /// bounds.len() + 1`, the last slot being the `+Inf` overflow.
    pub(crate) counts: Vec<AtomicU64>,
    /// Sum of all observations, as `f64` bits.
    pub(crate) sum_bits: AtomicU64,
}

/// Distribution of observations over fixed buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) data: Arc<HistogramData>,
}

impl Histogram {
    pub(crate) fn new(buckets: &[f64]) -> Histogram {
        assert!(
            buckets.windows(2).all(|w| w[0] < w[1]),
            "histogram buckets must be strictly ascending"
        );
        Histogram {
            data: Arc::new(HistogramData {
                bounds: buckets.to_vec(),
                counts: (0..=buckets.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .data
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.data.bounds.len());
        self.data.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.data.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.data.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.data
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.data.sum_bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-12);
        let raw: Vec<u64> = h
            .data
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        assert_eq!(raw, vec![1, 1, 1]);
    }
}
