//! Span timing with parallel wall and virtual clocks.

use std::time::Instant;

use crate::metrics::DURATION_BUCKETS;
use crate::Registry;

/// A timed span over one named stage.
///
/// A span always measures real elapsed wall-clock time. When the operation
/// also has a *modelled* duration — e.g. the generation seconds predicted
/// by `sww-energy::cost`, which do not elapse for real in the simulation —
/// the caller passes it to [`Span::finish_with_virtual`] and the two
/// readings land in sibling histograms:
///
/// * `<name>_wall_seconds{stage="..."}` — host time actually spent, and
/// * `<name>_virtual_seconds{stage="..."}` — modelled time.
///
/// Keeping both lets an exposition distinguish "the simulation says this
/// costs 3.1 s of GPU time" from "computing that answer took 40 µs here".
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    stage: &'static str,
    wall_start: Instant,
}

impl Span {
    /// Start timing `stage` under the metric family `name`.
    pub fn begin(name: &'static str, stage: &'static str) -> Span {
        Span {
            name,
            stage,
            wall_start: Instant::now(),
        }
    }

    /// Elapsed wall-clock seconds so far.
    pub fn wall_elapsed(&self) -> f64 {
        self.wall_start.elapsed().as_secs_f64()
    }

    /// Finish the span, recording wall time only.
    pub fn finish(self) {
        self.record(None);
    }

    /// Finish the span, recording wall time and the modelled duration.
    pub fn finish_with_virtual(self, virtual_seconds: f64) {
        self.record(Some(virtual_seconds));
    }

    fn record(self, virtual_seconds: Option<f64>) {
        let wall = self.wall_start.elapsed().as_secs_f64();
        let reg = Registry::global();
        // Leak-free: names are 'static, histogram families are bounded by
        // the set of instrumented stages.
        let wall_name = concat_name(self.name, "_wall_seconds");
        reg.histogram(wall_name, &[("stage", self.stage)], DURATION_BUCKETS)
            .observe(wall);
        if let Some(v) = virtual_seconds {
            let virt_name = concat_name(self.name, "_virtual_seconds");
            reg.histogram(virt_name, &[("stage", self.stage)], DURATION_BUCKETS)
                .observe(v);
        }
    }
}

/// Intern `base + suffix` to a `'static` string. The set of metric names
/// is small and fixed, so the leaked allocations are bounded: each unique
/// combination is leaked exactly once.
fn concat_name(base: &'static str, suffix: &'static str) -> &'static str {
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    static INTERNED: Mutex<BTreeMap<(&'static str, &'static str), &'static str>> =
        Mutex::new(BTreeMap::new());
    let mut map = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
    map.entry((base, suffix))
        .or_insert_with(|| Box::leak(format!("{base}{suffix}").into_boxed_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_both_clocks() {
        let span = Span::begin("t_span", "unit");
        span.finish_with_virtual(2.0);
        let text = crate::render();
        assert!(text.contains("t_span_wall_seconds_count{stage=\"unit\"} 1"));
        assert!(text.contains("t_span_virtual_seconds_sum{stage=\"unit\"} 2"));
    }

    #[test]
    fn interning_is_stable() {
        let a = concat_name("x", "_wall_seconds");
        let b = concat_name("x", "_wall_seconds");
        assert!(std::ptr::eq(a, b));
    }
}
