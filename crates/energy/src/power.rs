//! Energy accounting: watts × seconds → watt-hours, with the composition
//! helpers the §6.4 comparisons use.

use std::iter::Sum;
use std::ops::Add;

/// An amount of energy, stored in watt-hours.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy {
    wh: f64,
}

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy { wh: 0.0 };

    /// From watt-hours.
    pub fn from_wh(wh: f64) -> Energy {
        Energy { wh }
    }

    /// From a power draw sustained for a duration.
    pub fn from_power(watts: f64, seconds: f64) -> Energy {
        Energy {
            wh: watts * seconds / 3600.0,
        }
    }

    /// Watt-hours.
    pub fn wh(self) -> f64 {
        self.wh
    }

    /// Kilowatt-hours.
    pub fn kwh(self) -> f64 {
        self.wh / 1000.0
    }

    /// Scale (e.g. per-request energy × request count).
    pub fn scale(self, factor: f64) -> Energy {
        Energy {
            wh: self.wh * factor,
        }
    }
}

impl Add for Energy {
    type Output = Energy;

    fn add(self, rhs: Energy) -> Energy {
        Energy {
            wh: self.wh + rhs.wh,
        }
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time() {
        // 130 W for 6.2 s ≈ 0.224 Wh (Table 2's workstation large image).
        let e = Energy::from_power(130.0, 6.2);
        assert!((e.wh() - 0.2238).abs() < 1e-3);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_wh(0.5);
        let b = Energy::from_wh(0.25);
        assert!(((a + b).wh() - 0.75).abs() < 1e-12);
        assert!((a.scale(4.0).wh() - 2.0).abs() < 1e-12);
        let total: Energy = [a, b, b].into_iter().sum();
        assert!((total.wh() - 1.0).abs() < 1e-12);
        assert!((Energy::from_wh(2500.0).kwh() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(Energy::from_wh(0.1) < Energy::from_wh(0.2));
    }
}
