//! Network transmission model (paper §6.4).
//!
//! Two quantities matter to the paper's comparison: how long content takes
//! to transmit on a typical access link (a large image ≈10 ms at
//! 100 Mbps, which workstation generation exceeds by ≈620×), and how much
//! energy the network spends per byte — Telefónica's 2024 intensity of
//! 38 MWh/PB ≈ 0.038 Wh/MB, which makes transmission ≈2.5% of the
//! workstation's generation energy for a large image.

use crate::power::Energy;

/// Telefónica 2024: 38 MWh per petabyte of traffic ⇒ Wh per megabyte.
pub const WH_PER_MB: f64 = 0.038;

/// Bytes per megabyte in the paper's accounting (decimal, as operators use).
pub const BYTES_PER_MB: f64 = 1_000_000.0;

/// An access link.
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// Line rate in megabits per second.
    pub mbps: f64,
    /// One-way propagation + processing latency added per transfer.
    pub base_latency_s: f64,
}

impl LinkModel {
    /// The paper's "typical 100 Mbps link".
    pub fn typical() -> LinkModel {
        LinkModel {
            mbps: 100.0,
            base_latency_s: 0.0,
        }
    }

    /// A link with explicit parameters.
    pub fn new(mbps: f64, base_latency_s: f64) -> LinkModel {
        LinkModel {
            mbps,
            base_latency_s,
        }
    }

    /// Seconds to transmit `bytes`.
    pub fn transmit_time(&self, bytes: u64) -> f64 {
        self.base_latency_s + (bytes as f64 * 8.0) / (self.mbps * 1e6)
    }
}

/// Network energy to carry `bytes`, at the Telefónica intensity.
pub fn transmission_energy(bytes: u64) -> Energy {
    Energy::from_wh(bytes as f64 / BYTES_PER_MB * WH_PER_MB)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_image_transmits_in_about_ten_ms() {
        // Paper: "sending a large image on a typical 100 Mbps link would
        // take about ten milliseconds". Large image = 131072 B.
        let t = LinkModel::typical().transmit_time(131_072);
        assert!((0.008..0.013).contains(&t), "t={t}");
    }

    #[test]
    fn large_image_energy_is_about_5_mwh() {
        // Paper: "a large image would cost roughly 0.005 Wh to transmit".
        let e = transmission_energy(131_072);
        assert!((e.wh() - 0.005).abs() < 0.0005, "e={} Wh", e.wh());
    }

    #[test]
    fn transmission_is_small_share_of_generation() {
        // Paper: transmission ≈ 2.5% of workstation generation energy
        // (0.005 Wh vs 0.21 Wh).
        let tx = transmission_energy(131_072).wh();
        let gen = 0.21;
        let share = tx / gen;
        assert!((0.015..0.04).contains(&share), "share={share:.3}");
    }

    #[test]
    fn slower_link_takes_longer() {
        let fast = LinkModel::new(1000.0, 0.0).transmit_time(1_000_000);
        let slow = LinkModel::new(10.0, 0.0).transmit_time(1_000_000);
        assert!(slow > fast * 90.0);
    }

    #[test]
    fn base_latency_added() {
        let l = LinkModel::new(100.0, 0.02);
        assert!(l.transmit_time(0) >= 0.02);
    }

    #[test]
    fn energy_linear_in_bytes() {
        let e1 = transmission_energy(1_000_000).wh();
        let e2 = transmission_energy(2_000_000).wh();
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
        assert!((e1 - WH_PER_MB).abs() < 1e-12);
    }
}
