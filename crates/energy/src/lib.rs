#![warn(missing_docs)]

//! Device, energy and carbon modelling for SWW (paper §6.1, §6.4).
//!
//! The paper's latency and energy numbers are properties of its two test
//! machines (an M1 Pro MacBook and a Threadripper workstation with two
//! ADA 4000 GPUs). This crate models both devices with cost functions
//! calibrated to every measured anchor the paper reports, so the benches
//! regenerate Tables 1–2 and the §6.4 energy comparisons with the right
//! magnitudes, crossovers and scaling shapes:
//!
//! * [`device`] — the laptop / workstation / mobile profiles,
//! * [`cost`] — generation latency: per-step model costs, resolution
//!   scaling (linear on the GPU workstation, superlinear on the
//!   memory-constrained laptop where attention splitting kicks in), and
//!   text generation dominated by the reasoning phase,
//! * [`power`] — seconds × watts → watt-hours accounting,
//! * [`network`] — transmission time and the Telefónica 38 MWh/PB energy
//!   intensity,
//! * [`carbon`] — embodied carbon of storage (6–7 kgCO₂e per TB of SSD).

pub mod carbon;
pub mod cost;
pub mod device;
pub mod network;
pub mod power;

pub use cost::{image_generation_time, text_generation_time, upscale_time};
pub use device::{DeviceKind, DeviceProfile};
pub use network::LinkModel;
pub use power::Energy;
