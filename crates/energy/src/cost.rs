//! Generation latency model, calibrated to every timing anchor in the
//! paper's §6.
//!
//! Image time interpolates log-log between the device's measured SD 3
//! anchors (so the workstation scales ≈linearly with pixels while the
//! laptop blows up superlinearly at 1024² from attention splitting), then
//! scales linearly in steps and by the model's per-step cost relative to
//! SD 3. Text time is a reasoning phase plus a small per-word term with a
//! deterministic non-monotonic jitter — reproducing the paper's
//! observation that 50-word outputs can take longer than 100-word ones.

use crate::device::DeviceProfile;
use sww_genai::diffusion::models::{profile as image_profile, ImageModelKind};
use sww_genai::text::models::{profile as text_profile, TextModelKind};

/// Steps at which the anchor times were measured.
pub const ANCHOR_STEPS: f64 = 15.0;

/// Log-log interpolation of SD 3 generation time at `pixels`, using the
/// device anchors; extrapolates with the nearest segment's slope.
fn sd3_time_at(device: &DeviceProfile, pixels: u64) -> f64 {
    let anchors = device.sd3_time_anchors;
    debug_assert!(anchors.len() >= 2);
    let x = (pixels.max(1) as f64).ln();
    // Find the bracketing segment (or the edge segment for extrapolation).
    let seg = anchors
        .windows(2)
        .position(|w| pixels <= w[1].0)
        .unwrap_or(anchors.len() - 2);
    let (p0, t0) = anchors[seg];
    let (p1, t1) = anchors[seg + 1];
    let (x0, x1) = ((p0 as f64).ln(), (p1 as f64).ln());
    let (y0, y1) = (t0.ln(), t1.ln());
    let y = y0 + (y1 - y0) * (x - x0) / (x1 - x0);
    y.exp()
}

/// Seconds to generate a `width`×`height` image with `model` at `steps`
/// inference steps on `device`. `None` when the model cannot run there
/// (server-only models on end-user devices).
pub fn image_generation_time(
    model: ImageModelKind,
    device: &DeviceProfile,
    width: u32,
    height: u32,
    steps: u32,
) -> Option<f64> {
    let prof = image_profile(model);
    if prof.server_only {
        return None;
    }
    let sd3 = image_profile(ImageModelKind::Sd3Medium);
    // Model cost relative to SD 3 on this device class. The laptop column
    // exists for all local models; the mobile profile reuses it.
    let (model_sps, sd3_sps) = match device.kind {
        crate::device::DeviceKind::Workstation => (
            prof.workstation_s_per_step?,
            sd3.workstation_s_per_step.expect("sd3 runs everywhere"),
        ),
        _ => (
            prof.laptop_s_per_step?,
            sd3.laptop_s_per_step.expect("sd3 runs everywhere"),
        ),
    };
    let pixels = u64::from(width) * u64::from(height);
    let base = sd3_time_at(device, pixels);
    Some(base * (f64::from(steps.max(1)) / ANCHOR_STEPS) * (model_sps / sd3_sps))
}

/// Seconds per inference step at the Table 1 operating point (224²).
pub fn time_per_step(model: ImageModelKind, device: &DeviceProfile) -> Option<f64> {
    image_generation_time(model, device, 224, 224, 15).map(|t| t / 15.0)
}

/// Fraction of a single image's per-step cost that is fixed launch
/// overhead (weight streaming, scheduler bookkeeping, kernel dispatch)
/// and therefore amortizes when N same-profile latents share one
/// denoising pass. The remaining `1 - BATCH_OVERHEAD_FRACTION` is
/// per-latent arithmetic that scales with batch size.
pub const BATCH_OVERHEAD_FRACTION: f64 = 0.7;

/// Per-image seconds when `batch` same-profile images share one batched
/// denoising pass on `device`.
///
/// The model splits the single-image time into a fixed per-step overhead
/// ([`BATCH_OVERHEAD_FRACTION`]) paid once per batch and a marginal
/// per-latent share paid per image:
///
/// ```text
/// t(batch) = t(1) · (overhead / batch + (1 − overhead))
/// ```
///
/// At `batch == 1` this is *exactly* [`image_generation_time`] — the
/// paper's Table 1/2 anchors are untouched — and it saturates toward the
/// marginal fraction as the batch grows (≈2.6× per-image speedup at a
/// batch of 8). `None` when the model cannot run on this device.
pub fn batched_image_generation_time(
    model: ImageModelKind,
    device: &DeviceProfile,
    width: u32,
    height: u32,
    steps: u32,
    batch: usize,
) -> Option<f64> {
    let single = image_generation_time(model, device, width, height, steps)?;
    let n = batch.max(1) as f64;
    Some(single * (BATCH_OVERHEAD_FRACTION / n + (1.0 - BATCH_OVERHEAD_FRACTION)))
}

/// Seconds for one **tiled** batched denoising pass: `batch` images split
/// across `lanes` data-parallel kernel lanes, each lane running a
/// contiguous tile of `ceil(batch / lanes)` images as its own batched
/// pass.
///
/// Lanes execute concurrently, so the pass costs its slowest (= largest)
/// tile: `tile · t(tile)` with `t` from
/// [`batched_image_generation_time`]. The two effects pull against each
/// other — more lanes buy concurrency but shrink each tile's batch
/// amortization — which is why the model is a product, not a naive
/// `1/lanes`: at `batch == 8`, 8 lanes model ≈3.1× over one lane, not 8×.
///
/// At `lanes == 1` this is exactly
/// `batch · batched_image_generation_time(.., batch)` — the scalar
/// step-major pass, leaving all pre-tiling accounting untouched. Lanes
/// beyond `batch` are idle and do not help. `None` when the model cannot
/// run on this device.
pub fn tiled_batch_pass_time(
    model: ImageModelKind,
    device: &DeviceProfile,
    width: u32,
    height: u32,
    steps: u32,
    batch: usize,
    lanes: usize,
) -> Option<f64> {
    let batch = batch.max(1);
    let tile = batch.div_ceil(lanes.clamp(1, batch));
    let per_image = batched_image_generation_time(model, device, width, height, steps, tile)?;
    Some(tile as f64 * per_image)
}

/// Seconds to upscale to `width`×`height`: a single lightweight pass with
/// linear pixel scaling and no attention penalty — sub-second on capable
/// hardware (paper §2.2).
pub fn upscale_time(device: &DeviceProfile, width: u32, height: u32) -> f64 {
    // One step of SD 3 at the smallest anchor, scaled linearly in pixels.
    let (p0, t0) = device.sd3_time_anchors[0];
    let per_step = t0 / ANCHOR_STEPS;
    let pixels = u64::from(width) * u64::from(height);
    0.5 * per_step * pixels as f64 / p0 as f64
}

/// Seconds to expand text to `words` words with `model` on `device`.
///
/// Dominated by the model's reasoning phase; the per-word term is small
/// and a deterministic sinusoidal jitter (±8%) makes the dependence on
/// length non-monotonic, as the paper observes ("50 words text takes
/// longer than 100 and 150 words text for three of the models").
pub fn text_generation_time(model: TextModelKind, device: &DeviceProfile, words: usize) -> f64 {
    let prof = text_profile(model);
    let ws_time = prof.workstation_think_s + words as f64 * prof.workstation_s_per_word;
    let jitter = 1.0 + 0.10 * ((words as f64 * 0.045 + prof.workstation_think_s).sin());
    let device_factor = if device.text_slowdown > 1.0 {
        prof.laptop_slowdown * device.text_slowdown / 2.5
    } else {
        1.0
    };
    ws_time * jitter * device_factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{profile, DeviceKind};

    fn laptop() -> DeviceProfile {
        profile(DeviceKind::Laptop)
    }

    fn ws() -> DeviceProfile {
        profile(DeviceKind::Workstation)
    }

    #[test]
    fn table1_time_per_step_reproduced() {
        // Paper Table 1, 224², 15 steps.
        let cases = [
            (ImageModelKind::Sd21Base, 0.18, 0.02),
            (ImageModelKind::Sd3Medium, 0.38, 0.05),
            (ImageModelKind::Sd35Medium, 0.59, 0.06),
        ];
        for (model, lap_expect, ws_expect) in cases {
            let lap = time_per_step(model, &laptop()).unwrap();
            let wst = time_per_step(model, &ws()).unwrap();
            assert!(
                (lap - lap_expect).abs() / lap_expect < 0.02,
                "{model:?} laptop {lap:.3} vs {lap_expect}"
            );
            assert!(
                (wst - ws_expect).abs() / ws_expect < 0.02,
                "{model:?} ws {wst:.3} vs {ws_expect}"
            );
        }
    }

    #[test]
    fn dalle_has_no_local_time() {
        assert!(time_per_step(ImageModelKind::Dalle3, &laptop()).is_none());
        assert!(time_per_step(ImageModelKind::Dalle3, &ws()).is_none());
    }

    #[test]
    fn table2_generation_times_reproduced() {
        // SD 3 Medium at 15 steps: the Table 2 anchors must come back out.
        let cases: [(u32, f64, f64); 3] = [(256, 7.0, 1.0), (512, 19.0, 1.7), (1024, 310.0, 6.2)];
        for (side, lap_expect, ws_expect) in cases {
            let lap = image_generation_time(ImageModelKind::Sd3Medium, &laptop(), side, side, 15)
                .unwrap();
            let wst =
                image_generation_time(ImageModelKind::Sd3Medium, &ws(), side, side, 15).unwrap();
            assert!(
                (lap - lap_expect).abs() / lap_expect < 1e-9,
                "laptop {side}: {lap}"
            );
            assert!(
                (wst - ws_expect).abs() / ws_expect < 1e-9,
                "ws {side}: {wst}"
            );
        }
    }

    #[test]
    fn time_linear_in_steps() {
        // Paper §6.3.1: generation time increases linearly with steps.
        let t15 = image_generation_time(ImageModelKind::Sd3Medium, &ws(), 512, 512, 15).unwrap();
        let t30 = image_generation_time(ImageModelKind::Sd3Medium, &ws(), 512, 512, 30).unwrap();
        let t60 = image_generation_time(ImageModelKind::Sd3Medium, &ws(), 512, 512, 60).unwrap();
        assert!((t30 / t15 - 2.0).abs() < 1e-9);
        assert!((t60 / t15 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn laptop_superlinear_at_large_sizes() {
        // 512² → 1024² is 4× the pixels. The workstation grows ≈4×; the
        // laptop blows past 10× (attention splitting).
        let lap_ratio = image_generation_time(ImageModelKind::Sd3Medium, &laptop(), 1024, 1024, 15)
            .unwrap()
            / image_generation_time(ImageModelKind::Sd3Medium, &laptop(), 512, 512, 15).unwrap();
        let ws_ratio = image_generation_time(ImageModelKind::Sd3Medium, &ws(), 1024, 1024, 15)
            .unwrap()
            / image_generation_time(ImageModelKind::Sd3Medium, &ws(), 512, 512, 15).unwrap();
        assert!(lap_ratio > 10.0, "laptop ratio {lap_ratio:.1}");
        assert!(ws_ratio < 5.0, "ws ratio {ws_ratio:.1}");
    }

    #[test]
    fn interpolation_is_monotonic_between_anchors() {
        let mut prev = 0.0;
        for side in (64..=1400).step_by(50) {
            let t = image_generation_time(ImageModelKind::Sd3Medium, &laptop(), side, side, 15)
                .unwrap();
            assert!(t > prev, "non-monotonic at {side}: {t} <= {prev}");
            prev = t;
        }
    }

    #[test]
    fn batch_of_one_matches_single_image_time_exactly() {
        for (w, h, steps) in [(256, 256, 15), (512, 512, 30), (64, 64, 7)] {
            let single =
                image_generation_time(ImageModelKind::Sd3Medium, &ws(), w, h, steps).unwrap();
            let b1 =
                batched_image_generation_time(ImageModelKind::Sd3Medium, &ws(), w, h, steps, 1)
                    .unwrap();
            assert_eq!(single, b1, "{w}x{h}@{steps}");
        }
    }

    #[test]
    fn batch_of_eight_amortizes_at_least_two_x() {
        let t1 = batched_image_generation_time(ImageModelKind::Sd3Medium, &ws(), 256, 256, 15, 1)
            .unwrap();
        let t8 = batched_image_generation_time(ImageModelKind::Sd3Medium, &ws(), 256, 256, 15, 8)
            .unwrap();
        assert!(t1 / t8 >= 2.0, "batch-8 speedup only {:.2}x", t1 / t8);
    }

    #[test]
    fn batched_time_monotonically_decreases_and_saturates() {
        let mut prev = f64::MAX;
        for n in 1..=64 {
            let t =
                batched_image_generation_time(ImageModelKind::Sd3Medium, &ws(), 256, 256, 15, n)
                    .unwrap();
            assert!(t < prev, "batch {n} not cheaper per image");
            // Never below the marginal per-latent share.
            let floor = image_generation_time(ImageModelKind::Sd3Medium, &ws(), 256, 256, 15)
                .unwrap()
                * (1.0 - BATCH_OVERHEAD_FRACTION);
            assert!(t > floor);
            prev = t;
        }
    }

    #[test]
    fn one_lane_pass_is_exactly_the_scalar_batched_pass() {
        for batch in [1usize, 3, 8, 16] {
            let pass =
                tiled_batch_pass_time(ImageModelKind::Sd3Medium, &ws(), 256, 256, 15, batch, 1)
                    .unwrap();
            let scalar = batched_image_generation_time(
                ImageModelKind::Sd3Medium,
                &ws(),
                256,
                256,
                15,
                batch,
            )
            .unwrap()
                * batch as f64;
            assert_eq!(pass, scalar, "batch={batch}");
        }
    }

    #[test]
    fn eight_lanes_at_batch_eight_speed_up_at_least_1_5x() {
        let scalar =
            tiled_batch_pass_time(ImageModelKind::Sd3Medium, &ws(), 256, 256, 15, 8, 1).unwrap();
        let tiled =
            tiled_batch_pass_time(ImageModelKind::Sd3Medium, &ws(), 256, 256, 15, 8, 8).unwrap();
        let speedup = scalar / tiled;
        // 8 lanes of batch-1 tiles vs one batch-8 pass:
        // 8·t1·(0.7/8 + 0.3) / t1 = 3.1.
        assert!(
            (speedup - 3.1).abs() < 1e-9,
            "modelled 8-lane speedup {speedup:.3}x"
        );
    }

    #[test]
    fn lane_speedup_is_monotone_but_sublinear() {
        let base = tiled_batch_pass_time(ImageModelKind::Sd3Medium, &ws(), 256, 256, 15, 8, 1);
        let mut prev = base.unwrap();
        for lanes in [2usize, 4, 8] {
            let t = tiled_batch_pass_time(ImageModelKind::Sd3Medium, &ws(), 256, 256, 15, 8, lanes)
                .unwrap();
            assert!(t < prev, "lanes={lanes} not faster");
            // Sublinear: shrinking tiles forfeits batch amortization.
            assert!(
                base.unwrap() / t < lanes as f64,
                "lanes={lanes} modelled superlinear"
            );
            prev = t;
        }
        // Lanes beyond the batch are idle.
        assert_eq!(
            tiled_batch_pass_time(ImageModelKind::Sd3Medium, &ws(), 256, 256, 15, 8, 8),
            tiled_batch_pass_time(ImageModelKind::Sd3Medium, &ws(), 256, 256, 15, 8, 64),
        );
    }

    #[test]
    fn batched_time_none_for_server_only_models() {
        assert!(
            batched_image_generation_time(ImageModelKind::Dalle3, &ws(), 256, 256, 15, 4).is_none()
        );
    }

    #[test]
    fn upscale_is_subsecond_on_workstation() {
        // Paper §2.2: upscaling has sub-second inference.
        for side in [256, 512, 1024] {
            let t = upscale_time(&ws(), side, side);
            assert!(t < 1.0, "upscale {side}²: {t:.3}s");
        }
    }

    #[test]
    fn text_times_in_paper_ranges() {
        // §6.3.2: 6.98–14.33 s workstation, 16.06–34.04 s laptop.
        let mut ws_min = f64::MAX;
        let mut ws_max = f64::MIN;
        let mut lap_min = f64::MAX;
        let mut lap_max = f64::MIN;
        for model in TextModelKind::all() {
            for words in [50, 100, 150, 200, 250] {
                let tw = text_generation_time(model, &ws(), words);
                let tl = text_generation_time(model, &laptop(), words);
                ws_min = ws_min.min(tw);
                ws_max = ws_max.max(tw);
                lap_min = lap_min.min(tl);
                lap_max = lap_max.max(tl);
            }
        }
        assert!((5.5..8.5).contains(&ws_min), "ws_min={ws_min:.2}");
        assert!((13.0..17.5).contains(&ws_max), "ws_max={ws_max:.2}");
        assert!((13.0..20.0).contains(&lap_min), "lap_min={lap_min:.2}");
        assert!((30.0..45.0).contains(&lap_max), "lap_max={lap_max:.2}");
    }

    #[test]
    fn text_length_dependence_is_weak_and_nonmonotonic() {
        // Somewhere in the grid a shorter text must take longer.
        let mut found_inversion = false;
        for model in TextModelKind::all() {
            let t50 = text_generation_time(model, &ws(), 50);
            let t100 = text_generation_time(model, &ws(), 100);
            let t150 = text_generation_time(model, &ws(), 150);
            if t50 > t100 || t100 > t150 {
                found_inversion = true;
            }
            // Weak dependence: tripling words changes time < 40%.
            assert!((t150 - t50).abs() / t50 < 0.4);
        }
        assert!(
            found_inversion,
            "expected a non-monotonic case, as in the paper"
        );
    }

    #[test]
    fn workstation_text_speedup_is_modest() {
        // Paper: "The performance benefit of running on a workstation is
        // only 2.5×" for text.
        for model in TextModelKind::all() {
            let ratio = text_generation_time(model, &laptop(), 150)
                / text_generation_time(model, &ws(), 150);
            assert!((2.0..3.0).contains(&ratio), "{model:?}: {ratio:.2}");
        }
    }

    #[test]
    fn mobile_is_slower_than_laptop() {
        let mobile = profile(DeviceKind::Mobile);
        let tm = image_generation_time(ImageModelKind::Sd3Medium, &mobile, 256, 256, 15).unwrap();
        let tl = image_generation_time(ImageModelKind::Sd3Medium, &laptop(), 256, 256, 15).unwrap();
        assert!(tm > tl * 2.0);
    }
}
