//! Embodied-carbon accounting (paper §6.4 last ¶ and §7 Sustainability).
//!
//! Storage hardware carries a manufacturing footprint of 6–7 kgCO₂e per
//! terabyte of SSD. Compressing media into prompts shrinks the fleet of
//! drives a provider must buy, so "with exabyte scale storage, even modest
//! compression can save millions of kgCO₂e".

/// Embodied emissions per terabyte of SSD, kgCO₂e (midpoint of the
/// paper's 6–7 range).
pub const SSD_KG_CO2E_PER_TB: f64 = 6.5;

/// Bytes per terabyte (decimal).
pub const BYTES_PER_TB: f64 = 1e12;

/// Embodied carbon of storing `bytes` on SSD.
pub fn embodied_kg_co2e(bytes: f64) -> f64 {
    bytes / BYTES_PER_TB * SSD_KG_CO2E_PER_TB
}

/// Carbon saved by compressing `original_bytes` of stored media at
/// `compression_ratio` (original ÷ compressed).
pub fn storage_savings_kg_co2e(original_bytes: f64, compression_ratio: f64) -> f64 {
    assert!(compression_ratio >= 1.0, "ratio must be >= 1");
    let compressed = original_bytes / compression_ratio;
    embodied_kg_co2e(original_bytes - compressed)
}

/// CDN-fleet helper: total embodied carbon for media replicated across
/// `replicas` edge sites (the replication that makes CDNs the paper's
/// highest-impact deployment, §2.2).
pub fn replicated_embodied_kg_co2e(bytes_per_site: f64, replicas: u32) -> f64 {
    embodied_kg_co2e(bytes_per_site * f64::from(replicas))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tb_constant_in_paper_range() {
        assert!((6.0..=7.0).contains(&SSD_KG_CO2E_PER_TB));
    }

    #[test]
    fn exabyte_scale_saves_millions_of_kg() {
        // Paper: "With exabyte scale storage, even modest compression can
        // save millions of kgCO2e." 1 EB at a modest 2× ratio:
        let saved = storage_savings_kg_co2e(1e18, 2.0);
        assert!(saved > 1e6, "saved {saved:.0} kgCO2e");
        // And at the measured ≈157× image ratio nearly the full footprint:
        let saved = storage_savings_kg_co2e(1e18, 157.0);
        assert!(saved > 6.4e6);
    }

    #[test]
    fn linear_in_bytes() {
        assert!((embodied_kg_co2e(2e12) - 13.0).abs() < 1e-9);
        assert!((embodied_kg_co2e(0.0)).abs() < 1e-12);
    }

    #[test]
    fn ratio_one_saves_nothing() {
        assert_eq!(storage_savings_kg_co2e(1e15, 1.0), 0.0);
    }

    #[test]
    fn replication_multiplies() {
        let one = replicated_embodied_kg_co2e(1e12, 1);
        let hundred = replicated_embodied_kg_co2e(1e12, 100);
        assert!((hundred - one * 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ratio must be >= 1")]
    fn rejects_expansion_ratio() {
        storage_savings_kg_co2e(1e12, 0.5);
    }
}
