//! Device profiles matching the paper's evaluation setup (§6.1) plus the
//! mobile profile its §7 outlook targets.

/// The devices content can be generated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// MacBook Pro, M1 Pro, 16 GB, 16-core integrated GPU, FP16, no large
    /// text encoder, attention splitting required.
    Laptop,
    /// AMD Threadripper Pro 5, 128 GB DDR5, 2× NVIDIA ADA 4000, FP16,
    /// large text encoder, no attention splitting.
    Workstation,
    /// A 2024-class flagship phone with an NPU (§7 "Generation on Mobile
    /// Devices") — an extension profile, not in the paper's evaluation.
    Mobile,
}

/// Static description of one device.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Which device this is.
    pub kind: DeviceKind,
    /// Display name.
    pub name: &'static str,
    /// Whether the device must split attention computation because of
    /// memory limits — the source of the superlinear large-image penalty
    /// the paper measures (310 s at 1024²).
    pub attention_splitting: bool,
    /// Whether the full text encoder/tokenizer fits (workstation only).
    pub large_text_encoder: bool,
    /// Average draw during image generation, watts. Calibrated from the
    /// paper's Table 2 (energy ÷ time): ≈10.4 W laptop, ≈130 W workstation.
    pub image_power_w: f64,
    /// Average draw during text generation, watts. The paper's Table 2
    /// implies ≈1.1 W on the laptop (efficiency cores / NPU) and ≈141 W on
    /// the workstation.
    pub text_power_w: f64,
    /// SD 3 Medium total generation seconds at 15 steps, as measured by
    /// the paper, at the anchor resolutions `(pixels, seconds)` —
    /// interpolated log-log between anchors by the cost model.
    pub sd3_time_anchors: &'static [(u64, f64)],
    /// Laptop-style multiplier for the text cost model: laptop ≈ 2.5× the
    /// workstation (§6.3.2). 1.0 on the workstation itself.
    pub text_slowdown: f64,
}

/// Pixels helper.
const fn px(side: u64) -> u64 {
    side * side
}

/// The paper's measured SD 3 Medium anchors on the laptop: 224² from
/// Table 1 (0.38 s/step × 15), the rest from Table 2 / §6.3.1.
static LAPTOP_ANCHORS: [(u64, f64); 4] = [
    (px(224), 5.7),
    (px(256), 7.0),
    (px(512), 19.0),
    (px(1024), 310.0),
];

/// Workstation anchors: 224² from Table 1 (0.05 s/step × 15), rest from
/// Table 2.
static WORKSTATION_ANCHORS: [(u64, f64); 4] = [
    (px(224), 0.75),
    (px(256), 1.0),
    (px(512), 1.7),
    (px(1024), 6.2),
];

/// Mobile anchors: an NPU-accelerated phone at roughly 3× the laptop's
/// small-image times with an earlier memory wall.
static MOBILE_ANCHORS: [(u64, f64); 4] = [
    (px(224), 17.0),
    (px(256), 22.0),
    (px(512), 75.0),
    (px(1024), 1400.0),
];

/// Look up a device profile.
pub fn profile(kind: DeviceKind) -> DeviceProfile {
    match kind {
        DeviceKind::Laptop => DeviceProfile {
            kind,
            name: "Laptop (M1 Pro)",
            attention_splitting: true,
            large_text_encoder: false,
            image_power_w: 10.4,
            text_power_w: 1.1,
            sd3_time_anchors: &LAPTOP_ANCHORS,
            text_slowdown: 2.5,
        },
        DeviceKind::Workstation => DeviceProfile {
            kind,
            name: "Workstation (2x ADA 4000)",
            attention_splitting: false,
            large_text_encoder: true,
            image_power_w: 130.0,
            text_power_w: 141.0,
            sd3_time_anchors: &WORKSTATION_ANCHORS,
            text_slowdown: 1.0,
        },
        DeviceKind::Mobile => DeviceProfile {
            kind,
            name: "Mobile (NPU flagship)",
            attention_splitting: true,
            large_text_encoder: false,
            image_power_w: 4.5,
            text_power_w: 0.8,
            sd3_time_anchors: &MOBILE_ANCHORS,
            text_slowdown: 6.0,
        },
    }
}

impl DeviceProfile {
    /// Convenience constructor.
    pub fn new(kind: DeviceKind) -> DeviceProfile {
        profile(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper_tables() {
        let laptop = profile(DeviceKind::Laptop);
        assert_eq!(laptop.sd3_time_anchors[1], (256 * 256, 7.0));
        assert_eq!(laptop.sd3_time_anchors[3], (1024 * 1024, 310.0));
        let ws = profile(DeviceKind::Workstation);
        assert_eq!(ws.sd3_time_anchors[1], (256 * 256, 1.0));
        assert_eq!(ws.sd3_time_anchors[3], (1024 * 1024, 6.2));
    }

    #[test]
    fn implied_power_matches_table2_energy() {
        // Table 2 laptop: 310 s, 0.90 Wh → ≈10.4 W.
        let laptop = profile(DeviceKind::Laptop);
        let wh = laptop.image_power_w * 310.0 / 3600.0;
        assert!((wh - 0.90).abs() < 0.02, "laptop large image {wh:.3} Wh");
        // Table 2 workstation: 6.2 s, 0.21 Wh → ≈125–130 W.
        let ws = profile(DeviceKind::Workstation);
        let wh = ws.image_power_w * 6.2 / 3600.0;
        assert!((wh - 0.21).abs() < 0.02, "ws large image {wh:.3} Wh");
        // Text block: 13 s, 0.51 Wh on the workstation.
        let wh = ws.text_power_w * 13.0 / 3600.0;
        assert!((wh - 0.51).abs() < 0.01, "ws text {wh:.3} Wh");
    }

    #[test]
    fn memory_constrained_devices_split_attention() {
        assert!(profile(DeviceKind::Laptop).attention_splitting);
        assert!(!profile(DeviceKind::Workstation).attention_splitting);
        assert!(profile(DeviceKind::Mobile).attention_splitting);
    }

    #[test]
    fn anchors_are_monotonic() {
        for kind in [
            DeviceKind::Laptop,
            DeviceKind::Workstation,
            DeviceKind::Mobile,
        ] {
            let p = profile(kind);
            for w in p.sd3_time_anchors.windows(2) {
                assert!(w[0].0 < w[1].0);
                assert!(w[0].1 < w[1].1, "{kind:?}");
            }
        }
    }
}
