//! HMAC-SHA-256 (RFC 2104).

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Compute HMAC-SHA-256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    // Keys longer than the block are hashed first.
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ IPAD).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ OPAD).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time verification of an HMAC tag.
pub fn verify_hmac(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    let expected = hmac_sha256(key, message);
    if tag.len() != expected.len() {
        return false;
    }
    // Constant-time comparison: accumulate differences.
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_test_case_6_long_key() {
        // 131-byte key forces the hash-the-key path.
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"key", b"msg");
        assert!(verify_hmac(b"key", b"msg", &tag));
        assert!(!verify_hmac(b"key", b"other", &tag));
        assert!(!verify_hmac(b"other", b"msg", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac(b"key", b"msg", &bad));
        assert!(!verify_hmac(b"key", b"msg", &tag[..16]));
    }
}
