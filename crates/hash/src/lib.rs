#![warn(missing_docs)]

//! SHA-256 (FIPS 180-4) and HMAC-SHA-256 (RFC 2104), implemented from
//! scratch as the integrity substrate for SWW's trust layer (paper §7:
//! "verifying generated content on end-user devices … should be
//! accompanied by other mechanisms for trustworthy AI").

mod hmac;
mod sha256;

pub use hmac::{hmac_sha256, verify_hmac};
pub use sha256::{sha256, Sha256};

/// Render a digest as lowercase hex.
pub fn to_hex(digest: &[u8]) -> String {
    let mut out = String::with_capacity(digest.len() * 2);
    for b in digest {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_rendering() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(to_hex(&[]), "");
    }
}
