//! End-to-end tests: client and server connected over an in-memory duplex
//! stream, exercising the handshake, the GEN_ABILITY negotiation matrix,
//! multiplexing, flow control and large header blocks.

use bytes::Bytes;
use sww_http2::server::{serve_connection, ServeContext};
use sww_http2::{ClientConnection, GenAbility, Request, Response};
use tokio::io::duplex;

/// Spawn a server over one end of a duplex pipe and hand back the client.
async fn pair(
    server_ability: GenAbility,
    client_ability: GenAbility,
    handler: impl FnMut(Request, ServeContext) -> Response + Send + 'static,
) -> ClientConnection<tokio::io::DuplexStream> {
    let (a, b) = duplex(1 << 20);
    tokio::spawn(async move {
        let _ = serve_connection(b, server_ability, handler).await;
    });
    ClientConnection::handshake(a, client_ability)
        .await
        .expect("handshake")
}

#[tokio::test]
async fn basic_request_response() {
    let mut client = pair(GenAbility::full(), GenAbility::full(), |req, _| {
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/hello");
        let mut resp = Response::ok(Bytes::from_static(b"<html>hi</html>"));
        resp.headers.insert("content-type", "text/html");
        resp
    })
    .await;
    let resp = client.send_request(&Request::get("/hello")).await.unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.headers.get("content-type"), Some("text/html"));
    assert_eq!(&resp.body[..], b"<html>hi</html>");
}

#[tokio::test]
async fn negotiation_both_support() {
    let mut client = pair(GenAbility::full(), GenAbility::full(), |_, ctx| {
        assert!(ctx.negotiated.can_generate());
        Response::ok(Bytes::new())
    })
    .await;
    assert!(client.negotiated_ability().can_generate());
    assert!(client.server_ability().can_generate());
    client.send_request(&Request::get("/")).await.unwrap();
}

#[tokio::test]
async fn negotiation_client_only() {
    // Server naive, client generative → fall back to default behaviour.
    let mut client = pair(GenAbility::none(), GenAbility::full(), |_, ctx| {
        assert!(!ctx.negotiated.supported());
        assert!(ctx.client_ability.can_generate());
        Response::ok(Bytes::new())
    })
    .await;
    assert!(!client.negotiated_ability().supported());
    client.send_request(&Request::get("/")).await.unwrap();
}

#[tokio::test]
async fn negotiation_server_only() {
    let mut client = pair(GenAbility::full(), GenAbility::none(), |_, ctx| {
        assert!(!ctx.negotiated.supported());
        assert!(!ctx.client_ability.supported());
        Response::ok(Bytes::new())
    })
    .await;
    assert!(!client.negotiated_ability().supported());
    assert!(client.server_ability().can_generate());
    client.send_request(&Request::get("/")).await.unwrap();
}

#[tokio::test]
async fn negotiation_neither() {
    let mut client = pair(GenAbility::none(), GenAbility::none(), |_, ctx| {
        assert!(!ctx.negotiated.supported());
        Response::ok(Bytes::new())
    })
    .await;
    assert!(!client.negotiated_ability().supported());
    client.send_request(&Request::get("/")).await.unwrap();
}

#[tokio::test]
async fn upscale_only_negotiation() {
    // Paper §3: the 32-bit value can express richer capabilities.
    let mut client = pair(
        GenAbility::from_bits(GenAbility::GENERATE | GenAbility::UPSCALE),
        GenAbility::upscale_only(),
        |_, ctx| {
            assert!(ctx.negotiated.can_upscale());
            assert!(!ctx.negotiated.can_generate());
            Response::ok(Bytes::new())
        },
    )
    .await;
    assert!(client.negotiated_ability().can_upscale());
    assert!(!client.negotiated_ability().can_generate());
    client.send_request(&Request::get("/")).await.unwrap();
}

#[tokio::test]
async fn large_body_crosses_flow_control_window() {
    // 1 MiB body: far beyond the 64 KiB initial window and the 16 KiB
    // frame size, forcing DATA splitting and WINDOW_UPDATE exchange.
    let big = vec![0xabu8; 1 << 20];
    let big2 = big.clone();
    let mut client = pair(GenAbility::full(), GenAbility::full(), move |_, _| {
        Response::ok(Bytes::from(big2.clone()))
    })
    .await;
    let resp = client.send_request(&Request::get("/big")).await.unwrap();
    assert_eq!(resp.body.len(), 1 << 20);
    assert!(resp.body.iter().all(|&b| b == 0xab));
}

#[tokio::test]
async fn large_request_body_upload() {
    let mut client = pair(GenAbility::full(), GenAbility::full(), |req, _| {
        Response::ok(Bytes::from(req.body.len().to_string()))
    })
    .await;
    let mut req = Request::get("/upload");
    req.method = "POST".into();
    req.body = Bytes::from(vec![7u8; 300_000]);
    let resp = client.send_request(&req).await.unwrap();
    assert_eq!(&resp.body[..], b"300000");
}

#[tokio::test]
async fn huge_header_block_uses_continuation() {
    // A ~60 KiB header value exceeds max_frame_size (16 KiB), so the block
    // must be carried by HEADERS + CONTINUATION frames.
    let prompt = "a landscape, ".repeat(5000);
    let expect = prompt.clone();
    let mut client = pair(GenAbility::full(), GenAbility::full(), move |req, _| {
        assert_eq!(req.headers.get("x-prompt"), Some(expect.as_str()));
        Response::ok(Bytes::new())
    })
    .await;
    let mut req = Request::get("/gen");
    req.headers.insert("x-prompt", prompt);
    let resp = client.send_request(&req).await.unwrap();
    assert_eq!(resp.status, 200);
}

#[tokio::test]
async fn multiplexed_requests_round_robin() {
    let mut client = pair(GenAbility::full(), GenAbility::full(), |req, _| {
        Response::ok(Bytes::from(format!("echo:{}", req.path)))
    })
    .await;
    let reqs: Vec<Request> = (0..8).map(|i| Request::get(format!("/p{i}"))).collect();
    let resps = client.send_pipelined(&reqs).await.unwrap();
    for (i, r) in resps.iter().enumerate() {
        assert_eq!(&r.body[..], format!("echo:/p{i}").as_bytes());
    }
}

#[tokio::test]
async fn sequential_requests_reuse_connection() {
    let mut client = pair(GenAbility::full(), GenAbility::full(), |req, _| {
        Response::ok(Bytes::from(req.path))
    })
    .await;
    for i in 0..20 {
        let path = format!("/seq/{i}");
        let resp = client
            .send_request(&Request::get(path.clone()))
            .await
            .unwrap();
        assert_eq!(&resp.body[..], path.as_bytes());
    }
}

#[tokio::test]
async fn pipelining_respects_max_concurrent_streams() {
    // A server announcing SETTINGS_MAX_CONCURRENT_STREAMS=2 must still see
    // every request answered, with the client windowing its streams.
    use sww_http2::connection::Connection;
    use sww_http2::Settings;
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let mut settings = Settings::sww(GenAbility::full());
        settings.max_concurrent_streams = Some(2);
        let mut conn = Connection::server_handshake(b, settings).await.unwrap();
        loop {
            let msg = match conn.next_message().await {
                Ok(m) => m,
                Err(_) => break,
            };
            let req = Request::from_fields(msg.fields).unwrap();
            let resp = Response::ok(Bytes::from(req.path));
            conn.send_message(msg.stream_id, &resp.to_fields(), resp.body.clone())
                .await
                .unwrap();
        }
    });
    let mut client = ClientConnection::handshake(a, GenAbility::full())
        .await
        .unwrap();
    let reqs: Vec<Request> = (0..9).map(|i| Request::get(format!("/w{i}"))).collect();
    let resps = client.send_pipelined(&reqs).await.unwrap();
    for (i, r) in resps.iter().enumerate() {
        assert_eq!(&r.body[..], format!("/w{i}").as_bytes());
    }
}

#[tokio::test]
async fn ping_pong() {
    let mut client = pair(GenAbility::full(), GenAbility::full(), |_, _| {
        Response::ok(Bytes::new())
    })
    .await;
    client.ping().await.unwrap();
    // Connection still usable after the ping.
    let resp = client
        .send_request(&Request::get("/after-ping"))
        .await
        .unwrap();
    assert_eq!(resp.status, 200);
}

#[tokio::test]
async fn hpack_compression_shrinks_repeated_requests() {
    let mut client = pair(GenAbility::full(), GenAbility::full(), |_, _| {
        Response::ok(Bytes::new())
    })
    .await;
    let mut req = Request::get("/same/path/every/time");
    req.headers
        .insert("user-agent", "sww-generative-client/0.1 (prototype)");
    client.send_request(&req).await.unwrap();
    let after_first = client.bytes_sent();
    client.send_request(&req).await.unwrap();
    let second = client.bytes_sent() - after_first;
    client.send_request(&req).await.unwrap();
    let third = client.bytes_sent() - after_first - second;
    // Dynamic-table hits make repeats much smaller than the first request.
    assert!(third <= second);
    assert!(second < after_first);
}

#[tokio::test]
async fn mid_connection_settings_update_changes_negotiation() {
    // RFC 9113 §6.5 + paper §3: "Each entity stores the latest settings it
    // receives from its peer and uses them to structure appropriate
    // messages across all streams." A client that withdraws GEN_ABILITY
    // mid-connection gets traditional service from then on.
    let mut client = pair(GenAbility::full(), GenAbility::full(), |_, ctx| {
        Response::ok(Bytes::from(ctx.negotiated.can_generate().to_string()))
    })
    .await;
    let resp = client.send_request(&Request::get("/1")).await.unwrap();
    assert_eq!(&resp.body[..], b"true");
    // Battery saver kicks in: withdraw generation.
    client.update_ability(GenAbility::none()).await.unwrap();
    let resp = client.send_request(&Request::get("/2")).await.unwrap();
    assert_eq!(&resp.body[..], b"false");
    // And restore it.
    client.update_ability(GenAbility::full()).await.unwrap();
    let resp = client.send_request(&Request::get("/3")).await.unwrap();
    assert_eq!(&resp.body[..], b"true");
}

#[tokio::test]
async fn works_over_real_tcp() {
    // The same stack over an OS socket, as the examples use it.
    let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    tokio::spawn(async move {
        let (sock, _) = listener.accept().await.unwrap();
        let _ = serve_connection(sock, GenAbility::full(), |req, _| {
            Response::ok(Bytes::from(format!("tcp:{}", req.path)))
        })
        .await;
    });
    let sock = tokio::net::TcpStream::connect(addr).await.unwrap();
    let mut client = ClientConnection::handshake(sock, GenAbility::full())
        .await
        .unwrap();
    assert!(client.negotiated_ability().can_generate());
    let resp = client
        .send_request(&Request::get("/tcp-path"))
        .await
        .unwrap();
    assert_eq!(&resp.body[..], b"tcp:/tcp-path");
    client.close().await.unwrap();
}
