//! Fault injection: adverse byte streams against the HTTP/2 layer. The
//! stack must fail with protocol errors — never panic, never hang — when
//! the peer sends garbage, truncates frames, corrupts HPACK state or
//! violates the preface.

use bytes::{Bytes, BytesMut};
use sww_http2::connection::{Connection, FrameIo};
use sww_http2::frame::{DataFrame, Frame, FrameHeader, HeadersFrame, SettingsFrame};
use sww_http2::{GenAbility, H2Error, Settings};
use tokio::io::{duplex, AsyncWriteExt};

/// Raw-socket peer: write arbitrary bytes at a server handshake.
async fn server_against_raw(bytes: Vec<u8>) -> Result<(), H2Error> {
    let (mut a, b) = duplex(1 << 16);
    let writer = tokio::spawn(async move {
        let _ = a.write_all(&bytes).await;
        let _ = a.shutdown().await;
        // Keep `a` alive so reads see EOF, not a broken pipe mid-frame.
        a
    });
    let result = Connection::server_handshake(b, Settings::sww(GenAbility::full()))
        .await
        .map(|_| ());
    let _ = writer.await;
    result
}

fn encode_frame(f: &Frame) -> Vec<u8> {
    let mut buf = BytesMut::new();
    f.encode(&mut buf);
    buf.to_vec()
}

#[tokio::test]
async fn garbage_preface_rejected() {
    let err = server_against_raw(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n padding padding".to_vec())
        .await
        .unwrap_err();
    assert!(matches!(err, H2Error::Connection(..)), "{err}");
}

#[tokio::test]
async fn truncated_preface_is_clean_close() {
    let err = server_against_raw(b"PRI * HT".to_vec()).await.unwrap_err();
    assert!(matches!(err, H2Error::Closed | H2Error::Io(_)), "{err}");
}

#[tokio::test]
async fn preface_without_settings_hangs_until_eof() {
    // Valid preface then EOF: handshake must terminate with Closed.
    let err = server_against_raw(sww_http2::PREFACE.to_vec())
        .await
        .unwrap_err();
    assert!(matches!(err, H2Error::Closed), "{err}");
}

#[tokio::test]
async fn oversized_frame_header_rejected() {
    let mut bytes = sww_http2::PREFACE.to_vec();
    // Claim a 10 MB SETTINGS frame: above the default max frame size.
    let header = FrameHeader {
        length: 10 << 20,
        kind: 0x4,
        flags: 0,
        stream_id: 0,
    };
    let mut buf = BytesMut::new();
    header.encode(&mut buf);
    bytes.extend_from_slice(&buf);
    let err = server_against_raw(bytes).await.unwrap_err();
    assert!(matches!(err, H2Error::Connection(..)), "{err}");
}

#[tokio::test]
async fn corrupted_settings_payload_rejected() {
    let mut bytes = sww_http2::PREFACE.to_vec();
    // SETTINGS with a 5-byte (non-multiple-of-6) payload.
    let header = FrameHeader {
        length: 5,
        kind: 0x4,
        flags: 0,
        stream_id: 0,
    };
    let mut buf = BytesMut::new();
    header.encode(&mut buf);
    bytes.extend_from_slice(&buf);
    bytes.extend_from_slice(&[0; 5]);
    let err = server_against_raw(bytes).await.unwrap_err();
    assert!(matches!(err, H2Error::Connection(..)), "{err}");
}

#[tokio::test]
async fn data_before_headers_rejected() {
    let mut bytes = sww_http2::PREFACE.to_vec();
    bytes.extend(encode_frame(&Frame::Settings(SettingsFrame::new(vec![]))));
    // DATA on a stream that was never opened.
    bytes.extend(encode_frame(&Frame::Data(DataFrame::new(
        1,
        Bytes::from_static(b"x"),
        true,
    ))));
    let (mut a, b) = duplex(1 << 16);
    tokio::spawn(async move {
        let _ = a.write_all(&bytes).await;
        // Hold the socket open so the server can write its own frames.
        tokio::time::sleep(std::time::Duration::from_millis(200)).await;
        a
    });
    let mut conn = Connection::server_handshake(b, Settings::sww(GenAbility::none()))
        .await
        .expect("handshake survives; DATA comes later");
    let err = conn.next_message().await.unwrap_err();
    assert!(matches!(err, H2Error::Connection(..)), "{err}");
}

#[tokio::test]
async fn corrupt_hpack_block_rejected() {
    let mut bytes = sww_http2::PREFACE.to_vec();
    bytes.extend(encode_frame(&Frame::Settings(SettingsFrame::new(vec![]))));
    // HEADERS with an HPACK block referencing a bogus index.
    bytes.extend(encode_frame(&Frame::Headers(HeadersFrame::new(
        1,
        Bytes::from_static(&[0xff, 0xff, 0xff, 0x7f]),
        true,
    ))));
    let (mut a, b) = duplex(1 << 16);
    tokio::spawn(async move {
        let _ = a.write_all(&bytes).await;
        tokio::time::sleep(std::time::Duration::from_millis(200)).await;
        a
    });
    let mut conn = Connection::server_handshake(b, Settings::sww(GenAbility::none()))
        .await
        .expect("handshake ok");
    let err = conn.next_message().await.unwrap_err();
    assert!(matches!(err, H2Error::Connection(..)), "{err}");
}

#[tokio::test]
async fn continuation_flood_is_cut_off() {
    // A peer streaming CONTINUATION fragments forever (never END_HEADERS)
    // must be stopped by the header-block cap, not buffer unboundedly.
    let (mut a, b) = duplex(1 << 16);
    tokio::spawn(async move {
        let mut bytes = sww_http2::PREFACE.to_vec();
        bytes.extend(encode_frame(&Frame::Settings(SettingsFrame::new(vec![]))));
        // HEADERS without END_HEADERS, then a flood of CONTINUATIONs.
        bytes.extend(encode_frame(&Frame::Headers(HeadersFrame {
            stream_id: 1,
            fragment: Bytes::from(vec![0u8; 1024]),
            end_stream: false,
            end_headers: false,
            priority: None,
        })));
        let _ = a.write_all(&bytes).await;
        let chunk = encode_frame(&Frame::Continuation(sww_http2::frame::ContinuationFrame {
            stream_id: 1,
            fragment: Bytes::from(vec![0u8; 16 * 1024]),
            end_headers: false,
        }));
        // 2 MiB of fragments: far beyond the 1 MiB cap.
        for _ in 0..128 {
            if a.write_all(&chunk).await.is_err() {
                break;
            }
        }
        a
    });
    let mut conn = Connection::server_handshake(b, Settings::sww(GenAbility::none()))
        .await
        .expect("handshake ok");
    let err = conn.next_message().await.unwrap_err();
    assert!(
        matches!(
            err,
            H2Error::Connection(sww_http2::ErrorCode::EnhanceYourCalm, _)
        ),
        "{err}"
    );
}

#[tokio::test]
async fn random_bytes_never_panic() {
    // Pseudo-random fuzz: none of these may panic or hang.
    let mut seed = 0x5eedu64;
    for round in 0..50 {
        let len = (round * 7) % 120 + 1;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            bytes.push((seed >> 33) as u8);
        }
        let _ = server_against_raw(bytes).await;
    }
}

#[tokio::test]
async fn frame_io_truncation_mid_payload() {
    // A frame header promising more payload than ever arrives.
    let (mut a, b) = duplex(1 << 16);
    tokio::spawn(async move {
        let header = FrameHeader {
            length: 100,
            kind: 0x0,
            flags: 0,
            stream_id: 1,
        };
        let mut buf = BytesMut::new();
        header.encode(&mut buf);
        let _ = a.write_all(&buf).await;
        let _ = a.write_all(&[0u8; 10]).await; // only 10 of 100 octets
        let _ = a.shutdown().await;
        a
    });
    let mut io = FrameIo::new(b);
    let err = io.read_frame().await.unwrap_err();
    assert!(matches!(err, H2Error::Closed | H2Error::Io(_)), "{err}");
}

#[tokio::test]
async fn unknown_frames_and_settings_are_tolerated() {
    // The deployability property: a peer sending extension frames and
    // unknown settings must not break the connection.
    let (mut a, b) = duplex(1 << 16);
    tokio::spawn(async move {
        let mut bytes = sww_http2::PREFACE.to_vec();
        bytes.extend(encode_frame(&Frame::Settings(SettingsFrame::new(vec![
            (0x7f01, 42), // unknown setting
            (0x07, 1),    // GEN_ABILITY
        ]))));
        bytes.extend(encode_frame(&Frame::Unknown {
            kind: 0xee,
            flags: 0x7,
            stream_id: 0,
            payload: Bytes::from_static(b"extension-frame"),
        }));
        let _ = a.write_all(&bytes).await;
        // Hold the socket open briefly so the server can answer.
        tokio::time::sleep(std::time::Duration::from_millis(50)).await;
        a
    });
    let conn = Connection::server_handshake(b, Settings::sww(GenAbility::full()))
        .await
        .expect("unknown settings/frames must not kill the handshake");
    assert!(conn.negotiated_ability().can_generate());
}
