//! Property tests over the HTTP/2 wire layers: frame codec, HPACK and
//! Huffman coding must roundtrip arbitrary well-formed inputs and fail
//! cleanly on arbitrary bytes.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use sww_http2::frame::{
    DataFrame, Frame, FrameHeader, GoAwayFrame, HeadersFrame, PingFrame, RstStreamFrame,
    SettingsFrame, WindowUpdateFrame, FRAME_HEADER_LEN,
};
use sww_http2::hpack::{huffman, Decoder, Encoder, HeaderField};
use sww_http2::ErrorCode;

fn arb_stream_id() -> impl Strategy<Value = u32> {
    1u32..0x7fff_ffff
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            arb_stream_id(),
            prop::collection::vec(any::<u8>(), 0..512),
            any::<bool>()
        )
            .prop_map(|(id, data, fin)| Frame::Data(DataFrame::new(
                id,
                Bytes::from(data),
                fin
            ))),
        (
            arb_stream_id(),
            prop::collection::vec(any::<u8>(), 0..256),
            any::<bool>()
        )
            .prop_map(|(id, frag, fin)| Frame::Headers(HeadersFrame::new(
                id,
                Bytes::from(frag),
                fin
            ))),
        prop::collection::vec((any::<u16>(), any::<u32>()), 0..8)
            .prop_map(|params| Frame::Settings(SettingsFrame::new(params))),
        any::<[u8; 8]>().prop_map(|p| Frame::Ping(PingFrame::new(p))),
        (0u32..0x7fff_ffff, prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(id, debug)| {
            Frame::GoAway(GoAwayFrame::new(id, ErrorCode::NoError, Bytes::from(debug)))
        }),
        (arb_stream_id(),)
            .prop_map(|(id,)| Frame::RstStream(RstStreamFrame::new(id, ErrorCode::Cancel))),
        (0u32..0x7fff_ffff, 1u32..0x7fff_ffff)
            .prop_map(|(id, inc)| Frame::WindowUpdate(WindowUpdateFrame::new(id, inc))),
    ]
}

proptest! {
    #[test]
    fn frames_roundtrip(frame in arb_frame()) {
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        let header = FrameHeader::parse(buf[..FRAME_HEADER_LEN].try_into().unwrap());
        let parsed = Frame::parse(header, Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..])).unwrap();
        prop_assert_eq!(parsed, frame);
    }

    #[test]
    fn frame_parser_never_panics(kind in any::<u8>(), flags in any::<u8>(),
                                 stream in any::<u32>(), payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let header = FrameHeader {
            length: payload.len() as u32,
            kind,
            flags,
            stream_id: stream & 0x7fff_ffff,
        };
        let _ = Frame::parse(header, Bytes::from(payload));
    }

    #[test]
    fn hpack_roundtrips_arbitrary_headers(
        headers in prop::collection::vec(
            ("[a-z][a-z0-9-]{0,24}", "[ -~]{0,64}").prop_map(|(n, v)| HeaderField::new(n, v)),
            0..16
        )
    ) {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        // Two rounds: exercises dynamic-table hits on the second pass.
        for _ in 0..2 {
            let block = enc.encode(&headers);
            prop_assert_eq!(dec.decode(&block).unwrap(), headers.clone());
        }
    }

    #[test]
    fn hpack_decoder_never_panics(block in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Decoder::new().decode(&block);
    }

    #[test]
    fn huffman_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let enc = huffman::encode(&data);
        prop_assert_eq!(huffman::decode(&enc).unwrap(), data);
    }

    #[test]
    fn huffman_decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = huffman::decode(&data);
    }

    #[test]
    fn huffman_length_estimate_is_exact(data in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(huffman::encoded_len(&data), huffman::encode(&data).len());
    }
}
