//! HPACK property suite: round-trip over arbitrary header lists —
//! including Huffman-coded and never-indexed fields — plus model-based
//! dynamic-table eviction invariants (RFC 7541 §4).
//!
//! Complements `proptest_wire.rs` (single-block round-trips and
//! never-panic fuzzing) with the *stateful* properties: persistent
//! encoder/decoder pairs over many blocks, encoder/decoder table
//! agreement, the sensitive-field representation, and a reference model
//! of the dynamic table checked against the real one operation by
//! operation.

use proptest::prelude::*;
use sww_http2::hpack::table::DynamicTable;
use sww_http2::hpack::{Decoder, Encoder, HeaderField};

fn arb_header() -> impl Strategy<Value = HeaderField> {
    ("[a-z][a-z0-9-]{0,24}", "[ -~]{0,64}").prop_map(|(n, v)| HeaderField::new(n, v))
}

fn arb_block() -> impl Strategy<Value = Vec<HeaderField>> {
    prop::collection::vec(arb_header(), 0..12)
}

/// One dynamic-table operation for the model-based test.
#[derive(Debug, Clone)]
enum TableOp {
    Insert(HeaderField),
    Resize(usize),
}

fn arb_table_op() -> impl Strategy<Value = TableOp> {
    prop_oneof![
        arb_header().prop_map(TableOp::Insert),
        (0usize..400).prop_map(TableOp::Resize),
    ]
}

/// Reference model of RFC 7541 §4: newest first, FIFO eviction from the
/// back, an entry larger than the whole table clears it.
#[derive(Debug, Default)]
struct ModelTable {
    entries: Vec<HeaderField>,
    size: usize,
    max: usize,
}

impl ModelTable {
    fn new(max: usize) -> ModelTable {
        ModelTable {
            entries: Vec::new(),
            size: 0,
            max,
        }
    }

    fn evict(&mut self) {
        while self.size > self.max {
            let victim = self.entries.pop().expect("size > 0 implies entries");
            self.size -= victim.size();
        }
    }

    fn insert(&mut self, f: HeaderField) {
        if f.size() > self.max {
            self.entries.clear();
            self.size = 0;
            return;
        }
        self.size += f.size();
        self.entries.insert(0, f);
        self.evict();
    }

    fn resize(&mut self, new_max: usize) {
        self.max = new_max;
        self.evict();
    }
}

proptest! {
    /// A persistent encoder/decoder pair stays in lockstep over an
    /// arbitrary sequence of header blocks, with and without Huffman
    /// string coding, and their dynamic tables agree octet-for-octet
    /// after every block.
    #[test]
    fn stateful_roundtrip_keeps_tables_in_sync(
        blocks in prop::collection::vec(arb_block(), 1..6),
        use_huffman in any::<bool>()
    ) {
        let mut enc = Encoder::new();
        enc.use_huffman = use_huffman;
        let mut dec = Decoder::new();
        for headers in &blocks {
            let block = enc.encode(headers);
            prop_assert_eq!(&dec.decode(&block).unwrap(), headers);
            prop_assert_eq!(enc.table_size(), dec.table_size(),
                "encoder and decoder tables diverged");
        }
    }

    /// Never-indexed (sensitive) blocks round-trip and leave both
    /// dynamic tables untouched: encoding the same secret twice yields
    /// the same bytes, and nothing about it is remembered.
    #[test]
    fn sensitive_blocks_roundtrip_without_touching_the_table(
        headers in prop::collection::vec(arb_header(), 1..8)
    ) {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let first = enc.encode_sensitive(&headers);
        let second = enc.encode_sensitive(&headers);
        prop_assert_eq!(&first, &second, "no table state may leak into the encoding");
        prop_assert_eq!(&dec.decode(&first).unwrap(), &headers);
        prop_assert_eq!(enc.table_size(), 0);
        prop_assert_eq!(dec.table_size(), 0);
        // Every field carries the never-indexed tag (possibly after a
        // leading size update, which encode_sensitive never emits).
        prop_assert_eq!(first[0] & 0xf0, 0x10, "never-indexed representation");
    }

    /// Interleaving sensitive and normal blocks on one connection keeps
    /// the pair in sync: sensitive fields skip the table, normal fields
    /// use it, and decode stays exact throughout.
    #[test]
    fn mixed_sensitive_and_normal_blocks_stay_in_sync(
        rounds in prop::collection::vec((arb_block(), any::<bool>()), 1..6)
    ) {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for (headers, sensitive) in &rounds {
            let block = if *sensitive {
                enc.encode_sensitive(headers)
            } else {
                enc.encode(headers)
            };
            prop_assert_eq!(&dec.decode(&block).unwrap(), headers);
            prop_assert_eq!(enc.table_size(), dec.table_size());
        }
    }

    /// Model-based check of the dynamic table: after any sequence of
    /// inserts and resizes, the real table matches the reference model —
    /// same entry count, same octet size, same contents in the same
    /// order (newest at absolute index 62) — and never exceeds its
    /// capacity.
    #[test]
    fn dynamic_table_matches_reference_model(
        capacity in 32usize..400,
        ops in prop::collection::vec(arb_table_op(), 0..40)
    ) {
        let mut real = DynamicTable::with_capacity(capacity);
        let mut model = ModelTable::new(capacity);
        for op in ops {
            match op {
                TableOp::Insert(f) => {
                    real.insert(f.clone());
                    model.insert(f);
                }
                TableOp::Resize(new_max) => {
                    // Stay under the SETTINGS ceiling like a real peer.
                    let new_max = new_max.min(real.capacity_limit());
                    real.resize(new_max);
                    model.resize(new_max);
                }
            }
            prop_assert!(real.size() <= real.max_size(), "capacity invariant");
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert_eq!(real.size(), model.size);
            for (i, want) in model.entries.iter().enumerate() {
                prop_assert_eq!(real.get(62 + i).unwrap(), want,
                    "FIFO order diverged at dynamic index {}", i);
            }
            prop_assert!(real.get(62 + model.entries.len()).is_none(),
                "table holds more entries than the model");
        }
    }

    /// RFC 7541 §4.4: an entry larger than the entire table empties it.
    #[test]
    fn oversized_insert_clears_the_table(
        capacity in 32usize..256,
        seed in arb_header()
    ) {
        let mut table = DynamicTable::with_capacity(capacity);
        table.insert(HeaderField::new("a", "b"));
        // name + value + 32 strictly above capacity.
        let oversized = HeaderField::new("x", "v".repeat(capacity));
        prop_assert!(oversized.size() > capacity);
        table.insert(oversized);
        prop_assert!(table.is_empty());
        prop_assert_eq!(table.size(), 0);
        // The table remains usable afterwards.
        if seed.size() <= capacity {
            table.insert(seed.clone());
            prop_assert_eq!(table.get(62).unwrap(), &seed);
        }
    }

    /// The encoder's huge-value rule (size > max/2 is sent without
    /// indexing) holds for arbitrary padding lengths: the table never
    /// grows, and the block still decodes exactly.
    #[test]
    fn huge_values_roundtrip_but_never_enter_the_table(
        pad in 2050usize..4000,
        name in "[a-z][a-z0-9-]{0,16}"
    ) {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let headers = vec![HeaderField::new(name, "q".repeat(pad))];
        let block = enc.encode(&headers);
        prop_assert_eq!(enc.table_size(), 0, "huge literal must not be indexed");
        prop_assert_eq!(&dec.decode(&block).unwrap(), &headers);
    }

    /// A table-size update travels in-band and both sides converge on
    /// the reduced capacity: after the update, neither table ever
    /// exceeds it, and round-trips keep working.
    #[test]
    fn size_updates_bound_both_tables(
        new_max in 0usize..512,
        blocks in prop::collection::vec(arb_block(), 1..4)
    ) {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        enc.set_max_table_size(new_max);
        for headers in &blocks {
            let block = enc.encode(headers);
            prop_assert_eq!(&dec.decode(&block).unwrap(), headers);
            prop_assert!(enc.table_size() <= new_max);
            prop_assert!(dec.table_size() <= new_max);
            prop_assert_eq!(enc.table_size(), dec.table_size());
        }
    }
}
