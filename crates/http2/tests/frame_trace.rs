//! Protocol-sequence tests using the connection's frame trace: assert the
//! exact frames a request/response exchange puts on the wire.

use bytes::Bytes;
use sww_http2::connection::{Connection, Direction};
use sww_http2::{GenAbility, Request, Response, Settings};
use tokio::io::duplex;

#[tokio::test]
async fn request_response_frame_sequence() {
    let (a, b) = duplex(1 << 20);
    tokio::spawn(async move {
        let mut conn = Connection::server_handshake(b, Settings::sww(GenAbility::full()))
            .await
            .unwrap();
        while let Ok(msg) = conn.next_message().await {
            let req = Request::from_fields(msg.fields).unwrap();
            let resp = Response::ok(Bytes::from(format!("hello {}", req.path)));
            let _ = conn
                .send_message(msg.stream_id, &resp.to_fields(), resp.body.clone())
                .await;
        }
    });

    let mut conn = Connection::client_handshake(a, Settings::sww(GenAbility::full()))
        .await
        .unwrap();
    conn.enable_trace();
    let req = Request::get("/traced");
    let id = conn.open_stream();
    conn.send_message(id, &req.to_fields(), req.body.clone())
        .await
        .unwrap();
    let msg = conn.next_message().await.unwrap();
    assert_eq!(msg.stream_id, id);

    let trace = conn.take_trace();
    let summary: Vec<(Direction, &str, u32)> = trace
        .iter()
        .map(|e| (e.direction, e.kind, e.stream_id))
        .collect();
    // Sent: HEADERS (request had no body → END_STREAM on HEADERS).
    assert!(
        summary.contains(&(Direction::Sent, "HEADERS", 1)),
        "{summary:?}"
    );
    // Received: response HEADERS then DATA on the same stream.
    let recv: Vec<&str> = summary
        .iter()
        .filter(|(d, _, sid)| *d == Direction::Received && *sid == 1)
        .map(|(_, k, _)| *k)
        .collect();
    assert_eq!(recv, ["HEADERS", "DATA"], "{summary:?}");
    // The peer's ACK of our handshake SETTINGS arrives after tracing
    // starts (the handshake itself predates enable_trace).
    assert!(
        summary
            .iter()
            .any(|(d, k, _)| *d == Direction::Received && *k == "SETTINGS_ACK"),
        "{summary:?}"
    );
    // Flow-control credit was returned for the received DATA.
    assert!(
        summary
            .iter()
            .any(|(d, k, _)| *d == Direction::Sent && *k == "WINDOW_UPDATE"),
        "{summary:?}"
    );
}

#[tokio::test]
async fn trace_off_by_default_and_drainable() {
    let (a, b) = duplex(1 << 20);
    tokio::spawn(async move {
        let mut conn = Connection::server_handshake(b, Settings::sww(GenAbility::none()))
            .await
            .unwrap();
        // Drive the connection so PINGs are acknowledged; next_message
        // only returns on a complete request or close.
        let _ = conn.next_message().await;
    });
    let mut conn = Connection::client_handshake(a, Settings::sww(GenAbility::none()))
        .await
        .unwrap();
    assert!(conn.take_trace().is_empty(), "tracing must be opt-in");
    conn.enable_trace();
    conn.ping().await.unwrap();
    let trace = conn.take_trace();
    assert!(trace.iter().any(|e| e.kind == "PING"));
    assert!(trace.iter().any(|e| e.kind == "PING_ACK"));
    // Draining resets the log.
    assert!(conn.take_trace().is_empty());
}
