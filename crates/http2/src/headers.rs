//! Request/response types and pseudo-header handling (RFC 9113 §8.3).

use crate::hpack::HeaderField;
use bytes::Bytes;

/// An ordered multimap of header fields (HTTP allows repeats).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeaderMap {
    fields: Vec<HeaderField>,
}

impl HeaderMap {
    /// An empty map.
    pub fn new() -> HeaderMap {
        HeaderMap::default()
    }

    /// Append a field. Names are lowercased per HTTP/2 §8.2.1.
    pub fn insert(&mut self, name: impl AsRef<str>, value: impl Into<String>) {
        self.fields.push(HeaderField::new(
            name.as_ref().to_ascii_lowercase(),
            value.into(),
        ));
    }

    /// First value for `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.fields
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.value.as_str())
    }

    /// All values for `name`.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        let name = name.to_ascii_lowercase();
        self.fields
            .iter()
            .filter(move |f| f.name == name)
            .map(|f| f.value.as_str())
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when no fields are present.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate all fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &HeaderField> {
        self.fields.iter()
    }

    /// The underlying field list (for HPACK encoding).
    pub fn as_fields(&self) -> &[HeaderField] {
        &self.fields
    }
}

impl FromIterator<HeaderField> for HeaderMap {
    fn from_iter<T: IntoIterator<Item = HeaderField>>(iter: T) -> Self {
        HeaderMap {
            fields: iter.into_iter().collect(),
        }
    }
}

/// An HTTP/2 request: pseudo-headers plus regular fields and a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `:method` pseudo-header.
    pub method: String,
    /// `:path` pseudo-header.
    pub path: String,
    /// `:scheme` pseudo-header.
    pub scheme: String,
    /// `:authority` pseudo-header.
    pub authority: String,
    /// Regular header fields.
    pub headers: HeaderMap,
    /// Request body.
    pub body: Bytes,
}

impl Request {
    /// A bodyless GET.
    pub fn get(path: impl Into<String>) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            scheme: "https".into(),
            authority: "sww.local".into(),
            headers: HeaderMap::new(),
            body: Bytes::new(),
        }
    }

    /// Flatten into the HPACK field list: pseudo-headers first (§8.3).
    pub fn to_fields(&self) -> Vec<HeaderField> {
        let mut fields = vec![
            HeaderField::new(":method", self.method.clone()),
            HeaderField::new(":scheme", self.scheme.clone()),
            HeaderField::new(":authority", self.authority.clone()),
            HeaderField::new(":path", self.path.clone()),
        ];
        fields.extend(self.headers.iter().cloned());
        fields
    }

    /// Rebuild from a decoded field list, validating pseudo-header rules:
    /// mandatory `:method`/`:scheme`/`:path`, no pseudo-header after a
    /// regular field, no unknown or response pseudo-headers.
    pub fn from_fields(fields: Vec<HeaderField>) -> Result<Request, crate::error::H2Error> {
        let mut req = Request {
            method: String::new(),
            path: String::new(),
            scheme: String::new(),
            authority: String::new(),
            headers: HeaderMap::new(),
            body: Bytes::new(),
        };
        let mut seen_regular = false;
        for f in fields {
            if let Some(pseudo) = f.name.strip_prefix(':') {
                if seen_regular {
                    return Err(crate::error::H2Error::protocol(
                        "pseudo-header after regular field",
                    ));
                }
                match pseudo {
                    "method" => req.method = f.value,
                    "path" => req.path = f.value,
                    "scheme" => req.scheme = f.value,
                    "authority" => req.authority = f.value,
                    _ => {
                        return Err(crate::error::H2Error::protocol(format!(
                            "unknown request pseudo-header :{pseudo}"
                        )))
                    }
                }
            } else {
                seen_regular = true;
                req.headers.insert(f.name, f.value);
            }
        }
        if req.method.is_empty() || req.path.is_empty() || req.scheme.is_empty() {
            return Err(crate::error::H2Error::protocol(
                "missing mandatory request pseudo-header",
            ));
        }
        Ok(req)
    }
}

/// An HTTP/2 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// `:status` pseudo-header.
    pub status: u16,
    /// Regular header fields.
    pub headers: HeaderMap,
    /// Response body.
    pub body: Bytes,
}

impl Response {
    /// A 200 response with the given body.
    pub fn ok(body: impl Into<Bytes>) -> Response {
        Response {
            status: 200,
            headers: HeaderMap::new(),
            body: body.into(),
        }
    }

    /// A bodyless response with the given status.
    pub fn status(status: u16) -> Response {
        Response {
            status,
            headers: HeaderMap::new(),
            body: Bytes::new(),
        }
    }

    /// Flatten into the HPACK field list.
    pub fn to_fields(&self) -> Vec<HeaderField> {
        let mut fields = vec![HeaderField::new(":status", self.status.to_string())];
        fields.extend(self.headers.iter().cloned());
        fields
    }

    /// Rebuild from a decoded field list.
    pub fn from_fields(fields: Vec<HeaderField>) -> Result<Response, crate::error::H2Error> {
        let mut resp = Response::status(0);
        let mut seen_regular = false;
        for f in fields {
            if let Some(pseudo) = f.name.strip_prefix(':') {
                if seen_regular {
                    return Err(crate::error::H2Error::protocol(
                        "pseudo-header after regular field",
                    ));
                }
                if pseudo == "status" {
                    resp.status = f
                        .value
                        .parse()
                        .map_err(|_| crate::error::H2Error::protocol("bad :status"))?;
                } else {
                    return Err(crate::error::H2Error::protocol(format!(
                        "unknown response pseudo-header :{pseudo}"
                    )));
                }
            } else {
                seen_regular = true;
                resp.headers.insert(f.name, f.value);
            }
        }
        if resp.status == 0 {
            return Err(crate::error::H2Error::protocol("missing :status"));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_map_case_insensitive() {
        let mut h = HeaderMap::new();
        h.insert("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
    }

    #[test]
    fn multi_value_headers() {
        let mut h = HeaderMap::new();
        h.insert("set-cookie", "a=1");
        h.insert("set-cookie", "b=2");
        let all: Vec<_> = h.get_all("set-cookie").collect();
        assert_eq!(all, ["a=1", "b=2"]);
        assert_eq!(h.get("set-cookie"), Some("a=1"));
    }

    #[test]
    fn request_field_roundtrip() {
        let mut req = Request::get("/wiki?q=landscape");
        req.headers.insert("accept", "text/html");
        let back = Request::from_fields(req.to_fields()).unwrap();
        assert_eq!(back.method, "GET");
        assert_eq!(back.path, "/wiki?q=landscape");
        assert_eq!(back.headers.get("accept"), Some("text/html"));
    }

    #[test]
    fn response_field_roundtrip() {
        let mut resp = Response::ok(Bytes::from_static(b"<html/>"));
        resp.headers.insert("content-type", "text/html");
        let mut back = Response::from_fields(resp.to_fields()).unwrap();
        back.body = resp.body.clone();
        assert_eq!(back, resp);
    }

    #[test]
    fn pseudo_header_order_enforced() {
        let fields = vec![
            HeaderField::new("accept", "*/*"),
            HeaderField::new(":method", "GET"),
        ];
        assert!(Request::from_fields(fields).is_err());
    }

    #[test]
    fn missing_mandatory_pseudo_rejected() {
        let fields = vec![HeaderField::new(":method", "GET")];
        assert!(Request::from_fields(fields).is_err());
        assert!(Response::from_fields(vec![]).is_err());
    }

    #[test]
    fn unknown_pseudo_rejected() {
        let fields = vec![HeaderField::new(":proto", "x")];
        assert!(Request::from_fields(fields).is_err());
        assert!(Response::from_fields(vec![HeaderField::new(":method", "GET")]).is_err());
    }
}
