//! HTTP/2 client connection.

use crate::connection::Connection;
use crate::error::H2Error;
use crate::headers::{Request, Response};
use crate::settings::{GenAbility, Settings};
use tokio::io::{AsyncRead, AsyncWrite};

/// A client endpoint: performs the preface + SETTINGS handshake (including
/// the paper's GEN_ABILITY advertisement) and issues requests.
#[derive(Debug)]
pub struct ClientConnection<T> {
    conn: Connection<T>,
}

impl<T: AsyncRead + AsyncWrite + Unpin> ClientConnection<T> {
    /// Connect over an established byte stream, advertising `ability`.
    pub async fn handshake(io: T, ability: GenAbility) -> Result<ClientConnection<T>, H2Error> {
        let conn = Connection::client_handshake(io, Settings::sww(ability)).await?;
        Ok(ClientConnection { conn })
    }

    /// Connect with fully custom settings.
    pub async fn handshake_with_settings(
        io: T,
        settings: Settings,
    ) -> Result<ClientConnection<T>, H2Error> {
        let conn = Connection::client_handshake(io, settings).await?;
        Ok(ClientConnection { conn })
    }

    /// The generative ability the server advertised.
    pub fn server_ability(&self) -> GenAbility {
        self.conn.peer_ability()
    }

    /// The capability both ends share; generation is used only when this
    /// reports support (paper §3).
    pub fn negotiated_ability(&self) -> GenAbility {
        self.conn.negotiated_ability()
    }

    /// Issue a request and await the complete response.
    pub async fn send_request(&mut self, req: &Request) -> Result<Response, H2Error> {
        let stream_id = self.conn.open_stream();
        self.conn
            .send_message(stream_id, &req.to_fields(), req.body.clone())
            .await?;
        loop {
            let msg = self.conn.next_message().await?;
            if msg.stream_id == stream_id {
                let mut resp = Response::from_fields(msg.fields)?;
                resp.body = msg.body;
                return Ok(resp);
            }
            // A response for a different (pipelined) stream: not expected in
            // the sequential API; drop it.
        }
    }

    /// Issue several requests on separate streams before reading any
    /// response (HTTP/2 multiplexing), then collect responses in request
    /// order. Respects the server's SETTINGS_MAX_CONCURRENT_STREAMS by
    /// issuing in windows of at most that many in-flight streams.
    pub async fn send_pipelined(&mut self, reqs: &[Request]) -> Result<Vec<Response>, H2Error> {
        let window = self
            .conn
            .remote
            .max_concurrent_streams
            .map(|m| m.max(1) as usize)
            .unwrap_or(usize::MAX);
        let mut by_id = std::collections::HashMap::new();
        let mut ids = Vec::with_capacity(reqs.len());
        let mut next = 0usize;
        while by_id.len() < reqs.len() {
            // Fill the window.
            while next < reqs.len() && (next - by_id.len()) < window {
                let id = self.conn.open_stream();
                self.conn
                    .send_message(id, &reqs[next].to_fields(), reqs[next].body.clone())
                    .await?;
                ids.push(id);
                next += 1;
            }
            let msg = self.conn.next_message().await?;
            let mut resp = Response::from_fields(msg.fields)?;
            resp.body = msg.body;
            by_id.insert(msg.stream_id, resp);
        }
        Ok(ids
            .iter()
            .map(|id| by_id.remove(id).expect("collected all ids"))
            .collect())
    }

    /// Update the advertised generative ability mid-connection (e.g. a
    /// laptop entering battery-saver mode withdraws generation). The
    /// server applies the new SETTINGS to all subsequent responses.
    pub async fn update_ability(&mut self, ability: GenAbility) -> Result<(), H2Error> {
        self.conn.announce_ability(ability).await
    }

    /// Liveness check.
    pub async fn ping(&mut self) -> Result<(), H2Error> {
        self.conn.ping().await
    }

    /// Graceful GOAWAY.
    pub async fn close(&mut self) -> Result<(), H2Error> {
        self.conn.close().await
    }

    /// Total octets written to the socket (frames + payload), for the
    /// paper's data-reduction accounting.
    pub fn bytes_sent(&self) -> u64 {
        self.conn.bytes_sent
    }

    /// Total DATA payload octets received.
    pub fn bytes_received(&self) -> u64 {
        self.conn.bytes_received
    }
}
