//! Stream states (RFC 9113 §5.1) and flow-control windows (§5.2).

use crate::error::{ErrorCode, H2Error};

/// The RFC 9113 §5.1 stream state machine.
///
/// ```text
///                 +--------+
///             .---|  idle  |---.
///  send/recv H|   +--------+   |send/recv H (+ES)
///             v                v
///         +--------+      half-closed
///         |  open  |----> (local/remote)
///         +--------+           |
///             |                v
///             '---------> +--------+
///        send/recv RST    | closed |
///                         +--------+
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamState {
    /// No frames exchanged yet.
    Idle,
    /// Both directions open.
    Open,
    /// We sent END_STREAM; peer may still send.
    HalfClosedLocal,
    /// Peer sent END_STREAM; we may still send.
    HalfClosedRemote,
    /// Terminal state.
    Closed,
}

impl StreamState {
    /// Apply "we sent HEADERS" (optionally ending the stream).
    pub fn on_send_headers(self, end_stream: bool) -> Result<StreamState, H2Error> {
        use StreamState::*;
        Ok(match (self, end_stream) {
            (Idle, false) => Open,
            (Idle, true) => HalfClosedLocal,
            // Trailers on an open stream.
            (Open, true) => HalfClosedLocal,
            (Open, false) => Open,
            (HalfClosedRemote, true) => Closed,
            (HalfClosedRemote, false) => HalfClosedRemote,
            (s, _) => {
                return Err(H2Error::protocol(format!("cannot send HEADERS in {s:?}")));
            }
        })
    }

    /// Apply "we received HEADERS".
    pub fn on_recv_headers(self, end_stream: bool) -> Result<StreamState, H2Error> {
        use StreamState::*;
        Ok(match (self, end_stream) {
            (Idle, false) => Open,
            (Idle, true) => HalfClosedRemote,
            (Open, true) => HalfClosedRemote,
            (Open, false) => Open,
            (HalfClosedLocal, true) => Closed,
            (HalfClosedLocal, false) => HalfClosedLocal,
            (s, _) => {
                return Err(H2Error::protocol(format!("HEADERS received in {s:?}")));
            }
        })
    }

    /// Apply "we sent DATA".
    pub fn on_send_data(self, end_stream: bool) -> Result<StreamState, H2Error> {
        use StreamState::*;
        Ok(match (self, end_stream) {
            (Open, false) => Open,
            (Open, true) => HalfClosedLocal,
            (HalfClosedRemote, false) => HalfClosedRemote,
            (HalfClosedRemote, true) => Closed,
            (s, _) => {
                return Err(H2Error::protocol(format!("cannot send DATA in {s:?}")));
            }
        })
    }

    /// Apply "we received DATA". A frame on a closed/idle stream is a
    /// STREAM_CLOSED / PROTOCOL_ERROR condition (§5.1).
    pub fn on_recv_data(self, stream_id: u32, end_stream: bool) -> Result<StreamState, H2Error> {
        use StreamState::*;
        Ok(match (self, end_stream) {
            (Open, false) => Open,
            (Open, true) => HalfClosedRemote,
            (HalfClosedLocal, false) => HalfClosedLocal,
            (HalfClosedLocal, true) => Closed,
            (Idle, _) => return Err(H2Error::protocol("DATA on idle stream")),
            (Closed | HalfClosedRemote, _) => {
                return Err(H2Error::Stream(
                    stream_id,
                    ErrorCode::StreamClosed,
                    "DATA on closed stream".into(),
                ));
            }
        })
    }

    /// RST_STREAM (either direction) closes the stream immediately.
    pub fn on_reset(self) -> StreamState {
        StreamState::Closed
    }

    /// Whether the stream is finished in both directions.
    pub fn is_closed(self) -> bool {
        matches!(self, StreamState::Closed)
    }
}

/// A flow-control window (connection- or stream-scoped). Window sizes are
/// signed: SETTINGS_INITIAL_WINDOW_SIZE changes can push them negative
/// (RFC 9113 §6.9.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowWindow {
    available: i64,
}

/// Maximum window size, 2^31 - 1.
pub const MAX_WINDOW: i64 = 0x7fff_ffff;

impl FlowWindow {
    /// A window with `initial` octets of credit.
    pub fn new(initial: u32) -> FlowWindow {
        FlowWindow {
            available: i64::from(initial),
        }
    }

    /// Octets currently sendable (0 when the window is negative).
    pub fn available(&self) -> usize {
        self.available.max(0) as usize
    }

    /// Consume credit for octets we are sending/receiving.
    pub fn consume(&mut self, n: usize) -> Result<(), H2Error> {
        let n = n as i64;
        if n > self.available {
            return Err(H2Error::Connection(
                ErrorCode::FlowControl,
                "flow-control window exceeded".into(),
            ));
        }
        self.available -= n;
        Ok(())
    }

    /// Add credit from a WINDOW_UPDATE. Overflow past 2^31-1 is a
    /// FLOW_CONTROL_ERROR (§6.9.1).
    pub fn grant(&mut self, n: u32) -> Result<(), H2Error> {
        self.available += i64::from(n);
        if self.available > MAX_WINDOW {
            return Err(H2Error::Connection(
                ErrorCode::FlowControl,
                "window overflow".into(),
            ));
        }
        Ok(())
    }

    /// Apply a SETTINGS_INITIAL_WINDOW_SIZE delta (§6.9.2); may go negative.
    pub fn adjust(&mut self, delta: i64) -> Result<(), H2Error> {
        self.available += delta;
        if self.available > MAX_WINDOW {
            return Err(H2Error::Connection(
                ErrorCode::FlowControl,
                "window overflow after settings change".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_request_response() {
        // Client view: send request with END_STREAM, receive response.
        let s = StreamState::Idle;
        let s = s.on_send_headers(true).unwrap();
        assert_eq!(s, StreamState::HalfClosedLocal);
        let s = s.on_recv_headers(false).unwrap();
        assert_eq!(s, StreamState::HalfClosedLocal);
        let s = s.on_recv_data(1, true).unwrap();
        assert!(s.is_closed());
    }

    #[test]
    fn server_view() {
        let s = StreamState::Idle;
        let s = s.on_recv_headers(true).unwrap();
        assert_eq!(s, StreamState::HalfClosedRemote);
        let s = s.on_send_headers(false).unwrap();
        let s = s.on_send_data(true).unwrap();
        assert!(s.is_closed());
    }

    #[test]
    fn data_on_idle_is_protocol_error() {
        assert!(matches!(
            StreamState::Idle.on_recv_data(1, false),
            Err(H2Error::Connection(ErrorCode::Protocol, _))
        ));
    }

    #[test]
    fn data_on_closed_is_stream_error() {
        assert!(matches!(
            StreamState::Closed.on_recv_data(5, false),
            Err(H2Error::Stream(5, ErrorCode::StreamClosed, _))
        ));
    }

    #[test]
    fn reset_from_any_state() {
        for s in [
            StreamState::Idle,
            StreamState::Open,
            StreamState::HalfClosedLocal,
            StreamState::HalfClosedRemote,
            StreamState::Closed,
        ] {
            assert!(s.on_reset().is_closed());
        }
    }

    #[test]
    fn window_consume_and_grant() {
        let mut w = FlowWindow::new(10);
        w.consume(4).unwrap();
        assert_eq!(w.available(), 6);
        assert!(w.consume(7).is_err());
        w.grant(5).unwrap();
        assert_eq!(w.available(), 11);
    }

    #[test]
    fn window_overflow_rejected() {
        let mut w = FlowWindow::new(u32::MAX >> 1);
        assert!(w.grant(10).is_err());
    }

    #[test]
    fn settings_adjust_can_go_negative() {
        let mut w = FlowWindow::new(100);
        w.consume(100).unwrap();
        w.adjust(-50).unwrap();
        assert_eq!(w.available(), 0);
        w.grant(60).unwrap();
        assert_eq!(w.available(), 10);
    }
}
