//! HTTP/2 error codes (RFC 9113 §7) and the crate error type.

use std::fmt;

/// RFC 9113 §7 error codes, carried by RST_STREAM and GOAWAY frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ErrorCode {
    /// Graceful shutdown / no error.
    NoError = 0x0,
    /// Protocol error detected.
    Protocol = 0x1,
    /// Implementation fault.
    Internal = 0x2,
    /// Flow-control limits exceeded.
    FlowControl = 0x3,
    /// Settings not acknowledged in time.
    SettingsTimeout = 0x4,
    /// Frame received for a closed stream.
    StreamClosed = 0x5,
    /// Frame size incorrect.
    FrameSize = 0x6,
    /// Stream not processed.
    RefusedStream = 0x7,
    /// Stream cancelled.
    Cancel = 0x8,
    /// Compression state not updated.
    Compression = 0x9,
    /// TCP connection error for CONNECT.
    Connect = 0xa,
    /// Processing capacity exceeded.
    EnhanceYourCalm = 0xb,
    /// Negotiated TLS parameters not acceptable.
    InadequateSecurity = 0xc,
    /// Use HTTP/1.1 for the request.
    Http11Required = 0xd,
}

impl ErrorCode {
    /// Decode a wire value. Unknown codes map to `Internal` per RFC 9113 §7
    /// ("implementations MUST NOT trigger special behaviour" — we treat them
    /// as any connection error of our own making).
    pub fn from_u32(v: u32) -> ErrorCode {
        use ErrorCode::*;
        match v {
            0x0 => NoError,
            0x1 => Protocol,
            0x2 => Internal,
            0x3 => FlowControl,
            0x4 => SettingsTimeout,
            0x5 => StreamClosed,
            0x6 => FrameSize,
            0x7 => RefusedStream,
            0x8 => Cancel,
            0x9 => Compression,
            0xa => Connect,
            0xb => EnhanceYourCalm,
            0xc => InadequateSecurity,
            0xd => Http11Required,
            _ => Internal,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}(0x{:x})", *self as u32)
    }
}

/// Errors surfaced by the HTTP/2 layer.
#[derive(Debug)]
pub enum H2Error {
    /// A connection-level protocol error; the connection must be torn down
    /// with a GOAWAY carrying this code (RFC 9113 §5.4.1).
    Connection(ErrorCode, String),
    /// A stream-level error; only the stream is reset (RFC 9113 §5.4.2).
    Stream(u32, ErrorCode, String),
    /// The peer sent GOAWAY and the connection is closing.
    GoAway(ErrorCode, String),
    /// Underlying socket error.
    Io(std::io::Error),
    /// The peer closed the connection cleanly.
    Closed,
}

impl H2Error {
    /// Convenience constructor for connection-level PROTOCOL_ERROR.
    pub fn protocol(msg: impl Into<String>) -> H2Error {
        H2Error::Connection(ErrorCode::Protocol, msg.into())
    }

    /// Convenience constructor for connection-level FRAME_SIZE_ERROR.
    pub fn frame_size(msg: impl Into<String>) -> H2Error {
        H2Error::Connection(ErrorCode::FrameSize, msg.into())
    }

    /// Convenience constructor for connection-level COMPRESSION_ERROR.
    pub fn compression(msg: impl Into<String>) -> H2Error {
        H2Error::Connection(ErrorCode::Compression, msg.into())
    }

    /// The error code this error maps onto the wire.
    pub fn code(&self) -> ErrorCode {
        match self {
            H2Error::Connection(c, _) | H2Error::Stream(_, c, _) | H2Error::GoAway(c, _) => *c,
            H2Error::Io(_) => ErrorCode::Internal,
            H2Error::Closed => ErrorCode::NoError,
        }
    }
}

impl fmt::Display for H2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H2Error::Connection(code, msg) => write!(f, "connection error {code}: {msg}"),
            H2Error::Stream(id, code, msg) => write!(f, "stream {id} error {code}: {msg}"),
            H2Error::GoAway(code, msg) => write!(f, "peer sent GOAWAY {code}: {msg}"),
            H2Error::Io(e) => write!(f, "io error: {e}"),
            H2Error::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for H2Error {}

impl From<std::io::Error> for H2Error {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            H2Error::Closed
        } else {
            H2Error::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_code_roundtrip() {
        for v in 0u32..=0xd {
            assert_eq!(ErrorCode::from_u32(v) as u32, v);
        }
    }

    #[test]
    fn unknown_code_maps_to_internal() {
        assert_eq!(ErrorCode::from_u32(0xff), ErrorCode::Internal);
    }

    #[test]
    fn eof_becomes_closed() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(H2Error::from(io), H2Error::Closed));
    }
}
