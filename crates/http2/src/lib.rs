#![warn(missing_docs)]

//! HTTP/2 (RFC 9113 subset) with the SWW `SETTINGS_GEN_ABILITY` extension.
//!
//! This crate implements the networking substrate of the paper's prototype
//! from scratch:
//!
//! * binary framing for all ten RFC 9113 frame types,
//! * HPACK header compression (RFC 7541 integer coding, static + dynamic
//!   tables, Huffman string coding),
//! * connection and stream state machines with flow control,
//! * async client/server connections on tokio,
//! * the paper's §3 modification: a new SETTINGS parameter,
//!   [`settings::SETTINGS_GEN_ABILITY`] (identifier `0x07`), advertising a
//!   peer's client-side content-generation capability. Per RFC 9113 §6.5.2 a
//!   recipient ignores unknown settings, so non-participating peers interop
//!   untouched — the property the paper's §6.2 functionality matrix tests.
//!
//! The API is deliberately small: [`server::serve_connection`] drives a
//! handler over an accepted socket, [`client::ClientConnection`] performs
//! the handshake and issues requests. Both expose the negotiated generative
//! ability after the SETTINGS exchange.

pub mod client;
pub mod connection;
pub mod error;
pub mod frame;
pub mod headers;
pub mod hpack;
pub mod server;
pub mod settings;
pub mod stream;

pub use client::ClientConnection;
pub use error::{ErrorCode, H2Error};
pub use headers::{HeaderMap, Request, Response};
pub use settings::{GenAbility, Settings, SETTINGS_GEN_ABILITY};

/// The fixed client connection preface (RFC 9113 §3.4).
pub const PREFACE: &[u8] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";
