//! HTTP/2 server connection driver.

use crate::connection::Connection;
use crate::error::{ErrorCode, H2Error};
use crate::headers::{Request, Response};
use crate::settings::{GenAbility, Settings};
use tokio::io::{AsyncRead, AsyncWrite};

/// Context handed to the request handler alongside each request.
#[derive(Debug, Clone, Copy)]
pub struct ServeContext {
    /// Capability the client advertised in its SETTINGS.
    pub client_ability: GenAbility,
    /// Capability shared by both peers after negotiation.
    pub negotiated: GenAbility,
}

/// Serve one accepted connection with `handler` until the peer closes or
/// errors. The handler sees the negotiated generative ability so it can
/// decide between prompt-form and traditional content (paper §5.1: "If the
/// client's generative ability is confirmed, the server can serve the
/// content in its generative form").
pub async fn serve_connection<T, H>(
    io: T,
    ability: GenAbility,
    handler: H,
) -> Result<ServeStats, H2Error>
where
    T: AsyncRead + AsyncWrite + Unpin,
    H: FnMut(Request, ServeContext) -> Response,
{
    serve_connection_until(io, ability, handler, || false).await
}

/// [`serve_connection`] with a graceful-shutdown predicate: after each
/// delivered response (and before blocking for the next request),
/// `should_close` is consulted; once it returns `true` the connection
/// sends GOAWAY(NO_ERROR) and stops. In-flight request/response pairs
/// are never cut — the check sits between exchanges, so a draining
/// server finishes the answer it owes before saying goodbye.
pub async fn serve_connection_until<T, H, P>(
    io: T,
    ability: GenAbility,
    mut handler: H,
    should_close: P,
) -> Result<ServeStats, H2Error>
where
    T: AsyncRead + AsyncWrite + Unpin,
    H: FnMut(Request, ServeContext) -> Response,
    P: Fn() -> bool,
{
    let mut conn = Connection::server_handshake(io, Settings::sww(ability)).await?;
    let mut stats = ServeStats::default();
    loop {
        if should_close() {
            conn.close().await?;
            break;
        }
        let msg = match conn.next_message().await {
            Ok(m) => m,
            Err(H2Error::Closed) => break,
            Err(e) => return Err(e),
        };
        // Recomputed per request: RFC 9113 §6.5 makes SETTINGS take effect
        // connection-wide as soon as they are processed, so a peer may
        // upgrade or withdraw GEN_ABILITY mid-connection.
        let ctx = ServeContext {
            client_ability: conn.peer_ability(),
            negotiated: conn.negotiated_ability(),
        };
        let stream_id = msg.stream_id;
        let req = match Request::from_fields(msg.fields) {
            Ok(mut r) => {
                r.body = msg.body;
                r
            }
            Err(_) => {
                conn.reset_stream(stream_id, ErrorCode::Protocol).await?;
                continue;
            }
        };
        stats.requests += 1;
        let resp = handler(req, ctx);
        conn.send_message(stream_id, &resp.to_fields(), resp.body.clone())
            .await?;
        stats.responses += 1;
    }
    stats.bytes_sent = conn.bytes_sent;
    stats.bytes_received = conn.bytes_received;
    Ok(stats)
}

/// Counters describing one served connection.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests parsed.
    pub requests: u64,
    /// Responses delivered.
    pub responses: u64,
    /// Octets written to the socket.
    pub bytes_sent: u64,
    /// DATA payload octets read.
    pub bytes_received: u64,
}
