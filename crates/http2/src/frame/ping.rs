//! PING frames (RFC 9113 §6.7).

use super::{flags, FrameHeader, FrameType};
use crate::error::H2Error;
use bytes::{Bytes, BytesMut};

/// A PING frame: 8 opaque octets, optionally an ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PingFrame {
    /// Opaque payload echoed back by the peer.
    pub payload: [u8; 8],
    /// ACK flag.
    pub ack: bool,
}

impl PingFrame {
    /// A new ping carrying `payload`.
    pub fn new(payload: [u8; 8]) -> PingFrame {
        PingFrame {
            payload,
            ack: false,
        }
    }

    /// The acknowledgement for this ping.
    pub fn to_ack(self) -> PingFrame {
        PingFrame {
            payload: self.payload,
            ack: true,
        }
    }

    pub(crate) fn parse(header: FrameHeader, payload: Bytes) -> Result<PingFrame, H2Error> {
        if header.stream_id != 0 {
            return Err(H2Error::protocol("PING on non-zero stream"));
        }
        if payload.len() != 8 {
            return Err(H2Error::frame_size("PING payload must be 8 octets"));
        }
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&payload);
        Ok(PingFrame {
            payload: buf,
            ack: header.flags & flags::ACK != 0,
        })
    }

    pub(crate) fn encode(&self, out: &mut BytesMut) {
        FrameHeader {
            length: 8,
            kind: FrameType::Ping as u8,
            flags: if self.ack { flags::ACK } else { 0 },
            stream_id: 0,
        }
        .encode(out);
        out.extend_from_slice(&self.payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FRAME_HEADER_LEN};

    #[test]
    fn ping_roundtrip() {
        let f = PingFrame::new(*b"sww-ping");
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let h = FrameHeader::parse(buf[..FRAME_HEADER_LEN].try_into().unwrap());
        let parsed = Frame::parse(h, Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..])).unwrap();
        assert_eq!(parsed, Frame::Ping(f));
    }

    #[test]
    fn ack_echoes_payload() {
        let f = PingFrame::new([1, 2, 3, 4, 5, 6, 7, 8]);
        let ack = f.to_ack();
        assert!(ack.ack);
        assert_eq!(ack.payload, f.payload);
    }

    #[test]
    fn wrong_length_rejected() {
        let h = FrameHeader {
            length: 4,
            kind: FrameType::Ping as u8,
            flags: 0,
            stream_id: 0,
        };
        assert!(PingFrame::parse(h, Bytes::from_static(&[0; 4])).is_err());
    }
}
