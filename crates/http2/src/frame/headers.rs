//! HEADERS and CONTINUATION frames (RFC 9113 §6.2, §6.10).

use super::{flags, strip_padding, FrameHeader, FrameType};
use crate::error::H2Error;
use bytes::{BufMut, Bytes, BytesMut};

/// The optional priority block inside a HEADERS frame with the PRIORITY
/// flag (RFC 9113 §6.2). Deprecated by the RFC but still on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityBlock {
    /// Whether the dependency is exclusive.
    pub exclusive: bool,
    /// Stream this one depends on.
    pub depends_on: u32,
    /// Weight 1..=256 (wire value + 1).
    pub weight: u16,
}

/// A HEADERS frame carrying an HPACK-encoded header block fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadersFrame {
    /// Stream being opened or continued (never 0).
    pub stream_id: u32,
    /// HPACK header block fragment.
    pub fragment: Bytes,
    /// END_STREAM flag.
    pub end_stream: bool,
    /// END_HEADERS flag; when false, CONTINUATION frames follow.
    pub end_headers: bool,
    /// Optional priority block.
    pub priority: Option<PriorityBlock>,
}

impl HeadersFrame {
    /// A complete header block on one frame.
    pub fn new(stream_id: u32, fragment: impl Into<Bytes>, end_stream: bool) -> Self {
        HeadersFrame {
            stream_id,
            fragment: fragment.into(),
            end_stream,
            end_headers: true,
            priority: None,
        }
    }

    pub(crate) fn parse(header: FrameHeader, payload: Bytes) -> Result<HeadersFrame, H2Error> {
        if header.stream_id == 0 {
            return Err(H2Error::protocol("HEADERS on stream 0"));
        }
        let mut body = if header.flags & flags::PADDED != 0 {
            strip_padding(payload)?
        } else {
            payload
        };
        let priority = if header.flags & flags::PRIORITY != 0 {
            if body.len() < 5 {
                return Err(H2Error::frame_size("HEADERS priority block truncated"));
            }
            let raw = u32::from_be_bytes([body[0], body[1], body[2], body[3]]);
            let weight = u16::from(body[4]) + 1;
            let block = PriorityBlock {
                exclusive: raw & 0x8000_0000 != 0,
                depends_on: raw & 0x7fff_ffff,
                weight,
            };
            body = body.slice(5..);
            Some(block)
        } else {
            None
        };
        Ok(HeadersFrame {
            stream_id: header.stream_id,
            fragment: body,
            end_stream: header.flags & flags::END_STREAM != 0,
            end_headers: header.flags & flags::END_HEADERS != 0,
            priority,
        })
    }

    pub(crate) fn encode(&self, out: &mut BytesMut) {
        let mut f = 0;
        if self.end_stream {
            f |= flags::END_STREAM;
        }
        if self.end_headers {
            f |= flags::END_HEADERS;
        }
        let prio_len = if self.priority.is_some() { 5 } else { 0 };
        if self.priority.is_some() {
            f |= flags::PRIORITY;
        }
        FrameHeader {
            length: (self.fragment.len() + prio_len) as u32,
            kind: FrameType::Headers as u8,
            flags: f,
            stream_id: self.stream_id,
        }
        .encode(out);
        if let Some(p) = self.priority {
            let mut raw = p.depends_on & 0x7fff_ffff;
            if p.exclusive {
                raw |= 0x8000_0000;
            }
            out.put_u32(raw);
            out.put_u8((p.weight.clamp(1, 256) - 1) as u8);
        }
        out.extend_from_slice(&self.fragment);
    }
}

/// A CONTINUATION frame extending a header block (RFC 9113 §6.10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContinuationFrame {
    /// Stream whose header block continues.
    pub stream_id: u32,
    /// Next header block fragment.
    pub fragment: Bytes,
    /// END_HEADERS flag.
    pub end_headers: bool,
}

impl ContinuationFrame {
    pub(crate) fn parse(header: FrameHeader, payload: Bytes) -> Result<ContinuationFrame, H2Error> {
        if header.stream_id == 0 {
            return Err(H2Error::protocol("CONTINUATION on stream 0"));
        }
        Ok(ContinuationFrame {
            stream_id: header.stream_id,
            fragment: payload,
            end_headers: header.flags & flags::END_HEADERS != 0,
        })
    }

    pub(crate) fn encode(&self, out: &mut BytesMut) {
        let f = if self.end_headers {
            flags::END_HEADERS
        } else {
            0
        };
        FrameHeader {
            length: self.fragment.len() as u32,
            kind: FrameType::Continuation as u8,
            flags: f,
            stream_id: self.stream_id,
        }
        .encode(out);
        out.extend_from_slice(&self.fragment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FRAME_HEADER_LEN};

    fn roundtrip_frame(buf: &BytesMut) -> Frame {
        let h = FrameHeader::parse(buf[..FRAME_HEADER_LEN].try_into().unwrap());
        Frame::parse(h, Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..])).unwrap()
    }

    #[test]
    fn headers_roundtrip() {
        let f = HeadersFrame::new(1, Bytes::from_static(&[0x82, 0x86]), false);
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        assert_eq!(roundtrip_frame(&buf), Frame::Headers(f));
    }

    #[test]
    fn headers_with_priority_roundtrip() {
        let f = HeadersFrame {
            stream_id: 5,
            fragment: Bytes::from_static(b"frag"),
            end_stream: true,
            end_headers: true,
            priority: Some(PriorityBlock {
                exclusive: true,
                depends_on: 3,
                weight: 200,
            }),
        };
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        assert_eq!(roundtrip_frame(&buf), Frame::Headers(f));
    }

    #[test]
    fn continuation_roundtrip() {
        let f = ContinuationFrame {
            stream_id: 9,
            fragment: Bytes::from_static(b"more"),
            end_headers: true,
        };
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        assert_eq!(roundtrip_frame(&buf), Frame::Continuation(f));
    }

    #[test]
    fn truncated_priority_rejected() {
        let h = FrameHeader {
            length: 3,
            kind: FrameType::Headers as u8,
            flags: flags::PRIORITY,
            stream_id: 1,
        };
        assert!(HeadersFrame::parse(h, Bytes::from_static(&[0, 0, 0])).is_err());
    }
}
