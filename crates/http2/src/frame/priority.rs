//! PRIORITY frames (RFC 9113 §6.3). Deprecated by the RFC; parsed and
//! ignored by the connection layer, like real-world stacks do.

use super::{headers::PriorityBlock, FrameHeader, FrameType};
use crate::error::H2Error;
use bytes::{BufMut, Bytes, BytesMut};

/// A standalone PRIORITY frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityFrame {
    /// Stream being (re)prioritised.
    pub stream_id: u32,
    /// The dependency/weight block.
    pub block: PriorityBlock,
}

impl PriorityFrame {
    pub(crate) fn parse(header: FrameHeader, payload: Bytes) -> Result<PriorityFrame, H2Error> {
        if header.stream_id == 0 {
            return Err(H2Error::protocol("PRIORITY on stream 0"));
        }
        if payload.len() != 5 {
            // §6.3: wrong size is a *stream* error, surfaced as such so the
            // connection can RST just the stream.
            return Err(H2Error::Stream(
                header.stream_id,
                crate::error::ErrorCode::FrameSize,
                "PRIORITY payload must be 5 octets".into(),
            ));
        }
        let raw = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
        Ok(PriorityFrame {
            stream_id: header.stream_id,
            block: PriorityBlock {
                exclusive: raw & 0x8000_0000 != 0,
                depends_on: raw & 0x7fff_ffff,
                weight: u16::from(payload[4]) + 1,
            },
        })
    }

    pub(crate) fn encode(&self, out: &mut BytesMut) {
        FrameHeader {
            length: 5,
            kind: FrameType::Priority as u8,
            flags: 0,
            stream_id: self.stream_id,
        }
        .encode(out);
        let mut raw = self.block.depends_on & 0x7fff_ffff;
        if self.block.exclusive {
            raw |= 0x8000_0000;
        }
        out.put_u32(raw);
        out.put_u8((self.block.weight.clamp(1, 256) - 1) as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FRAME_HEADER_LEN};

    #[test]
    fn priority_roundtrip() {
        let f = PriorityFrame {
            stream_id: 3,
            block: PriorityBlock {
                exclusive: false,
                depends_on: 1,
                weight: 16,
            },
        };
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let h = FrameHeader::parse(buf[..FRAME_HEADER_LEN].try_into().unwrap());
        let parsed = Frame::parse(h, Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..])).unwrap();
        assert_eq!(parsed, Frame::Priority(f));
    }

    #[test]
    fn wrong_size_is_stream_error() {
        let h = FrameHeader {
            length: 4,
            kind: FrameType::Priority as u8,
            flags: 0,
            stream_id: 3,
        };
        let err = PriorityFrame::parse(h, Bytes::from_static(&[0; 4])).unwrap_err();
        assert!(matches!(err, H2Error::Stream(3, _, _)));
    }
}
