//! HTTP/2 binary framing layer (RFC 9113 §4, §6).
//!
//! Every frame starts with a fixed 9-octet header:
//!
//! ```text
//! +-----------------------------------------------+
//! |                 Length (24)                   |
//! +---------------+---------------+---------------+
//! |   Type (8)    |   Flags (8)   |
//! +-+-------------+---------------+-------------------------------+
//! |R|                 Stream Identifier (31)                      |
//! +=+=============================================================+
//! |                   Frame Payload (0...)                      ...
//! +---------------------------------------------------------------+
//! ```
//!
//! [`Frame`] is the typed in-memory representation; [`Frame::encode`] and
//! [`Frame::parse`] convert to and from the wire form. Unknown frame types
//! are preserved as [`Frame::Unknown`] so the connection layer can ignore
//! them per RFC 9113 §4.1 (mirroring how the unknown-SETTINGS rule enables
//! the paper's incremental deployment story).

mod data;
mod goaway;
mod headers;
mod ping;
mod priority;
mod push_promise;
mod rst_stream;
pub mod settings_frame;
mod window_update;

pub use data::DataFrame;
pub use goaway::GoAwayFrame;
pub use headers::{ContinuationFrame, HeadersFrame, PriorityBlock};
pub use ping::PingFrame;
pub use priority::PriorityFrame;
pub use push_promise::PushPromiseFrame;
pub use rst_stream::RstStreamFrame;
pub use settings_frame::SettingsFrame;
pub use window_update::WindowUpdateFrame;

use crate::error::H2Error;
use bytes::{BufMut, Bytes, BytesMut};

/// Length of the fixed frame header.
pub const FRAME_HEADER_LEN: usize = 9;

/// Default maximum frame payload size (RFC 9113 §4.2).
pub const DEFAULT_MAX_FRAME_SIZE: u32 = 16_384;

/// Largest permitted SETTINGS_MAX_FRAME_SIZE value.
pub const MAX_ALLOWED_FRAME_SIZE: u32 = (1 << 24) - 1;

/// Frame type registry (RFC 9113 §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Conveys arbitrary variable-length request/response content.
    Data = 0x0,
    /// Opens a stream and carries a header block fragment.
    Headers = 0x1,
    /// Deprecated stream priority signal.
    Priority = 0x2,
    /// Immediate stream termination.
    RstStream = 0x3,
    /// Connection configuration parameters.
    Settings = 0x4,
    /// Server push announcement.
    PushPromise = 0x5,
    /// Liveness / RTT measurement.
    Ping = 0x6,
    /// Connection shutdown.
    GoAway = 0x7,
    /// Flow-control credit.
    WindowUpdate = 0x8,
    /// Header block continuation.
    Continuation = 0x9,
}

impl FrameType {
    /// Decode a frame type octet; `None` for extension types.
    pub fn from_u8(v: u8) -> Option<FrameType> {
        use FrameType::*;
        Some(match v {
            0x0 => Data,
            0x1 => Headers,
            0x2 => Priority,
            0x3 => RstStream,
            0x4 => Settings,
            0x5 => PushPromise,
            0x6 => Ping,
            0x7 => GoAway,
            0x8 => WindowUpdate,
            0x9 => Continuation,
            _ => return None,
        })
    }
}

/// Frame flag bits used by this implementation (RFC 9113 §6).
pub mod flags {
    /// DATA / HEADERS: no further frames on this stream.
    pub const END_STREAM: u8 = 0x1;
    /// SETTINGS / PING: acknowledgement.
    pub const ACK: u8 = 0x1;
    /// HEADERS / PUSH_PROMISE / CONTINUATION: header block complete.
    pub const END_HEADERS: u8 = 0x4;
    /// DATA / HEADERS / PUSH_PROMISE: payload is padded.
    pub const PADDED: u8 = 0x8;
    /// HEADERS: priority block present.
    pub const PRIORITY: u8 = 0x20;
}

/// The fixed 9-octet header preceding every frame payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length (24 bits on the wire).
    pub length: u32,
    /// Frame type octet (kept raw so unknown types survive).
    pub kind: u8,
    /// Type-specific flag bits.
    pub flags: u8,
    /// Stream identifier (31 bits; the reserved bit is masked off).
    pub stream_id: u32,
}

impl FrameHeader {
    /// Parse a header from exactly [`FRAME_HEADER_LEN`] octets.
    pub fn parse(buf: &[u8; FRAME_HEADER_LEN]) -> FrameHeader {
        let length = u32::from(buf[0]) << 16 | u32::from(buf[1]) << 8 | u32::from(buf[2]);
        let kind = buf[3];
        let flags = buf[4];
        let stream_id = (u32::from(buf[5]) << 24
            | u32::from(buf[6]) << 16
            | u32::from(buf[7]) << 8
            | u32::from(buf[8]))
            & 0x7fff_ffff;
        FrameHeader {
            length,
            kind,
            flags,
            stream_id,
        }
    }

    /// Encode the header into `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        debug_assert!(self.length < 1 << 24, "frame length must fit 24 bits");
        out.put_u8((self.length >> 16) as u8);
        out.put_u8((self.length >> 8) as u8);
        out.put_u8(self.length as u8);
        out.put_u8(self.kind);
        out.put_u8(self.flags);
        out.put_u32(self.stream_id & 0x7fff_ffff);
    }
}

/// A fully parsed HTTP/2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// DATA (0x0).
    Data(DataFrame),
    /// HEADERS (0x1).
    Headers(HeadersFrame),
    /// PRIORITY (0x2).
    Priority(PriorityFrame),
    /// RST_STREAM (0x3).
    RstStream(RstStreamFrame),
    /// SETTINGS (0x4).
    Settings(SettingsFrame),
    /// PUSH_PROMISE (0x5).
    PushPromise(PushPromiseFrame),
    /// PING (0x6).
    Ping(PingFrame),
    /// GOAWAY (0x7).
    GoAway(GoAwayFrame),
    /// WINDOW_UPDATE (0x8).
    WindowUpdate(WindowUpdateFrame),
    /// CONTINUATION (0x9).
    Continuation(ContinuationFrame),
    /// Extension frame type: ignored but surfaced for observability.
    Unknown {
        /// Raw type octet.
        kind: u8,
        /// Raw flags.
        flags: u8,
        /// Stream the frame arrived on.
        stream_id: u32,
        /// Raw payload.
        payload: Bytes,
    },
}

impl Frame {
    /// Parse a frame from its header and exactly `header.length` payload
    /// octets.
    pub fn parse(header: FrameHeader, payload: Bytes) -> Result<Frame, H2Error> {
        debug_assert_eq!(payload.len() as u32, header.length);
        let frame = match FrameType::from_u8(header.kind) {
            Some(FrameType::Data) => Frame::Data(DataFrame::parse(header, payload)?),
            Some(FrameType::Headers) => Frame::Headers(HeadersFrame::parse(header, payload)?),
            Some(FrameType::Priority) => Frame::Priority(PriorityFrame::parse(header, payload)?),
            Some(FrameType::RstStream) => Frame::RstStream(RstStreamFrame::parse(header, payload)?),
            Some(FrameType::Settings) => Frame::Settings(SettingsFrame::parse(header, payload)?),
            Some(FrameType::PushPromise) => {
                Frame::PushPromise(PushPromiseFrame::parse(header, payload)?)
            }
            Some(FrameType::Ping) => Frame::Ping(PingFrame::parse(header, payload)?),
            Some(FrameType::GoAway) => Frame::GoAway(GoAwayFrame::parse(header, payload)?),
            Some(FrameType::WindowUpdate) => {
                Frame::WindowUpdate(WindowUpdateFrame::parse(header, payload)?)
            }
            Some(FrameType::Continuation) => {
                Frame::Continuation(ContinuationFrame::parse(header, payload)?)
            }
            None => Frame::Unknown {
                kind: header.kind,
                flags: header.flags,
                stream_id: header.stream_id,
                payload,
            },
        };
        Ok(frame)
    }

    /// Encode the frame (header + payload) into `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        match self {
            Frame::Data(f) => f.encode(out),
            Frame::Headers(f) => f.encode(out),
            Frame::Priority(f) => f.encode(out),
            Frame::RstStream(f) => f.encode(out),
            Frame::Settings(f) => f.encode(out),
            Frame::PushPromise(f) => f.encode(out),
            Frame::Ping(f) => f.encode(out),
            Frame::GoAway(f) => f.encode(out),
            Frame::WindowUpdate(f) => f.encode(out),
            Frame::Continuation(f) => f.encode(out),
            Frame::Unknown {
                kind,
                flags,
                stream_id,
                payload,
            } => {
                FrameHeader {
                    length: payload.len() as u32,
                    kind: *kind,
                    flags: *flags,
                    stream_id: *stream_id,
                }
                .encode(out);
                out.extend_from_slice(payload);
            }
        }
    }

    /// The stream this frame applies to (0 for connection-scoped frames).
    pub fn stream_id(&self) -> u32 {
        match self {
            Frame::Data(f) => f.stream_id,
            Frame::Headers(f) => f.stream_id,
            Frame::Priority(f) => f.stream_id,
            Frame::RstStream(f) => f.stream_id,
            Frame::Settings(_) | Frame::Ping(_) | Frame::GoAway(_) => 0,
            Frame::PushPromise(f) => f.stream_id,
            Frame::WindowUpdate(f) => f.stream_id,
            Frame::Continuation(f) => f.stream_id,
            Frame::Unknown { stream_id, .. } => *stream_id,
        }
    }
}

/// Strip RFC 9113 §6.1 padding: the first payload octet is the pad length,
/// which must be shorter than the remaining payload.
pub(crate) fn strip_padding(payload: Bytes) -> Result<Bytes, H2Error> {
    if payload.is_empty() {
        return Err(H2Error::protocol("PADDED frame with empty payload"));
    }
    let pad_len = payload[0] as usize;
    let body = payload.slice(1..);
    if pad_len > body.len() {
        // Pad length >= remaining payload is a connection error (§6.1).
        return Err(H2Error::protocol("padding exceeds payload"));
    }
    Ok(body.slice(..body.len() - pad_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = FrameHeader {
            length: 0x0012_3456,
            kind: 0x4,
            flags: 0x1,
            stream_id: 0x7fff_ffff,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), FRAME_HEADER_LEN);
        let parsed = FrameHeader::parse(buf[..].try_into().unwrap());
        assert_eq!(parsed, h);
    }

    #[test]
    fn reserved_bit_is_masked() {
        let mut raw = [0u8; FRAME_HEADER_LEN];
        raw[5] = 0xff; // set R bit + high stream id bits
        let h = FrameHeader::parse(&raw);
        assert_eq!(h.stream_id, 0x7f00_0000);
    }

    #[test]
    fn unknown_frame_roundtrips() {
        let f = Frame::Unknown {
            kind: 0xfa,
            flags: 0x3,
            stream_id: 5,
            payload: Bytes::from_static(b"ext"),
        };
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let h = FrameHeader::parse(buf[..FRAME_HEADER_LEN].try_into().unwrap());
        let parsed = Frame::parse(h, Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..])).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn padding_is_stripped() {
        // pad_len=2, body "ab", padding "\0\0"
        let payload = Bytes::from_static(&[2, b'a', b'b', 0, 0]);
        assert_eq!(strip_padding(payload).unwrap(), Bytes::from_static(b"ab"));
    }

    #[test]
    fn oversized_padding_rejected() {
        let payload = Bytes::from_static(&[5, b'a', b'b']);
        assert!(strip_padding(payload).is_err());
        assert!(strip_padding(Bytes::new()).is_err());
    }
}
