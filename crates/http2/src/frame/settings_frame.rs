//! SETTINGS frames (RFC 9113 §6.5) — the vehicle for the paper's §3
//! `SETTINGS_GEN_ABILITY` extension.

use super::{flags, FrameHeader, FrameType};
use crate::error::H2Error;
use bytes::{BufMut, Bytes, BytesMut};

/// One `(identifier, value)` settings parameter: 16-bit id, 32-bit value.
pub type SettingPair = (u16, u32);

/// A SETTINGS frame: zero or more parameters, or an empty ACK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SettingsFrame {
    /// ACK flag; an ACK frame must carry no parameters.
    pub ack: bool,
    /// Parameters in wire order. Duplicates are legal; the last wins.
    pub params: Vec<SettingPair>,
}

impl SettingsFrame {
    /// A settings acknowledgement (empty frame with the ACK flag, §6.5).
    pub fn ack() -> SettingsFrame {
        SettingsFrame {
            ack: true,
            params: Vec::new(),
        }
    }

    /// A settings announcement with the given parameters.
    pub fn new(params: Vec<SettingPair>) -> SettingsFrame {
        SettingsFrame { ack: false, params }
    }

    pub(crate) fn parse(header: FrameHeader, payload: Bytes) -> Result<SettingsFrame, H2Error> {
        if header.stream_id != 0 {
            return Err(H2Error::protocol("SETTINGS on non-zero stream"));
        }
        let ack = header.flags & flags::ACK != 0;
        if ack && !payload.is_empty() {
            // §6.5: ACK with payload is FRAME_SIZE_ERROR.
            return Err(H2Error::frame_size("SETTINGS ACK with payload"));
        }
        if !payload.len().is_multiple_of(6) {
            return Err(H2Error::frame_size("SETTINGS payload not multiple of 6"));
        }
        let params = payload
            .chunks_exact(6)
            .map(|c| {
                let id = u16::from_be_bytes([c[0], c[1]]);
                let value = u32::from_be_bytes([c[2], c[3], c[4], c[5]]);
                (id, value)
            })
            .collect();
        Ok(SettingsFrame { ack, params })
    }

    pub(crate) fn encode(&self, out: &mut BytesMut) {
        FrameHeader {
            length: (self.params.len() * 6) as u32,
            kind: FrameType::Settings as u8,
            flags: if self.ack { flags::ACK } else { 0 },
            stream_id: 0,
        }
        .encode(out);
        for (id, value) in &self.params {
            out.put_u16(*id);
            out.put_u32(*value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FRAME_HEADER_LEN};
    use crate::settings::SETTINGS_GEN_ABILITY;

    fn roundtrip(f: &SettingsFrame) -> Frame {
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let h = FrameHeader::parse(buf[..FRAME_HEADER_LEN].try_into().unwrap());
        Frame::parse(h, Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..])).unwrap()
    }

    #[test]
    fn settings_roundtrip() {
        let f = SettingsFrame::new(vec![(0x3, 100), (0x4, 65_535), (SETTINGS_GEN_ABILITY, 1)]);
        assert_eq!(roundtrip(&f), Frame::Settings(f.clone()));
    }

    #[test]
    fn ack_roundtrip() {
        let f = SettingsFrame::ack();
        assert_eq!(roundtrip(&f), Frame::Settings(f.clone()));
    }

    #[test]
    fn ack_with_payload_rejected() {
        let h = FrameHeader {
            length: 6,
            kind: FrameType::Settings as u8,
            flags: flags::ACK,
            stream_id: 0,
        };
        assert!(SettingsFrame::parse(h, Bytes::from_static(&[0; 6])).is_err());
    }

    #[test]
    fn misaligned_payload_rejected() {
        let h = FrameHeader {
            length: 5,
            kind: FrameType::Settings as u8,
            flags: 0,
            stream_id: 0,
        };
        assert!(SettingsFrame::parse(h, Bytes::from_static(&[0; 5])).is_err());
    }

    #[test]
    fn non_zero_stream_rejected() {
        let h = FrameHeader {
            length: 0,
            kind: FrameType::Settings as u8,
            flags: 0,
            stream_id: 1,
        };
        assert!(SettingsFrame::parse(h, Bytes::new()).is_err());
    }

    #[test]
    fn gen_ability_wire_format() {
        // The paper's §3 setting: id 0x07, value 1, on stream 0.
        let f = SettingsFrame::new(vec![(SETTINGS_GEN_ABILITY, 1)]);
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        assert_eq!(
            &buf[FRAME_HEADER_LEN..],
            &[0x00, 0x07, 0x00, 0x00, 0x00, 0x01]
        );
    }
}
