//! WINDOW_UPDATE frames (RFC 9113 §6.9).

use super::{FrameHeader, FrameType};
use crate::error::H2Error;
use bytes::{BufMut, Bytes, BytesMut};

/// A WINDOW_UPDATE frame granting flow-control credit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowUpdateFrame {
    /// 0 for the connection window, otherwise the stream.
    pub stream_id: u32,
    /// Credit to add, 1..=2^31-1.
    pub increment: u32,
}

impl WindowUpdateFrame {
    /// Construct a window update; `increment` must be non-zero.
    pub fn new(stream_id: u32, increment: u32) -> WindowUpdateFrame {
        debug_assert!(increment > 0 && increment < 1 << 31);
        WindowUpdateFrame {
            stream_id,
            increment,
        }
    }

    pub(crate) fn parse(header: FrameHeader, payload: Bytes) -> Result<WindowUpdateFrame, H2Error> {
        if payload.len() != 4 {
            return Err(H2Error::frame_size(
                "WINDOW_UPDATE payload must be 4 octets",
            ));
        }
        let increment =
            u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]) & 0x7fff_ffff;
        if increment == 0 {
            // §6.9: zero increment is a protocol error (stream or connection
            // scoped; the connection layer decides severity).
            return Err(H2Error::protocol("WINDOW_UPDATE with zero increment"));
        }
        Ok(WindowUpdateFrame {
            stream_id: header.stream_id,
            increment,
        })
    }

    pub(crate) fn encode(&self, out: &mut BytesMut) {
        FrameHeader {
            length: 4,
            kind: FrameType::WindowUpdate as u8,
            flags: 0,
            stream_id: self.stream_id,
        }
        .encode(out);
        out.put_u32(self.increment & 0x7fff_ffff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FRAME_HEADER_LEN};

    #[test]
    fn window_update_roundtrip() {
        let f = WindowUpdateFrame::new(0, 65_535);
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let h = FrameHeader::parse(buf[..FRAME_HEADER_LEN].try_into().unwrap());
        let parsed = Frame::parse(h, Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..])).unwrap();
        assert_eq!(parsed, Frame::WindowUpdate(f));
    }

    #[test]
    fn zero_increment_rejected() {
        let h = FrameHeader {
            length: 4,
            kind: FrameType::WindowUpdate as u8,
            flags: 0,
            stream_id: 3,
        };
        assert!(WindowUpdateFrame::parse(h, Bytes::from_static(&[0; 4])).is_err());
    }

    #[test]
    fn wrong_length_rejected() {
        let h = FrameHeader {
            length: 3,
            kind: FrameType::WindowUpdate as u8,
            flags: 0,
            stream_id: 0,
        };
        assert!(WindowUpdateFrame::parse(h, Bytes::from_static(&[0; 3])).is_err());
    }
}
