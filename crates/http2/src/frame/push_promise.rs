//! PUSH_PROMISE frames (RFC 9113 §6.6). The SWW prototype never pushes, but
//! the codec understands the frame so a pushing peer is handled correctly
//! (we refuse pushes via SETTINGS_ENABLE_PUSH=0 and reset any that arrive).

use super::{flags, strip_padding, FrameHeader, FrameType};
use crate::error::H2Error;
use bytes::{BufMut, Bytes, BytesMut};

/// A PUSH_PROMISE frame reserving a server-initiated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushPromiseFrame {
    /// Stream the promise is associated with.
    pub stream_id: u32,
    /// Even-numbered stream being reserved.
    pub promised_stream_id: u32,
    /// HPACK fragment of the promised request headers.
    pub fragment: Bytes,
    /// END_HEADERS flag.
    pub end_headers: bool,
}

impl PushPromiseFrame {
    pub(crate) fn parse(header: FrameHeader, payload: Bytes) -> Result<PushPromiseFrame, H2Error> {
        if header.stream_id == 0 {
            return Err(H2Error::protocol("PUSH_PROMISE on stream 0"));
        }
        let body = if header.flags & flags::PADDED != 0 {
            strip_padding(payload)?
        } else {
            payload
        };
        if body.len() < 4 {
            return Err(H2Error::frame_size("PUSH_PROMISE payload too short"));
        }
        let promised = u32::from_be_bytes([body[0], body[1], body[2], body[3]]) & 0x7fff_ffff;
        Ok(PushPromiseFrame {
            stream_id: header.stream_id,
            promised_stream_id: promised,
            fragment: body.slice(4..),
            end_headers: header.flags & flags::END_HEADERS != 0,
        })
    }

    pub(crate) fn encode(&self, out: &mut BytesMut) {
        FrameHeader {
            length: (4 + self.fragment.len()) as u32,
            kind: FrameType::PushPromise as u8,
            flags: if self.end_headers {
                flags::END_HEADERS
            } else {
                0
            },
            stream_id: self.stream_id,
        }
        .encode(out);
        out.put_u32(self.promised_stream_id & 0x7fff_ffff);
        out.extend_from_slice(&self.fragment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FRAME_HEADER_LEN};

    #[test]
    fn push_promise_roundtrip() {
        let f = PushPromiseFrame {
            stream_id: 1,
            promised_stream_id: 2,
            fragment: Bytes::from_static(&[0x82]),
            end_headers: true,
        };
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let h = FrameHeader::parse(buf[..FRAME_HEADER_LEN].try_into().unwrap());
        let parsed = Frame::parse(h, Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..])).unwrap();
        assert_eq!(parsed, Frame::PushPromise(f));
    }

    #[test]
    fn short_payload_rejected() {
        let h = FrameHeader {
            length: 2,
            kind: FrameType::PushPromise as u8,
            flags: 0,
            stream_id: 1,
        };
        assert!(PushPromiseFrame::parse(h, Bytes::from_static(&[0; 2])).is_err());
    }
}
