//! DATA frames (RFC 9113 §6.1).

use super::{flags, strip_padding, FrameHeader, FrameType};
use crate::error::H2Error;
use bytes::{Bytes, BytesMut};

/// A DATA frame carrying request or response content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    /// Stream the data belongs to (never 0).
    pub stream_id: u32,
    /// Application payload after padding removal.
    pub data: Bytes,
    /// Whether this frame ends the stream.
    pub end_stream: bool,
}

impl DataFrame {
    /// Construct a DATA frame.
    pub fn new(stream_id: u32, data: impl Into<Bytes>, end_stream: bool) -> Self {
        DataFrame {
            stream_id,
            data: data.into(),
            end_stream,
        }
    }

    pub(crate) fn parse(header: FrameHeader, payload: Bytes) -> Result<DataFrame, H2Error> {
        if header.stream_id == 0 {
            return Err(H2Error::protocol("DATA on stream 0"));
        }
        let data = if header.flags & flags::PADDED != 0 {
            strip_padding(payload)?
        } else {
            payload
        };
        Ok(DataFrame {
            stream_id: header.stream_id,
            data,
            end_stream: header.flags & flags::END_STREAM != 0,
        })
    }

    pub(crate) fn encode(&self, out: &mut BytesMut) {
        let mut f = 0;
        if self.end_stream {
            f |= flags::END_STREAM;
        }
        FrameHeader {
            length: self.data.len() as u32,
            kind: FrameType::Data as u8,
            flags: f,
            stream_id: self.stream_id,
        }
        .encode(out);
        out.extend_from_slice(&self.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FRAME_HEADER_LEN};

    fn roundtrip(f: &DataFrame) -> Frame {
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let h = FrameHeader::parse(buf[..FRAME_HEADER_LEN].try_into().unwrap());
        Frame::parse(h, Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..])).unwrap()
    }

    #[test]
    fn data_roundtrip() {
        let f = DataFrame::new(3, Bytes::from_static(b"<html>...</html>"), true);
        assert_eq!(roundtrip(&f), Frame::Data(f.clone()));
    }

    #[test]
    fn empty_end_stream() {
        let f = DataFrame::new(1, Bytes::new(), true);
        assert_eq!(roundtrip(&f), Frame::Data(f.clone()));
    }

    #[test]
    fn stream_zero_rejected() {
        let h = FrameHeader {
            length: 0,
            kind: FrameType::Data as u8,
            flags: 0,
            stream_id: 0,
        };
        assert!(DataFrame::parse(h, Bytes::new()).is_err());
    }

    #[test]
    fn padded_data_parses() {
        let h = FrameHeader {
            length: 5,
            kind: FrameType::Data as u8,
            flags: flags::PADDED | flags::END_STREAM,
            stream_id: 7,
        };
        let f = DataFrame::parse(h, Bytes::from_static(&[2, b'h', b'i', 0, 0])).unwrap();
        assert_eq!(f.data, Bytes::from_static(b"hi"));
        assert!(f.end_stream);
    }
}
