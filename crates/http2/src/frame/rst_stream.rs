//! RST_STREAM frames (RFC 9113 §6.4).

use super::{FrameHeader, FrameType};
use crate::error::{ErrorCode, H2Error};
use bytes::{BufMut, Bytes, BytesMut};

/// An RST_STREAM frame terminating one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RstStreamFrame {
    /// Stream being reset (never 0).
    pub stream_id: u32,
    /// Why the stream ended.
    pub error_code: ErrorCode,
}

impl RstStreamFrame {
    /// Construct a stream reset.
    pub fn new(stream_id: u32, error_code: ErrorCode) -> RstStreamFrame {
        RstStreamFrame {
            stream_id,
            error_code,
        }
    }

    pub(crate) fn parse(header: FrameHeader, payload: Bytes) -> Result<RstStreamFrame, H2Error> {
        if header.stream_id == 0 {
            return Err(H2Error::protocol("RST_STREAM on stream 0"));
        }
        if payload.len() != 4 {
            return Err(H2Error::frame_size("RST_STREAM payload must be 4 octets"));
        }
        let code = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
        Ok(RstStreamFrame {
            stream_id: header.stream_id,
            error_code: ErrorCode::from_u32(code),
        })
    }

    pub(crate) fn encode(&self, out: &mut BytesMut) {
        FrameHeader {
            length: 4,
            kind: FrameType::RstStream as u8,
            flags: 0,
            stream_id: self.stream_id,
        }
        .encode(out);
        out.put_u32(self.error_code as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FRAME_HEADER_LEN};

    #[test]
    fn rst_roundtrip() {
        let f = RstStreamFrame::new(11, ErrorCode::Cancel);
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let h = FrameHeader::parse(buf[..FRAME_HEADER_LEN].try_into().unwrap());
        let parsed = Frame::parse(h, Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..])).unwrap();
        assert_eq!(parsed, Frame::RstStream(f));
    }

    #[test]
    fn stream_zero_rejected() {
        let h = FrameHeader {
            length: 4,
            kind: FrameType::RstStream as u8,
            flags: 0,
            stream_id: 0,
        };
        assert!(RstStreamFrame::parse(h, Bytes::from_static(&[0; 4])).is_err());
    }
}
