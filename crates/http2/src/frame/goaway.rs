//! GOAWAY frames (RFC 9113 §6.8).

use super::{FrameHeader, FrameType};
use crate::error::{ErrorCode, H2Error};
use bytes::{BufMut, Bytes, BytesMut};

/// A GOAWAY frame initiating connection shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoAwayFrame {
    /// Highest stream id the sender processed (or will process).
    pub last_stream_id: u32,
    /// Why the connection is closing.
    pub error_code: ErrorCode,
    /// Optional opaque debug data.
    pub debug_data: Bytes,
}

impl GoAwayFrame {
    /// A graceful shutdown frame.
    pub fn new(last_stream_id: u32, error_code: ErrorCode, debug: impl Into<Bytes>) -> Self {
        GoAwayFrame {
            last_stream_id,
            error_code,
            debug_data: debug.into(),
        }
    }

    pub(crate) fn parse(header: FrameHeader, payload: Bytes) -> Result<GoAwayFrame, H2Error> {
        if header.stream_id != 0 {
            return Err(H2Error::protocol("GOAWAY on non-zero stream"));
        }
        if payload.len() < 8 {
            return Err(H2Error::frame_size("GOAWAY payload too short"));
        }
        let last =
            u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]) & 0x7fff_ffff;
        let code = u32::from_be_bytes([payload[4], payload[5], payload[6], payload[7]]);
        Ok(GoAwayFrame {
            last_stream_id: last,
            error_code: ErrorCode::from_u32(code),
            debug_data: payload.slice(8..),
        })
    }

    pub(crate) fn encode(&self, out: &mut BytesMut) {
        FrameHeader {
            length: (8 + self.debug_data.len()) as u32,
            kind: FrameType::GoAway as u8,
            flags: 0,
            stream_id: 0,
        }
        .encode(out);
        out.put_u32(self.last_stream_id & 0x7fff_ffff);
        out.put_u32(self.error_code as u32);
        out.extend_from_slice(&self.debug_data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FRAME_HEADER_LEN};

    #[test]
    fn goaway_roundtrip() {
        let f = GoAwayFrame::new(
            7,
            ErrorCode::EnhanceYourCalm,
            Bytes::from_static(b"slow down"),
        );
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let h = FrameHeader::parse(buf[..FRAME_HEADER_LEN].try_into().unwrap());
        let parsed = Frame::parse(h, Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..])).unwrap();
        assert_eq!(parsed, Frame::GoAway(f));
    }

    #[test]
    fn short_payload_rejected() {
        let h = FrameHeader {
            length: 4,
            kind: FrameType::GoAway as u8,
            flags: 0,
            stream_id: 0,
        };
        assert!(GoAwayFrame::parse(h, Bytes::from_static(&[0; 4])).is_err());
    }

    #[test]
    fn no_debug_data() {
        let f = GoAwayFrame::new(0, ErrorCode::NoError, Bytes::new());
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        assert_eq!(buf.len(), FRAME_HEADER_LEN + 8);
    }
}
