//! Connection plumbing shared by client and server: framed I/O, SETTINGS
//! exchange, header-block assembly, flow control and stream tracking.

use crate::error::{ErrorCode, H2Error};
use crate::frame::{
    ContinuationFrame, DataFrame, Frame, FrameHeader, GoAwayFrame, HeadersFrame, PingFrame,
    RstStreamFrame, SettingsFrame, WindowUpdateFrame, FRAME_HEADER_LEN,
};
use crate::hpack::{Decoder, Encoder, HeaderField};
use crate::settings::{GenAbility, Settings};
use crate::stream::{FlowWindow, StreamState};
use bytes::{Bytes, BytesMut};
use std::collections::{HashMap, VecDeque};
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// Hard cap on accepted frame payloads, defending the read buffer.
const ABSOLUTE_MAX_FRAME: u32 = 1 << 24;

/// Cap on an assembled header block across HEADERS + CONTINUATION frames,
/// defending against CONTINUATION floods (a peer streaming unbounded
/// fragments without END_HEADERS).
const MAX_HEADER_BLOCK: usize = 1 << 20;

/// Framed frame reader/writer over any async byte stream.
#[derive(Debug)]
pub struct FrameIo<T> {
    io: T,
    /// Largest payload we accept (our SETTINGS_MAX_FRAME_SIZE).
    pub max_recv_frame: u32,
}

impl<T: AsyncRead + AsyncWrite + Unpin> FrameIo<T> {
    /// Wrap a byte stream.
    pub fn new(io: T) -> FrameIo<T> {
        FrameIo {
            io,
            max_recv_frame: crate::frame::DEFAULT_MAX_FRAME_SIZE,
        }
    }

    /// Read one frame.
    pub async fn read_frame(&mut self) -> Result<Frame, H2Error> {
        let mut head = [0u8; FRAME_HEADER_LEN];
        self.io.read_exact(&mut head).await?;
        let header = FrameHeader::parse(&head);
        if header.length > self.max_recv_frame.min(ABSOLUTE_MAX_FRAME) {
            return Err(H2Error::frame_size(format!(
                "frame of {} octets exceeds limit",
                header.length
            )));
        }
        let mut payload = vec![0u8; header.length as usize];
        self.io.read_exact(&mut payload).await?;
        Frame::parse(header, Bytes::from(payload))
    }

    /// Write one frame and flush.
    pub async fn write_frame(&mut self, frame: &Frame) -> Result<(), H2Error> {
        let mut buf = BytesMut::with_capacity(FRAME_HEADER_LEN + 512);
        frame.encode(&mut buf);
        self.io.write_all(&buf).await?;
        self.io.flush().await?;
        Ok(())
    }

    /// Write raw octets (the client preface) and flush.
    pub async fn write_raw(&mut self, bytes: &[u8]) -> Result<(), H2Error> {
        self.io.write_all(bytes).await?;
        self.io.flush().await?;
        Ok(())
    }

    /// Read exactly `buf.len()` raw octets (the server reading the preface).
    pub async fn read_raw(&mut self, buf: &mut [u8]) -> Result<(), H2Error> {
        self.io.read_exact(buf).await?;
        Ok(())
    }
}

/// Direction of a traced frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Frame written by this endpoint.
    Sent,
    /// Frame read from the peer.
    Received,
}

/// One entry of the frame trace — a tcpdump-style summary of a frame that
/// crossed the connection, for debugging and protocol tests.
#[derive(Debug, Clone)]
pub struct FrameTraceEntry {
    /// Sent or received.
    pub direction: Direction,
    /// Frame type name ("SETTINGS", "HEADERS", …).
    pub kind: &'static str,
    /// Stream the frame applied to (0 = connection).
    pub stream_id: u32,
    /// Payload length in octets.
    pub length: usize,
}

fn frame_kind_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Data(_) => "DATA",
        Frame::Headers(_) => "HEADERS",
        Frame::Priority(_) => "PRIORITY",
        Frame::RstStream(_) => "RST_STREAM",
        Frame::Settings(s) if s.ack => "SETTINGS_ACK",
        Frame::Settings(_) => "SETTINGS",
        Frame::PushPromise(_) => "PUSH_PROMISE",
        Frame::Ping(p) if p.ack => "PING_ACK",
        Frame::Ping(_) => "PING",
        Frame::GoAway(_) => "GOAWAY",
        Frame::WindowUpdate(_) => "WINDOW_UPDATE",
        Frame::Continuation(_) => "CONTINUATION",
        Frame::Unknown { .. } => "UNKNOWN",
    }
}

fn frame_payload_len(frame: &Frame) -> usize {
    match frame {
        Frame::Data(f) => f.data.len(),
        Frame::Headers(f) => f.fragment.len(),
        Frame::Continuation(f) => f.fragment.len(),
        Frame::Settings(s) => s.params.len() * 6,
        Frame::GoAway(g) => 8 + g.debug_data.len(),
        Frame::Ping(_) => 8,
        Frame::RstStream(_) | Frame::WindowUpdate(_) => 4,
        Frame::Priority(_) => 5,
        Frame::PushPromise(f) => 4 + f.fragment.len(),
        Frame::Unknown { payload, .. } => payload.len(),
    }
}

/// A complete message (header block + full body) received on one stream.
#[derive(Debug, Clone)]
pub struct CompleteMessage {
    /// Stream the message arrived on.
    pub stream_id: u32,
    /// Decoded header fields, pseudo-headers first.
    pub fields: Vec<HeaderField>,
    /// Concatenated DATA payload.
    pub body: Bytes,
}

#[derive(Debug)]
struct StreamEntry {
    state: StreamState,
    send_window: FlowWindow,
    fields: Option<Vec<HeaderField>>,
    body: BytesMut,
}

impl StreamEntry {
    fn new(initial_send_window: u32) -> StreamEntry {
        StreamEntry {
            state: StreamState::Idle,
            send_window: FlowWindow::new(initial_send_window),
            fields: None,
            body: BytesMut::new(),
        }
    }
}

#[derive(Debug)]
struct HeaderAssembly {
    stream_id: u32,
    end_stream: bool,
    fragments: Vec<u8>,
}

/// The endpoint role, which fixes stream-id parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Initiates odd-numbered streams.
    Client,
    /// Accepts streams; would push on even ids (we never push).
    Server,
}

/// A full HTTP/2 connection endpoint: owns the socket, both settings
/// structures, HPACK state, flow-control windows, and per-stream state.
#[derive(Debug)]
pub struct Connection<T> {
    io: FrameIo<T>,
    role: Role,
    /// Settings we announced.
    pub local: Settings,
    /// Settings the peer announced.
    pub remote: Settings,
    enc: Encoder,
    dec: Decoder,
    conn_send: FlowWindow,
    streams: HashMap<u32, StreamEntry>,
    assembly: Option<HeaderAssembly>,
    next_stream_id: u32,
    pending: VecDeque<CompleteMessage>,
    remote_settings_seen: bool,
    goaway_received: bool,
    /// Bytes of padding/overhead counters for the stats layer.
    pub bytes_sent: u64,
    /// Total payload bytes received in DATA frames.
    pub bytes_received: u64,
    /// When enabled, a tcpdump-style log of every frame crossing the
    /// connection (see [`Connection::enable_trace`]).
    trace: Option<Vec<FrameTraceEntry>>,
}

impl<T: AsyncRead + AsyncWrite + Unpin> Connection<T> {
    fn new(io: T, role: Role, local: Settings) -> Connection<T> {
        Connection {
            io: FrameIo::new(io),
            role,
            local,
            remote: Settings::default(),
            enc: Encoder::new(),
            dec: Decoder::new(),
            conn_send: FlowWindow::new(65_535),
            streams: HashMap::new(),
            assembly: None,
            next_stream_id: if role == Role::Client { 1 } else { 2 },
            pending: VecDeque::new(),
            remote_settings_seen: false,
            goaway_received: false,
            bytes_sent: 0,
            bytes_received: 0,
            trace: None,
        }
    }

    /// Client-side handshake: send preface and SETTINGS, then process
    /// frames until the peer's SETTINGS arrive (paper §5.2: "the generative
    /// client begins by establishing a connection to the server, followed
    /// by exchanging settings").
    pub async fn client_handshake(io: T, local: Settings) -> Result<Connection<T>, H2Error> {
        let mut conn = Connection::new(io, Role::Client, local);
        conn.io.write_raw(crate::PREFACE).await?;
        conn.send_local_settings().await?;
        conn.await_remote_settings().await?;
        Ok(conn)
    }

    /// Server-side handshake: read the preface, send SETTINGS, then process
    /// frames until the client's SETTINGS arrive.
    pub async fn server_handshake(io: T, local: Settings) -> Result<Connection<T>, H2Error> {
        let mut conn = Connection::new(io, Role::Server, local);
        let mut preface = [0u8; 24];
        conn.io.read_raw(&mut preface).await?;
        if preface != *crate::PREFACE {
            return Err(H2Error::protocol("bad connection preface"));
        }
        conn.send_local_settings().await?;
        conn.await_remote_settings().await?;
        Ok(conn)
    }

    async fn send_local_settings(&mut self) -> Result<(), H2Error> {
        self.io.max_recv_frame = self.local.max_frame_size;
        self.dec
            .set_capacity_limit(self.local.header_table_size as usize);
        let frame = Frame::Settings(SettingsFrame::new(self.local.to_params()));
        self.write(&frame).await
    }

    async fn await_remote_settings(&mut self) -> Result<(), H2Error> {
        while !self.remote_settings_seen {
            let frame = self.io.read_frame().await?;
            self.handle_frame(frame).await?;
        }
        Ok(())
    }

    async fn write(&mut self, frame: &Frame) -> Result<(), H2Error> {
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        self.bytes_sent += buf.len() as u64;
        sww_obs::counter(
            "sww_http2_frames_sent_total",
            &[("kind", frame_kind_name(frame))],
        )
        .inc();
        if let Some(trace) = &mut self.trace {
            trace.push(FrameTraceEntry {
                direction: Direction::Sent,
                kind: frame_kind_name(frame),
                stream_id: frame.stream_id(),
                length: frame_payload_len(frame),
            });
        }
        self.io.write_raw(&buf).await
    }

    /// Turn on frame tracing: every frame sent or received from now on is
    /// summarized into an in-memory log, like a tcpdump of the connection.
    pub fn enable_trace(&mut self) {
        self.trace.get_or_insert_with(Vec::new);
    }

    /// Drain the trace collected so far (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<FrameTraceEntry> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    fn trace_received(&mut self, frame: &Frame) {
        sww_obs::counter(
            "sww_http2_frames_received_total",
            &[("kind", frame_kind_name(frame))],
        )
        .inc();
        if let Some(trace) = &mut self.trace {
            trace.push(FrameTraceEntry {
                direction: Direction::Received,
                kind: frame_kind_name(frame),
                stream_id: frame.stream_id(),
                length: frame_payload_len(frame),
            });
        }
    }

    /// The generative capability shared by both peers; content generation
    /// may be used only when this is non-empty (paper §3).
    pub fn negotiated_ability(&self) -> GenAbility {
        self.local.gen_ability.intersect(self.remote.gen_ability)
    }

    /// Announce an updated generative ability mid-connection (RFC 9113
    /// §6.5: settings apply connection-wide from the moment the peer
    /// processes them). Used e.g. to withdraw or upgrade GEN_ABILITY when
    /// a device's conditions change (battery saver, thermal limits).
    ///
    /// The setting is sent explicitly even when zero — omitted settings
    /// keep their previous value, so withdrawal must be on the wire.
    pub async fn announce_ability(&mut self, ability: GenAbility) -> Result<(), H2Error> {
        self.local.gen_ability = ability;
        let frame = Frame::Settings(SettingsFrame::new(vec![(
            crate::settings::SETTINGS_GEN_ABILITY,
            ability.bits(),
        )]));
        self.write(&frame).await
    }

    /// The capability the *peer* advertised.
    pub fn peer_ability(&self) -> GenAbility {
        self.remote.gen_ability
    }

    /// Allocate the next locally initiated stream id.
    pub fn open_stream(&mut self) -> u32 {
        let id = self.next_stream_id;
        self.next_stream_id += 2;
        self.streams
            .insert(id, StreamEntry::new(self.remote.initial_window_size));
        id
    }

    /// Send a complete message (headers, then body split across DATA
    /// frames honouring both flow-control windows and the peer's
    /// max_frame_size) and end the stream.
    pub async fn send_message(
        &mut self,
        stream_id: u32,
        fields: &[HeaderField],
        body: Bytes,
    ) -> Result<(), H2Error> {
        let entry = self
            .streams
            .entry(stream_id)
            .or_insert_with(|| StreamEntry::new(self.remote.initial_window_size));
        let end_on_headers = body.is_empty();
        entry.state = entry.state.on_send_headers(end_on_headers)?;
        let raw_len: usize = fields.iter().map(|f| f.name.len() + f.value.len()).sum();
        let block = self.enc.encode(fields);
        sww_obs::counter("sww_http2_hpack_bytes_total", &[("form", "raw")]).add(raw_len as u64);
        sww_obs::counter("sww_http2_hpack_bytes_total", &[("form", "encoded")])
            .add(block.len() as u64);
        self.send_header_block(stream_id, &block, end_on_headers)
            .await?;
        if !body.is_empty() {
            self.send_body(stream_id, body).await?;
        }
        Ok(())
    }

    async fn send_header_block(
        &mut self,
        stream_id: u32,
        block: &[u8],
        end_stream: bool,
    ) -> Result<(), H2Error> {
        let max = self.remote.max_frame_size as usize;
        if block.len() <= max {
            let frame = Frame::Headers(HeadersFrame {
                stream_id,
                fragment: Bytes::copy_from_slice(block),
                end_stream,
                end_headers: true,
                priority: None,
            });
            return self.write(&frame).await;
        }
        // Split into HEADERS + CONTINUATION frames.
        let first = Frame::Headers(HeadersFrame {
            stream_id,
            fragment: Bytes::copy_from_slice(&block[..max]),
            end_stream,
            end_headers: false,
            priority: None,
        });
        self.write(&first).await?;
        let mut rest = &block[max..];
        while rest.len() > max {
            let frame = Frame::Continuation(ContinuationFrame {
                stream_id,
                fragment: Bytes::copy_from_slice(&rest[..max]),
                end_headers: false,
            });
            self.write(&frame).await?;
            rest = &rest[max..];
        }
        let last = Frame::Continuation(ContinuationFrame {
            stream_id,
            fragment: Bytes::copy_from_slice(rest),
            end_headers: true,
        });
        self.write(&last).await
    }

    async fn send_body(&mut self, stream_id: u32, body: Bytes) -> Result<(), H2Error> {
        let mut offset = 0usize;
        while offset < body.len() {
            let remaining = body.len() - offset;
            // Wait for window on both the stream and the connection.
            let mut stalled = false;
            let writable = loop {
                let stream_avail = self
                    .streams
                    .get(&stream_id)
                    .map(|s| s.send_window.available())
                    .unwrap_or(0);
                let avail = stream_avail
                    .min(self.conn_send.available())
                    .min(self.remote.max_frame_size as usize)
                    .min(remaining);
                if avail > 0 {
                    break avail;
                }
                if !stalled {
                    stalled = true;
                    sww_obs::counter("sww_http2_flow_stalls_total", &[]).inc();
                }
                // Blocked: process incoming frames until credit arrives.
                let frame = self.io.read_frame().await?;
                self.handle_frame(frame).await?;
            };
            let end = offset + writable == body.len();
            self.conn_send.consume(writable)?;
            if let Some(entry) = self.streams.get_mut(&stream_id) {
                entry.send_window.consume(writable)?;
                entry.state = entry.state.on_send_data(end)?;
            }
            let frame = Frame::Data(DataFrame {
                stream_id,
                data: body.slice(offset..offset + writable),
                end_stream: end,
            });
            self.write(&frame).await?;
            offset += writable;
        }
        Ok(())
    }

    /// Receive the next complete message, transparently handling SETTINGS,
    /// PING, WINDOW_UPDATE, PRIORITY and CONTINUATION frames.
    pub async fn next_message(&mut self) -> Result<CompleteMessage, H2Error> {
        loop {
            if let Some(msg) = self.pending.pop_front() {
                return Ok(msg);
            }
            if self.goaway_received {
                return Err(H2Error::Closed);
            }
            let frame = self.io.read_frame().await?;
            self.handle_frame(frame).await?;
        }
    }

    /// Send RST_STREAM for one stream.
    pub async fn reset_stream(&mut self, stream_id: u32, code: ErrorCode) -> Result<(), H2Error> {
        if let Some(e) = self.streams.get_mut(&stream_id) {
            e.state = e.state.on_reset();
        }
        self.write(&Frame::RstStream(RstStreamFrame::new(stream_id, code)))
            .await
    }

    /// Send a PING and wait for its acknowledgement; used for liveness.
    pub async fn ping(&mut self) -> Result<(), H2Error> {
        let payload = *b"sww-ping";
        self.write(&Frame::Ping(PingFrame::new(payload))).await?;
        loop {
            let frame = self.io.read_frame().await?;
            if let Frame::Ping(p) = &frame {
                if p.ack && p.payload == payload {
                    self.trace_received(&frame);
                    return Ok(());
                }
            }
            self.handle_frame(frame).await?;
        }
    }

    /// Graceful shutdown: send GOAWAY(NO_ERROR).
    pub async fn close(&mut self) -> Result<(), H2Error> {
        let last = self.highest_peer_stream();
        sww_obs::counter("sww_http2_goaway_total", &[("direction", "sent")]).inc();
        self.write(&Frame::GoAway(GoAwayFrame::new(
            last,
            ErrorCode::NoError,
            Bytes::new(),
        )))
        .await
    }

    fn highest_peer_stream(&self) -> u32 {
        self.streams
            .keys()
            .copied()
            .filter(|id| match self.role {
                Role::Client => id % 2 == 0,
                Role::Server => id % 2 == 1,
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of live (non-closed) streams.
    pub fn active_streams(&self) -> usize {
        self.streams
            .values()
            .filter(|s| !s.state.is_closed())
            .count()
    }

    async fn handle_frame(&mut self, frame: Frame) -> Result<(), H2Error> {
        self.trace_received(&frame);
        // A header block in progress must be contiguous (RFC 9113 §6.10).
        if self.assembly.is_some() && !matches!(frame, Frame::Continuation(_)) {
            return Err(H2Error::protocol("frame interleaved in header block"));
        }
        match frame {
            Frame::Settings(s) => {
                if s.ack {
                    return Ok(());
                }
                // Initial-window changes retroactively adjust all stream
                // send windows (§6.9.2).
                let old_window = self.remote.initial_window_size;
                self.remote.apply(&s.params)?;
                self.remote_settings_seen = true;
                let delta = i64::from(self.remote.initial_window_size) - i64::from(old_window);
                if delta != 0 {
                    for entry in self.streams.values_mut() {
                        entry.send_window.adjust(delta)?;
                    }
                }
                self.enc
                    .set_max_table_size(self.remote.header_table_size as usize);
                self.write(&Frame::Settings(SettingsFrame::ack())).await
            }
            Frame::Ping(p) => {
                if !p.ack {
                    self.write(&Frame::Ping(p.to_ack())).await?;
                }
                Ok(())
            }
            Frame::WindowUpdate(w) => {
                if w.stream_id == 0 {
                    self.conn_send.grant(w.increment)?;
                } else if let Some(entry) = self.streams.get_mut(&w.stream_id) {
                    if let Err(e) = entry.send_window.grant(w.increment) {
                        // Stream-scoped overflow resets just the stream.
                        drop(e);
                        self.reset_stream(w.stream_id, ErrorCode::FlowControl)
                            .await?;
                    }
                }
                Ok(())
            }
            Frame::GoAway(g) => {
                self.goaway_received = true;
                sww_obs::counter("sww_http2_goaway_total", &[("direction", "received")]).inc();
                if g.error_code != ErrorCode::NoError {
                    return Err(H2Error::GoAway(
                        g.error_code,
                        String::from_utf8_lossy(&g.debug_data).into_owned(),
                    ));
                }
                Ok(())
            }
            Frame::Priority(_) => Ok(()), // deprecated; ignored
            Frame::RstStream(r) => {
                if let Some(entry) = self.streams.get_mut(&r.stream_id) {
                    entry.state = entry.state.on_reset();
                }
                Ok(())
            }
            Frame::PushPromise(p) => {
                // We always announce ENABLE_PUSH=0; a promise is an error.
                if !self.local.enable_push {
                    return Err(H2Error::protocol("PUSH_PROMISE with push disabled"));
                }
                self.reset_stream(p.promised_stream_id, ErrorCode::RefusedStream)
                    .await
            }
            Frame::Headers(h) => {
                if self.role == Role::Server && h.stream_id % 2 == 0 {
                    return Err(H2Error::protocol("client used even stream id"));
                }
                let entry = self
                    .streams
                    .entry(h.stream_id)
                    .or_insert_with(|| StreamEntry::new(self.remote.initial_window_size));
                entry.state = entry.state.on_recv_headers(h.end_stream)?;
                if h.end_headers {
                    self.finish_header_block(h.stream_id, &h.fragment, h.end_stream)?;
                } else {
                    self.assembly = Some(HeaderAssembly {
                        stream_id: h.stream_id,
                        end_stream: h.end_stream,
                        fragments: h.fragment.to_vec(),
                    });
                }
                Ok(())
            }
            Frame::Continuation(c) => {
                let mut asm = self
                    .assembly
                    .take()
                    .ok_or_else(|| H2Error::protocol("CONTINUATION without HEADERS"))?;
                if asm.stream_id != c.stream_id {
                    return Err(H2Error::protocol("CONTINUATION on wrong stream"));
                }
                if asm.fragments.len() + c.fragment.len() > MAX_HEADER_BLOCK {
                    return Err(H2Error::Connection(
                        ErrorCode::EnhanceYourCalm,
                        "header block exceeds limit".into(),
                    ));
                }
                asm.fragments.extend_from_slice(&c.fragment);
                if c.end_headers {
                    let fragments = std::mem::take(&mut asm.fragments);
                    self.finish_header_block(asm.stream_id, &fragments, asm.end_stream)?;
                } else {
                    self.assembly = Some(asm);
                }
                Ok(())
            }
            Frame::Data(d) => {
                let len = d.data.len();
                self.bytes_received += len as u64;
                let entry = self.streams.get_mut(&d.stream_id).ok_or_else(|| {
                    H2Error::protocol(format!("DATA on unknown stream {}", d.stream_id))
                })?;
                entry.state = entry.state.on_recv_data(d.stream_id, d.end_stream)?;
                entry.body.extend_from_slice(&d.data);
                let complete = d.end_stream;
                // Auto flow control: immediately return the credit.
                if len > 0 {
                    self.write(&Frame::WindowUpdate(WindowUpdateFrame::new(0, len as u32)))
                        .await?;
                    if !complete {
                        self.write(&Frame::WindowUpdate(WindowUpdateFrame::new(
                            d.stream_id,
                            len as u32,
                        )))
                        .await?;
                    }
                }
                if complete {
                    self.complete_message(d.stream_id)?;
                }
                Ok(())
            }
            Frame::Unknown { .. } => Ok(()), // extension frames are ignored
        }
    }

    fn finish_header_block(
        &mut self,
        stream_id: u32,
        block: &[u8],
        end_stream: bool,
    ) -> Result<(), H2Error> {
        let fields = self.dec.decode(block)?;
        let entry = self
            .streams
            .get_mut(&stream_id)
            .expect("stream created on HEADERS");
        entry.fields = Some(fields);
        if end_stream {
            self.complete_message(stream_id)?;
        }
        Ok(())
    }

    fn complete_message(&mut self, stream_id: u32) -> Result<(), H2Error> {
        let entry = self
            .streams
            .get_mut(&stream_id)
            .expect("completing unknown stream");
        let fields = entry
            .fields
            .take()
            .ok_or_else(|| H2Error::protocol("stream ended without headers"))?;
        let body = std::mem::take(&mut entry.body).freeze();
        self.pending.push_back(CompleteMessage {
            stream_id,
            fields,
            body,
        });
        Ok(())
    }
}
