//! HPACK encoder (RFC 7541 §6, encoding side).

use super::huffman;
use super::integer;
use super::table::{static_find, static_find_name, DynamicTable};
use super::HeaderField;

/// Representation tag bits (RFC 7541 §6).
const INDEXED: u8 = 0x80;
const LITERAL_INCREMENTAL: u8 = 0x40;
const TABLE_SIZE_UPDATE: u8 = 0x20;
const LITERAL_NEVER_INDEXED: u8 = 0x10;
const LITERAL_NO_INDEXING: u8 = 0x00;

/// Stateful HPACK encoder. One per connection direction; the dynamic table
/// mirrors the peer decoder's.
#[derive(Debug)]
pub struct Encoder {
    table: DynamicTable,
    /// Use Huffman string coding when it is shorter than raw.
    pub use_huffman: bool,
    /// Pending table size update to emit at the start of the next block.
    pending_resize: Option<usize>,
}

impl Encoder {
    /// Encoder with the default 4096-octet dynamic table.
    pub fn new() -> Encoder {
        Encoder {
            table: DynamicTable::new(),
            use_huffman: true,
            pending_resize: None,
        }
    }

    /// Request a dynamic table size change; emitted as a size update at the
    /// head of the next header block (RFC 7541 §4.2).
    pub fn set_max_table_size(&mut self, size: usize) {
        self.pending_resize = Some(size);
    }

    /// Current dynamic table octet size (for observability/tests).
    pub fn table_size(&self) -> usize {
        self.table.size()
    }

    /// Encode a complete header block.
    pub fn encode(&mut self, headers: &[HeaderField]) -> Vec<u8> {
        let mut out = Vec::with_capacity(headers.len() * 16);
        if let Some(size) = self.pending_resize.take() {
            self.table.resize(size);
            integer::encode(size as u64, 5, TABLE_SIZE_UPDATE, &mut out);
        }
        for h in headers {
            self.encode_field(h, false, &mut out);
        }
        out
    }

    /// Encode a block marking every field never-indexed (for sensitive
    /// headers such as authorization material, RFC 7541 §7.1.3).
    pub fn encode_sensitive(&mut self, headers: &[HeaderField]) -> Vec<u8> {
        let mut out = Vec::new();
        for h in headers {
            self.encode_field(h, true, &mut out);
        }
        out
    }

    fn encode_field(&mut self, h: &HeaderField, sensitive: bool, out: &mut Vec<u8>) {
        if sensitive {
            let name_idx = static_find_name(&h.name)
                .or_else(|| self.table.find_name(&h.name))
                .unwrap_or(0);
            integer::encode(name_idx as u64, 4, LITERAL_NEVER_INDEXED, out);
            if name_idx == 0 {
                self.encode_string(h.name.as_bytes(), out);
            }
            self.encode_string(h.value.as_bytes(), out);
            return;
        }
        // 1. Exact match → indexed representation.
        if let Some(idx) =
            static_find(&h.name, &h.value).or_else(|| self.table.find(&h.name, &h.value))
        {
            integer::encode(idx as u64, 7, INDEXED, out);
            return;
        }
        // 2. Literal with incremental indexing, reusing a known name when
        //    possible. Very large values would churn the table, so they are
        //    sent without indexing instead.
        let huge = h.size() > self.table.max_size() / 2;
        let (tag, prefix) = if huge {
            (LITERAL_NO_INDEXING, 4)
        } else {
            (LITERAL_INCREMENTAL, 6)
        };
        let name_idx = static_find_name(&h.name)
            .or_else(|| self.table.find_name(&h.name))
            .unwrap_or(0);
        integer::encode(name_idx as u64, prefix, tag, out);
        if name_idx == 0 {
            self.encode_string(h.name.as_bytes(), out);
        }
        self.encode_string(h.value.as_bytes(), out);
        if !huge {
            self.table.insert(h.clone());
        }
    }

    fn encode_string(&self, s: &[u8], out: &mut Vec<u8>) {
        if self.use_huffman {
            let hlen = huffman::encoded_len(s);
            if hlen < s.len() {
                integer::encode(hlen as u64, 7, 0x80, out);
                out.extend_from_slice(&huffman::encode(s));
                return;
            }
        }
        integer::encode(s.len() as u64, 7, 0x00, out);
        out.extend_from_slice(s);
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Encoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::super::Decoder;
    use super::*;

    #[test]
    fn indexed_static_fields_are_one_octet() {
        let mut enc = Encoder::new();
        let block = enc.encode(&[HeaderField::new(":method", "GET")]);
        assert_eq!(block, vec![0x82]);
        let block = enc.encode(&[HeaderField::new(":status", "200")]);
        assert_eq!(block, vec![0x88]);
    }

    #[test]
    fn repeated_custom_header_becomes_indexed() {
        let mut enc = Encoder::new();
        let h = vec![HeaderField::new("x-sww-ability", "generate")];
        let first = enc.encode(&h);
        let second = enc.encode(&h);
        assert!(first.len() > 2);
        assert_eq!(
            second.len(),
            1,
            "second occurrence should be a 1-octet index"
        );
    }

    #[test]
    fn sensitive_fields_never_indexed() {
        let mut enc = Encoder::new();
        let h = vec![HeaderField::new("authorization", "Bearer secret")];
        let b1 = enc.encode_sensitive(&h);
        let b2 = enc.encode_sensitive(&h);
        // No dynamic-table hit: both encodings identical and non-trivial.
        assert_eq!(b1, b2);
        assert!(b1.len() > 2);
        assert_eq!(b1[0] & 0xf0, 0x10, "never-indexed tag");
        let mut dec = Decoder::new();
        assert_eq!(dec.decode(&b1).unwrap(), h);
    }

    #[test]
    fn huge_values_skip_the_table() {
        let mut enc = Encoder::new();
        let big = "p".repeat(3000);
        let h = vec![HeaderField::new("x-prompt", big)];
        enc.encode(&h);
        assert_eq!(enc.table_size(), 0, "huge literal must not enter the table");
        let mut dec = Decoder::new();
        let again = enc.encode(&h);
        assert_eq!(dec.decode(&again).unwrap(), h);
    }

    #[test]
    fn table_size_update_is_emitted_and_decoded() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        enc.set_max_table_size(128);
        let block = enc.encode(&[HeaderField::new("a", "b")]);
        assert_eq!(block[0] & 0xe0, 0x20, "starts with size update");
        dec.decode(&block).unwrap();
    }

    #[test]
    fn huffman_toggle_roundtrips() {
        for use_huffman in [true, false] {
            let mut enc = Encoder::new();
            enc.use_huffman = use_huffman;
            let mut dec = Decoder::new();
            let h = vec![
                HeaderField::new(":path", "/wiki/Landscape?search=true"),
                HeaderField::new("content-type", "text/html; charset=utf-8"),
            ];
            let block = enc.encode(&h);
            assert_eq!(dec.decode(&block).unwrap(), h);
        }
    }
}
