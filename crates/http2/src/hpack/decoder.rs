//! HPACK decoder (RFC 7541 §6, decoding side).

use super::huffman;
use super::integer;
use super::table::{lookup, DynamicTable};
use super::HeaderField;
use crate::error::H2Error;

/// Upper bound on a decoded header list's total size, protecting against
/// decompression bombs (mirrors SETTINGS_MAX_HEADER_LIST_SIZE).
const MAX_HEADER_LIST_SIZE: usize = 1 << 20;

/// Stateful HPACK decoder.
#[derive(Debug)]
pub struct Decoder {
    table: DynamicTable,
}

impl Decoder {
    /// Decoder with the default 4096-octet dynamic table.
    pub fn new() -> Decoder {
        Decoder {
            table: DynamicTable::new(),
        }
    }

    /// Set the SETTINGS_HEADER_TABLE_SIZE ceiling this decoder enforces on
    /// size updates from the peer encoder.
    pub fn set_capacity_limit(&mut self, limit: usize) {
        self.table.set_capacity_limit(limit);
    }

    /// Current dynamic table octet size.
    pub fn table_size(&self) -> usize {
        self.table.size()
    }

    /// Decode a complete header block into its field list.
    pub fn decode(&mut self, block: &[u8]) -> Result<Vec<HeaderField>, H2Error> {
        let mut pos = 0usize;
        let mut out = Vec::new();
        let mut list_size = 0usize;
        let mut seen_field = false;
        while pos < block.len() {
            let tag = block[pos];
            let field = if tag & 0x80 != 0 {
                // Indexed Header Field.
                let idx = integer::decode(block, &mut pos, 7)?;
                seen_field = true;
                lookup(&self.table, idx as usize)
                    .ok_or_else(|| H2Error::compression(format!("bad index {idx}")))?
            } else if tag & 0xc0 == 0x40 {
                // Literal with Incremental Indexing.
                let f = self.literal(block, &mut pos, 6)?;
                seen_field = true;
                self.table.insert(f.clone());
                f
            } else if tag & 0xe0 == 0x20 {
                // Dynamic Table Size Update: only legal before any field
                // in the block (RFC 7541 §4.2).
                if seen_field {
                    return Err(H2Error::compression("size update after field"));
                }
                let size = integer::decode(block, &mut pos, 5)? as usize;
                if size > self.table.capacity_limit() {
                    return Err(H2Error::compression("size update above SETTINGS limit"));
                }
                self.table.resize(size);
                continue;
            } else {
                // Literal without Indexing (0000) or Never Indexed (0001):
                // identical decoding, 4-bit prefix.
                let f = self.literal(block, &mut pos, 4)?;
                seen_field = true;
                f
            };
            list_size += field.size();
            if list_size > MAX_HEADER_LIST_SIZE {
                return Err(H2Error::compression("header list too large"));
            }
            out.push(field);
        }
        Ok(out)
    }

    fn literal(
        &mut self,
        block: &[u8],
        pos: &mut usize,
        prefix: u8,
    ) -> Result<HeaderField, H2Error> {
        let name_idx = integer::decode(block, pos, prefix)?;
        let name = if name_idx == 0 {
            self.string(block, pos)?
        } else {
            lookup(&self.table, name_idx as usize)
                .ok_or_else(|| H2Error::compression(format!("bad name index {name_idx}")))?
                .name
        };
        let value = self.string(block, pos)?;
        Ok(HeaderField { name, value })
    }

    fn string(&self, block: &[u8], pos: &mut usize) -> Result<String, H2Error> {
        let tag = *block
            .get(*pos)
            .ok_or_else(|| H2Error::compression("string truncated"))?;
        let huff = tag & 0x80 != 0;
        let len = integer::decode(block, pos, 7)? as usize;
        let end = pos
            .checked_add(len)
            .ok_or_else(|| H2Error::compression("string length overflow"))?;
        if end > block.len() {
            return Err(H2Error::compression("string extends past block"));
        }
        let raw = &block[*pos..end];
        *pos = end;
        let bytes = if huff {
            huffman::decode(raw)?
        } else {
            raw.to_vec()
        };
        String::from_utf8(bytes).map_err(|_| H2Error::compression("header field not UTF-8"))
    }
}

impl Default for Decoder {
    fn default() -> Self {
        Decoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::super::Encoder;
    use super::*;

    #[test]
    fn decodes_indexed_static() {
        let mut dec = Decoder::new();
        let out = dec.decode(&[0x82, 0x87]).unwrap();
        assert_eq!(out[0], HeaderField::new(":method", "GET"));
        assert_eq!(out[1], HeaderField::new(":scheme", "https"));
    }

    #[test]
    fn bad_index_rejected() {
        let mut dec = Decoder::new();
        // Index 70 with an empty dynamic table.
        let mut block = Vec::new();
        integer::encode(70, 7, 0x80, &mut block);
        assert!(dec.decode(&block).is_err());
    }

    #[test]
    fn index_zero_rejected() {
        let mut dec = Decoder::new();
        assert!(dec.decode(&[0x80]).is_err());
    }

    #[test]
    fn size_update_after_field_rejected() {
        let mut dec = Decoder::new();
        // :method GET, then size update — illegal ordering.
        assert!(dec.decode(&[0x82, 0x20]).is_err());
    }

    #[test]
    fn size_update_above_limit_rejected() {
        let mut dec = Decoder::new();
        dec.set_capacity_limit(100);
        let mut block = Vec::new();
        integer::encode(200, 5, 0x20, &mut block);
        assert!(dec.decode(&block).is_err());
    }

    #[test]
    fn truncated_string_rejected() {
        let mut dec = Decoder::new();
        // Literal, new name, raw string of length 5 but only 2 octets.
        assert!(dec.decode(&[0x40, 0x05, b'a', b'b']).is_err());
    }

    #[test]
    fn non_utf8_rejected() {
        let mut dec = Decoder::new();
        // Literal with new name "a" and raw value 0xff.
        let block = [0x40, 0x01, b'a', 0x01, 0xff];
        assert!(dec.decode(&block).is_err());
    }

    #[test]
    fn state_synchronizes_across_blocks() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let reqs = [
            vec![
                HeaderField::new(":method", "GET"),
                HeaderField::new(":path", "/a"),
                HeaderField::new("x-gen", "img"),
            ],
            vec![
                HeaderField::new(":method", "GET"),
                HeaderField::new(":path", "/b"),
                HeaderField::new("x-gen", "img"),
            ],
            vec![
                HeaderField::new(":method", "POST"),
                HeaderField::new(":path", "/a"),
                HeaderField::new("x-gen", "txt"),
            ],
        ];
        for r in &reqs {
            let block = enc.encode(r);
            assert_eq!(&dec.decode(&block).unwrap(), r);
        }
        assert_eq!(enc.table_size(), dec.table_size(), "tables must mirror");
    }

    #[test]
    fn empty_block_is_empty_list() {
        let mut dec = Decoder::new();
        assert!(dec.decode(&[]).unwrap().is_empty());
    }
}
