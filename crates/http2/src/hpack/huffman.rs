//! Huffman string coding for HPACK string literals (RFC 7541 §5.2).
//!
//! Mechanism-identical to the RFC: a static canonical Huffman code over the
//! 256 octet values plus EOS, most-significant-bit-first bit packing, and
//! 1-bit padding that must form a prefix of the EOS code. The *table* is
//! derived locally: a Huffman tree is built once from an embedded frequency
//! model of HTTP header text (method/path/header-name characters weighted
//! heavily), then converted to a canonical code. Both peers in this system
//! share the implementation, so the code is self-consistent; we do not
//! claim interop with RFC 7541's Appendix B table and the connection layer
//! never assumes it.

use crate::error::H2Error;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Symbol count: 256 octets + EOS.
const NSYM: usize = 257;
/// Index of the EOS pseudo-symbol.
const EOS: usize = 256;

/// A canonical code entry: the code bits (right-aligned) and bit length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Code {
    bits: u32,
    len: u8,
}

/// Per-symbol weight model for header text. Higher weight → shorter code.
fn weight(sym: usize) -> u64 {
    if sym >= 256 {
        return 1; // EOS: maximal-length code
    }
    let b = sym as u8;
    match b {
        // Lowercase letters dominate header names and URL paths.
        b'a'..=b'z' => 180,
        b'0'..=b'9' => 140,
        // Structural characters of paths, tokens and field values.
        b'/' | b'-' | b'.' => 120,
        b':' | b'=' | b';' | b',' | b' ' => 90,
        b'A'..=b'Z' => 60,
        b'%' | b'&' | b'?' | b'_' | b'"' => 30,
        0x20..=0x7e => 12, // other printable ASCII
        0x80..=0xff => 2,  // UTF-8 continuation/lead bytes
        _ => 1,            // control characters
    }
}

/// Build code lengths with a plain Huffman construction over the weights.
fn code_lengths() -> [u8; NSYM] {
    // Heap of (weight, tie-break id) → node index.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Node {
        w: u64,
        id: usize,
    }
    let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
    // parent[i] for tree nodes; leaves are 0..NSYM.
    let mut parent: Vec<usize> = vec![usize::MAX; NSYM];
    for sym in 0..NSYM {
        heap.push(Reverse(Node {
            w: weight(sym),
            id: sym,
        }));
    }
    let mut next_id = NSYM;
    while heap.len() > 1 {
        let Reverse(a) = heap.pop().expect("len>1");
        let Reverse(b) = heap.pop().expect("len>1");
        parent.push(usize::MAX);
        parent[a.id] = next_id;
        parent[b.id] = next_id;
        heap.push(Reverse(Node {
            w: a.w + b.w,
            id: next_id,
        }));
        next_id += 1;
    }
    let mut lengths = [0u8; NSYM];
    for (sym, len) in lengths.iter_mut().enumerate() {
        let mut node = sym;
        let mut depth = 0u8;
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        *len = depth;
    }
    lengths
}

/// Assign canonical codes from lengths: sort by (length, symbol), count up.
fn canonical_codes(lengths: &[u8; NSYM]) -> Vec<Code> {
    let mut order: Vec<usize> = (0..NSYM).collect();
    order.sort_by_key(|&s| (lengths[s], s));
    let mut codes = vec![Code { bits: 0, len: 0 }; NSYM];
    let mut code: u32 = 0;
    let mut prev_len: u8 = 0;
    for &sym in &order {
        let len = lengths[sym];
        if prev_len != 0 {
            code = (code + 1) << (len - prev_len);
        } else {
            code <<= len - prev_len;
        }
        codes[sym] = Code { bits: code, len };
        prev_len = len;
    }
    codes
}

/// Binary decode trie stored as a flat array: `next[node][bit]`, with leaf
/// markers carrying the decoded symbol.
struct Trie {
    // node*2+bit -> child index; symbol nodes are encoded as NSYM offset.
    next: Vec<u32>,
}

const LEAF_BASE: u32 = 1 << 24;

impl Trie {
    fn build(codes: &[Code]) -> Trie {
        let mut next = vec![0u32; 2]; // node 0 = root
        for (sym, code) in codes.iter().enumerate() {
            let mut node = 0usize;
            for i in (0..code.len).rev() {
                let bit = ((code.bits >> i) & 1) as usize;
                let slot = node * 2 + bit;
                if i == 0 {
                    next[slot] = LEAF_BASE + sym as u32;
                } else if next[slot] == 0 {
                    let new_node = next.len() / 2;
                    next.extend([0, 0]);
                    next[slot] = new_node as u32;
                    node = new_node;
                } else {
                    node = next[slot] as usize;
                }
            }
        }
        Trie { next }
    }
}

struct Tables {
    codes: Vec<Code>,
    trie: Trie,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let lengths = code_lengths();
        let codes = canonical_codes(&lengths);
        let trie = Trie::build(&codes);
        Tables { codes, trie }
    })
}

/// Huffman-encode `input`. The result is padded to an octet boundary with
/// 1-bits (a prefix of the EOS code, which is all 1s under the canonical
/// ordering since EOS has a maximal-length code).
pub fn encode(input: &[u8]) -> Vec<u8> {
    let t = tables();
    let mut out = Vec::with_capacity(input.len());
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &b in input {
        let code = t.codes[b as usize];
        acc = (acc << code.len) | u64::from(code.bits);
        nbits += u32::from(code.len);
        while nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        // Pad with 1s.
        let pad = 8 - nbits;
        out.push(((acc << pad) as u8) | ((1u8 << pad) - 1));
    }
    out
}

/// The encoded length of `input` in octets, without encoding it. Used by
/// the encoder to pick the shorter of raw and Huffman forms.
pub fn encoded_len(input: &[u8]) -> usize {
    let t = tables();
    let bits: u64 = input
        .iter()
        .map(|&b| u64::from(t.codes[b as usize].len))
        .sum();
    (bits as usize).div_ceil(8)
}

/// Decode a Huffman-coded string.
///
/// The code is complete (Kraft equality), so every bit sequence walks the
/// trie without dead ends; the error cases are (a) decoding the EOS symbol,
/// and (b) trailing bits after the last symbol that are not an all-ones run
/// shorter than 8 bits (i.e. not valid EOS-prefix padding, RFC 7541 §5.2).
pub fn decode(input: &[u8]) -> Result<Vec<u8>, H2Error> {
    let t = tables();
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut node: usize = 0;
    // Bits consumed since the last completed symbol, and how many were 1s.
    let mut bits_pending: u32 = 0;
    let mut ones_pending: u32 = 0;
    for &byte in input {
        for i in (0..8).rev() {
            let bit = ((byte >> i) & 1) as usize;
            bits_pending += 1;
            ones_pending += bit as u32;
            let nxt = t.trie.next[node * 2 + bit];
            if nxt >= LEAF_BASE {
                let sym = (nxt - LEAF_BASE) as usize;
                if sym == EOS {
                    return Err(H2Error::compression("EOS symbol in huffman string"));
                }
                out.push(sym as u8);
                node = 0;
                bits_pending = 0;
                ones_pending = 0;
            } else {
                node = nxt as usize;
            }
        }
    }
    if bits_pending > 0 && (bits_pending > 7 || ones_pending != bits_pending) {
        return Err(H2Error::compression("invalid huffman padding"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ascii() {
        for s in [
            "www.example.com",
            "no-cache",
            "/landscape?q=search",
            "text/html; charset=utf-8",
            "",
            "a",
        ] {
            let enc = encode(s.as_bytes());
            assert_eq!(decode(&enc).unwrap(), s.as_bytes(), "s={s}");
        }
    }

    #[test]
    fn roundtrip_all_octets() {
        let all: Vec<u8> = (0..=255u8).collect();
        let enc = encode(&all);
        assert_eq!(decode(&enc).unwrap(), all);
    }

    #[test]
    fn compresses_header_text() {
        let s = b"cache-control: max-age=3600, stale-while-revalidate=60";
        let enc = encode(s);
        assert!(
            enc.len() < s.len(),
            "expected compression: {} vs {}",
            enc.len(),
            s.len()
        );
    }

    #[test]
    fn encoded_len_matches_encode() {
        for s in ["abc", "/generated-content/image.jpg", "::::", "\u{0}\u{1}"] {
            assert_eq!(encoded_len(s.as_bytes()), encode(s.as_bytes()).len());
        }
    }

    #[test]
    fn kraft_equality_holds() {
        // A Huffman code over all symbols is complete: Kraft sum == 1.
        let lengths = code_lengths();
        let max = *lengths.iter().max().unwrap() as u32;
        let total: u128 = lengths.iter().map(|&l| 1u128 << (max - u32::from(l))).sum();
        assert_eq!(total, 1u128 << max);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let lengths = code_lengths();
        let codes = canonical_codes(&lengths);
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (short, long) = if a.len <= b.len { (a, b) } else { (b, a) };
                let prefix = long.bits >> (long.len - short.len);
                assert!(
                    !(prefix == short.bits && short.len > 0),
                    "code {i} is a prefix of {j}"
                );
            }
        }
    }

    #[test]
    fn common_chars_get_short_codes() {
        let lengths = code_lengths();
        assert!(lengths[b'e' as usize] < lengths[b'~' as usize]);
        assert!(lengths[b'/' as usize] < lengths[0x01]);
        assert_eq!(
            lengths[EOS],
            *lengths.iter().max().unwrap(),
            "EOS must be a maximal-length code so 1-padding is its prefix"
        );
    }

    #[test]
    fn overlong_padding_rejected() {
        // A full byte of 1s after the last symbol is 8 bits of padding,
        // which RFC 7541 §5.2 forbids (padding is strictly < 8 bits). EOS
        // has length > 8 (257 symbols force max depth >= 9), so the ones
        // never complete a symbol.
        let mut enc = encode(b"ab");
        enc.push(0xff);
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn truncated_code_with_zero_bits_rejected() {
        // End the input in the middle of a code whose pending bits include
        // a 0: not an EOS prefix, must be rejected. The code for byte 0x00
        // is long (>8 bits) and, not being the all-ones code, contains a 0
        // in its first 8 bits; its first byte alone is a truncated code.
        let enc = encode(&[0x00]);
        assert!(enc.len() >= 2);
        assert!(decode(&enc[..1]).is_err());
    }
}
