//! HPACK header compression (RFC 7541).
//!
//! Implements the full representation set: indexed fields, literals with
//! incremental indexing, literals without indexing, never-indexed literals,
//! and dynamic table size updates. String literals may be Huffman coded;
//! see [`huffman`] for how the code table is derived.

pub mod decoder;
pub mod encoder;
pub mod huffman;
pub mod integer;
pub mod table;

pub use decoder::Decoder;
pub use encoder::Encoder;

/// A decoded header field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeaderField {
    /// Field name (lowercase by HTTP/2 convention).
    pub name: String,
    /// Field value.
    pub value: String,
}

impl HeaderField {
    /// Construct a field.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> HeaderField {
        HeaderField {
            name: name.into(),
            value: value.into(),
        }
    }

    /// RFC 7541 §4.1 entry size: name octets + value octets + 32.
    pub fn size(&self) -> usize {
        self.name.len() + self.value.len() + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_size_rule() {
        assert_eq!(HeaderField::new("a", "bc").size(), 35);
        assert_eq!(HeaderField::new("", "").size(), 32);
    }

    #[test]
    fn encoder_decoder_roundtrip_basic() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let headers = vec![
            HeaderField::new(":method", "GET"),
            HeaderField::new(":path", "/blog/hike"),
            HeaderField::new(":scheme", "https"),
            HeaderField::new(":authority", "sww.example"),
            HeaderField::new("x-sww-generate", "1"),
        ];
        let block = enc.encode(&headers);
        let out = dec.decode(&block).unwrap();
        assert_eq!(out, headers);

        // Second request: dynamic-table hits should shrink the block.
        let block2 = enc.encode(&headers);
        assert!(block2.len() < block.len());
        assert_eq!(dec.decode(&block2).unwrap(), headers);
    }
}
