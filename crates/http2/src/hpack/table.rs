//! HPACK indexing tables (RFC 7541 §2.3): the 61-entry static table from
//! Appendix A and the FIFO dynamic table with size-based eviction.

use super::HeaderField;
use std::collections::VecDeque;

/// RFC 7541 Appendix A static table, indices 1..=61.
pub static STATIC_TABLE: [(&str, &str); 61] = [
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// Default dynamic table capacity (SETTINGS_HEADER_TABLE_SIZE default).
pub const DEFAULT_TABLE_SIZE: usize = 4096;

/// The dynamic table: newest entry has index 62, older entries higher.
#[derive(Debug)]
pub struct DynamicTable {
    entries: VecDeque<HeaderField>,
    size: usize,
    max_size: usize,
    /// Protocol ceiling (from SETTINGS); size updates may not exceed it.
    capacity_limit: usize,
}

impl DynamicTable {
    /// A table with the default 4096-octet capacity.
    pub fn new() -> DynamicTable {
        DynamicTable::with_capacity(DEFAULT_TABLE_SIZE)
    }

    /// A table with an explicit capacity.
    pub fn with_capacity(max_size: usize) -> DynamicTable {
        DynamicTable {
            entries: VecDeque::new(),
            size: 0,
            max_size,
            capacity_limit: max_size,
        }
    }

    /// Current octet size (RFC 7541 §4.1 accounting).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current maximum size.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// The SETTINGS-imposed ceiling for dynamic table size updates.
    pub fn capacity_limit(&self) -> usize {
        self.capacity_limit
    }

    /// Raise/lower the SETTINGS ceiling (SETTINGS_HEADER_TABLE_SIZE).
    pub fn set_capacity_limit(&mut self, limit: usize) {
        self.capacity_limit = limit;
        if self.max_size > limit {
            self.resize(limit);
        }
    }

    /// Number of dynamic entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Apply a dynamic table size update (RFC 7541 §6.3), evicting as needed.
    pub fn resize(&mut self, new_max: usize) {
        self.max_size = new_max;
        self.evict();
    }

    /// Insert a field at the head (index 62), evicting from the tail.
    /// An entry larger than the whole table empties it (RFC 7541 §4.4).
    pub fn insert(&mut self, field: HeaderField) {
        let sz = field.size();
        if sz > self.max_size {
            self.entries.clear();
            self.size = 0;
            return;
        }
        self.size += sz;
        self.entries.push_front(field);
        self.evict();
    }

    fn evict(&mut self) {
        while self.size > self.max_size {
            let victim = self.entries.pop_back().expect("size>0 implies entries");
            self.size -= victim.size();
        }
    }

    /// Dynamic-table lookup by absolute HPACK index (62-based).
    pub fn get(&self, index: usize) -> Option<&HeaderField> {
        index
            .checked_sub(STATIC_TABLE.len() + 1)
            .and_then(|i| self.entries.get(i))
    }

    /// Find the absolute index of an exact `(name, value)` match.
    pub fn find(&self, name: &str, value: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|f| f.name == name && f.value == value)
            .map(|i| i + STATIC_TABLE.len() + 1)
    }

    /// Find the absolute index of any entry with this name.
    pub fn find_name(&self, name: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|f| f.name == name)
            .map(|i| i + STATIC_TABLE.len() + 1)
    }
}

impl Default for DynamicTable {
    fn default() -> Self {
        DynamicTable::new()
    }
}

/// Resolve an absolute HPACK index against static then dynamic tables.
pub fn lookup(table: &DynamicTable, index: usize) -> Option<HeaderField> {
    if index == 0 {
        return None;
    }
    if index <= STATIC_TABLE.len() {
        let (n, v) = STATIC_TABLE[index - 1];
        return Some(HeaderField::new(n, v));
    }
    table.get(index).cloned()
}

/// Search the static table for an exact match; returns the 1-based index.
pub fn static_find(name: &str, value: &str) -> Option<usize> {
    STATIC_TABLE
        .iter()
        .position(|&(n, v)| n == name && v == value)
        .map(|i| i + 1)
}

/// Search the static table for a name match; returns the 1-based index.
pub fn static_find_name(name: &str) -> Option<usize> {
    STATIC_TABLE
        .iter()
        .position(|&(n, _)| n == name)
        .map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_table_well_known_entries() {
        assert_eq!(STATIC_TABLE[1], (":method", "GET"));
        assert_eq!(STATIC_TABLE[7], (":status", "200"));
        assert_eq!(STATIC_TABLE[60], ("www-authenticate", ""));
        assert_eq!(static_find(":method", "POST"), Some(3));
        assert_eq!(static_find_name("content-type"), Some(31));
        assert_eq!(static_find(":path", "/nope"), None);
    }

    #[test]
    fn insertion_indexes_from_62() {
        let mut t = DynamicTable::new();
        t.insert(HeaderField::new("a", "1"));
        t.insert(HeaderField::new("b", "2"));
        assert_eq!(lookup(&t, 62).unwrap(), HeaderField::new("b", "2"));
        assert_eq!(lookup(&t, 63).unwrap(), HeaderField::new("a", "1"));
        assert_eq!(t.find("a", "1"), Some(63));
        assert_eq!(t.find_name("b"), Some(62));
    }

    #[test]
    fn eviction_on_overflow() {
        // Each entry is 1+1+32 = 34 octets; capacity for exactly two.
        let mut t = DynamicTable::with_capacity(68);
        t.insert(HeaderField::new("a", "1"));
        t.insert(HeaderField::new("b", "2"));
        t.insert(HeaderField::new("c", "3"));
        assert_eq!(t.len(), 2);
        assert!(t.find_name("a").is_none(), "oldest entry evicted");
        assert_eq!(t.size(), 68);
    }

    #[test]
    fn oversized_entry_clears_table() {
        let mut t = DynamicTable::with_capacity(40);
        t.insert(HeaderField::new("a", "1"));
        t.insert(HeaderField::new("long-name", "very-long-value-exceeding"));
        assert!(t.is_empty());
        assert_eq!(t.size(), 0);
    }

    #[test]
    fn resize_evicts() {
        let mut t = DynamicTable::with_capacity(200);
        for i in 0..5 {
            t.insert(HeaderField::new(format!("h{i}"), "v"));
        }
        t.resize(70);
        assert!(t.size() <= 70);
        assert_eq!(t.max_size(), 70);
    }

    #[test]
    fn index_zero_and_out_of_range() {
        let t = DynamicTable::new();
        assert!(lookup(&t, 0).is_none());
        assert!(lookup(&t, 62).is_none());
        assert!(lookup(&t, 9999).is_none());
    }
}
