//! HPACK primitive integer coding (RFC 7541 §5.1).
//!
//! An integer is coded with an N-bit prefix inside the first octet. Values
//! below `2^N - 1` fit the prefix; larger values set the prefix to all ones
//! and continue in 7-bit little-endian groups with a continuation bit.

use crate::error::H2Error;

/// Encode `value` with an `prefix_bits`-bit prefix, OR-ing `first_octet_bits`
/// (the representation tag bits) into the first octet.
pub fn encode(value: u64, prefix_bits: u8, first_octet_bits: u8, out: &mut Vec<u8>) {
    debug_assert!((1..=8).contains(&prefix_bits));
    let max_prefix = (1u64 << prefix_bits) - 1;
    if value < max_prefix {
        out.push(first_octet_bits | value as u8);
        return;
    }
    out.push(first_octet_bits | max_prefix as u8);
    let mut rest = value - max_prefix;
    while rest >= 128 {
        out.push((rest % 128) as u8 | 0x80);
        rest /= 128;
    }
    out.push(rest as u8);
}

/// Decode an integer with an `prefix_bits`-bit prefix starting at `buf[*pos]`.
/// Advances `pos` past the integer.
pub fn decode(buf: &[u8], pos: &mut usize, prefix_bits: u8) -> Result<u64, H2Error> {
    debug_assert!((1..=8).contains(&prefix_bits));
    let first = *buf
        .get(*pos)
        .ok_or_else(|| H2Error::compression("integer truncated"))?;
    *pos += 1;
    let max_prefix = (1u64 << prefix_bits) - 1;
    let mut value = u64::from(first) & max_prefix;
    if value < max_prefix {
        return Ok(value);
    }
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| H2Error::compression("integer continuation truncated"))?;
        *pos += 1;
        // Bound the representation: 10 continuation octets overflow u64.
        if shift > 63 {
            return Err(H2Error::compression("integer too large"));
        }
        value = value
            .checked_add(u64::from(b & 0x7f) << shift)
            .ok_or_else(|| H2Error::compression("integer overflow"))?;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64, prefix: u8) -> u64 {
        let mut buf = Vec::new();
        encode(v, prefix, 0, &mut buf);
        let mut pos = 0;
        let out = decode(&buf, &mut pos, prefix).unwrap();
        assert_eq!(pos, buf.len());
        out
    }

    #[test]
    fn rfc7541_examples() {
        // C.1.1: 10 with 5-bit prefix => 0b01010.
        let mut buf = Vec::new();
        encode(10, 5, 0, &mut buf);
        assert_eq!(buf, [0b01010]);
        // C.1.2: 1337 with 5-bit prefix => 1f 9a 0a.
        buf.clear();
        encode(1337, 5, 0, &mut buf);
        assert_eq!(buf, [0x1f, 0x9a, 0x0a]);
        // C.1.3: 42 with 8-bit prefix => 2a.
        buf.clear();
        encode(42, 8, 0, &mut buf);
        assert_eq!(buf, [0x2a]);
    }

    #[test]
    fn prefix_tag_bits_preserved() {
        let mut buf = Vec::new();
        encode(2, 7, 0x80, &mut buf);
        assert_eq!(buf, [0x82]); // indexed header field representation
    }

    #[test]
    fn boundary_values() {
        for prefix in 1..=8u8 {
            for v in [
                0,
                1,
                (1u64 << prefix) - 2,
                (1u64 << prefix) - 1,
                1u64 << prefix,
                127,
                128,
                16_383,
                u64::from(u32::MAX),
                u64::MAX,
            ] {
                assert_eq!(roundtrip(v, prefix), v, "v={v} prefix={prefix}");
            }
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut pos = 0;
        assert!(decode(&[], &mut pos, 5).is_err());
        // Prefix saturated but no continuation octets.
        let mut pos = 0;
        assert!(decode(&[0x1f], &mut pos, 5).is_err());
        // Unterminated continuation.
        let mut pos = 0;
        assert!(decode(&[0x1f, 0x80, 0x80], &mut pos, 5).is_err());
    }

    #[test]
    fn overflow_rejected() {
        // 11 continuation octets worth of 1s overflows u64.
        let mut buf = vec![0xffu8];
        buf.extend(std::iter::repeat_n(0xff, 10));
        buf.push(0x7f);
        let mut pos = 0;
        assert!(decode(&buf, &mut pos, 8).is_err());
    }
}
