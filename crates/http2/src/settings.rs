//! Connection settings (RFC 9113 §6.5.2) and the paper's §3 extension.
//!
//! The paper adds one parameter, `SETTINGS_GEN_ABILITY` (identifier `0x07`,
//! the first unreserved value), whose 32-bit value advertises the sender's
//! client-side content-generation capability. The prototype uses value 1 =
//! "full generation"; the paper notes the 32-bit field can negotiate richer
//! options such as upscale-only, which [`GenAbility`] models as a bitmask.

use crate::error::H2Error;
use crate::frame::settings_frame::SettingPair;
use crate::frame::{DEFAULT_MAX_FRAME_SIZE, MAX_ALLOWED_FRAME_SIZE};

/// SETTINGS_HEADER_TABLE_SIZE (RFC 9113).
pub const SETTINGS_HEADER_TABLE_SIZE: u16 = 0x1;
/// SETTINGS_ENABLE_PUSH.
pub const SETTINGS_ENABLE_PUSH: u16 = 0x2;
/// SETTINGS_MAX_CONCURRENT_STREAMS.
pub const SETTINGS_MAX_CONCURRENT_STREAMS: u16 = 0x3;
/// SETTINGS_INITIAL_WINDOW_SIZE.
pub const SETTINGS_INITIAL_WINDOW_SIZE: u16 = 0x4;
/// SETTINGS_MAX_FRAME_SIZE.
pub const SETTINGS_MAX_FRAME_SIZE: u16 = 0x5;
/// SETTINGS_MAX_HEADER_LIST_SIZE.
pub const SETTINGS_MAX_HEADER_LIST_SIZE: u16 = 0x6;
/// The paper's extension: generative-ability advertisement (§3).
pub const SETTINGS_GEN_ABILITY: u16 = 0x7;

/// Generative capability advertised via `SETTINGS_GEN_ABILITY`.
///
/// Encoded in the setting's 32-bit value. Value `0` (or an absent setting)
/// means no capability; value `1` is the paper's prototype encoding for
/// full generation. Higher bits refine the capability as the paper's §3
/// suggests ("the 32-bit field can be used \[to\] negotiate more complex
/// support options, such as upscale-only").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenAbility {
    bits: u32,
}

impl GenAbility {
    /// Bit 0: full content generation (the paper's prototype value 1).
    pub const GENERATE: u32 = 1 << 0;
    /// Bit 1: image upscaling only (§2.2).
    pub const UPSCALE: u32 = 1 << 1;
    /// Bit 2: text expansion only.
    pub const TEXT: u32 = 1 << 2;
    /// Bit 3: video frame-rate boosting / resolution upscale (§3.2).
    pub const VIDEO: u32 = 1 << 3;

    /// No generative capability (default behaviour).
    pub fn none() -> GenAbility {
        GenAbility { bits: 0 }
    }

    /// Full generation, the paper's prototype setting (value 1).
    pub fn full() -> GenAbility {
        GenAbility {
            bits: Self::GENERATE,
        }
    }

    /// Upscale-only capability.
    pub fn upscale_only() -> GenAbility {
        GenAbility {
            bits: Self::UPSCALE,
        }
    }

    /// Capability from raw bits.
    pub fn from_bits(bits: u32) -> GenAbility {
        GenAbility { bits }
    }

    /// Raw 32-bit wire value.
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Whether any generative capability is advertised.
    pub fn supported(self) -> bool {
        self.bits != 0
    }

    /// Whether full generation is advertised.
    pub fn can_generate(self) -> bool {
        self.bits & Self::GENERATE != 0
    }

    /// Whether image upscaling is advertised (implied by full generation).
    pub fn can_upscale(self) -> bool {
        self.bits & (Self::UPSCALE | Self::GENERATE) != 0
    }

    /// Whether text expansion is advertised (implied by full generation).
    pub fn can_expand_text(self) -> bool {
        self.bits & (Self::TEXT | Self::GENERATE) != 0
    }

    /// Whether video upscaling is advertised.
    pub fn can_upscale_video(self) -> bool {
        self.bits & Self::VIDEO != 0
    }

    /// The capability both peers share: generation happens only when both
    /// ends opted in (paper §3: "In any case other than both server and
    /// client having SETTINGS_GEN_ABILITY set to 1, default (unsupported)
    /// behavior will be assumed"). Model levels combine as the minimum —
    /// both ends must support a model generation for it to be used.
    pub fn intersect(self, other: GenAbility) -> GenAbility {
        let caps = (self.bits & Self::CAPS_MASK) & (other.bits & Self::CAPS_MASK);
        let image = self.image_model_level().min(other.image_model_level());
        let text = self.text_model_level().min(other.text_model_level());
        GenAbility {
            bits: caps
                | (u32::from(image) << Self::IMAGE_LEVEL_SHIFT)
                | (u32::from(text) << Self::TEXT_LEVEL_SHIFT),
        }
    }

    // ----- model negotiation (paper §7: "Negotiating models is another
    // aspect to consider") -----

    /// Low half: capability flags. High half: model-level fields.
    const CAPS_MASK: u32 = 0x0000_ffff;
    /// Bit offset of the 8-bit image-model level field.
    const IMAGE_LEVEL_SHIFT: u32 = 16;
    /// Bit offset of the 8-bit text-model level field.
    const TEXT_LEVEL_SHIFT: u32 = 24;

    /// Set the advertised image-model level (an ordinal model generation:
    /// higher = newer; 0 = unspecified/default).
    pub fn with_image_model_level(mut self, level: u8) -> GenAbility {
        self.bits = (self.bits & !(0xffu32 << Self::IMAGE_LEVEL_SHIFT))
            | (u32::from(level) << Self::IMAGE_LEVEL_SHIFT);
        self
    }

    /// Set the advertised text-model level.
    pub fn with_text_model_level(mut self, level: u8) -> GenAbility {
        self.bits = (self.bits & !(0xffu32 << Self::TEXT_LEVEL_SHIFT))
            | (u32::from(level) << Self::TEXT_LEVEL_SHIFT);
        self
    }

    /// Advertised image-model level.
    pub fn image_model_level(self) -> u8 {
        ((self.bits >> Self::IMAGE_LEVEL_SHIFT) & 0xff) as u8
    }

    /// Advertised text-model level.
    pub fn text_model_level(self) -> u8 {
        ((self.bits >> Self::TEXT_LEVEL_SHIFT) & 0xff) as u8
    }
}

/// The full settings state for one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Settings {
    /// HPACK dynamic table ceiling.
    pub header_table_size: u32,
    /// Whether server push is permitted.
    pub enable_push: bool,
    /// Peer-imposed concurrent stream limit (`None` = unlimited).
    pub max_concurrent_streams: Option<u32>,
    /// Initial stream flow-control window.
    pub initial_window_size: u32,
    /// Largest frame payload the peer accepts.
    pub max_frame_size: u32,
    /// Advisory maximum header list size.
    pub max_header_list_size: Option<u32>,
    /// The paper's generative-ability advertisement.
    pub gen_ability: GenAbility,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            header_table_size: 4096,
            enable_push: true,
            max_concurrent_streams: None,
            initial_window_size: 65_535,
            max_frame_size: DEFAULT_MAX_FRAME_SIZE,
            max_header_list_size: None,
            gen_ability: GenAbility::none(),
        }
    }
}

impl Settings {
    /// The settings an SWW endpoint announces: push disabled (the prototype
    /// never pushes) and, when `ability` is non-empty, the GEN_ABILITY
    /// parameter.
    pub fn sww(ability: GenAbility) -> Settings {
        Settings {
            enable_push: false,
            gen_ability: ability,
            ..Settings::default()
        }
    }

    /// Serialize to wire parameters. Only non-default values are sent,
    /// plus GEN_ABILITY whenever any capability is advertised.
    pub fn to_params(&self) -> Vec<SettingPair> {
        let d = Settings::default();
        let mut p = Vec::new();
        if self.header_table_size != d.header_table_size {
            p.push((SETTINGS_HEADER_TABLE_SIZE, self.header_table_size));
        }
        if self.enable_push != d.enable_push {
            p.push((SETTINGS_ENABLE_PUSH, u32::from(self.enable_push)));
        }
        if let Some(m) = self.max_concurrent_streams {
            p.push((SETTINGS_MAX_CONCURRENT_STREAMS, m));
        }
        if self.initial_window_size != d.initial_window_size {
            p.push((SETTINGS_INITIAL_WINDOW_SIZE, self.initial_window_size));
        }
        if self.max_frame_size != d.max_frame_size {
            p.push((SETTINGS_MAX_FRAME_SIZE, self.max_frame_size));
        }
        if let Some(m) = self.max_header_list_size {
            p.push((SETTINGS_MAX_HEADER_LIST_SIZE, m));
        }
        if self.gen_ability.supported() {
            p.push((SETTINGS_GEN_ABILITY, self.gen_ability.bits()));
        }
        p
    }

    /// Apply received parameters (RFC 9113 §6.5.2 validation). Unknown
    /// identifiers are ignored — the rule that keeps non-participating
    /// peers working and makes the paper's extension deployable.
    pub fn apply(&mut self, params: &[SettingPair]) -> Result<(), H2Error> {
        for &(id, value) in params {
            match id {
                SETTINGS_HEADER_TABLE_SIZE => self.header_table_size = value,
                SETTINGS_ENABLE_PUSH => {
                    self.enable_push = match value {
                        0 => false,
                        1 => true,
                        _ => return Err(H2Error::protocol("ENABLE_PUSH must be 0 or 1")),
                    }
                }
                SETTINGS_MAX_CONCURRENT_STREAMS => self.max_concurrent_streams = Some(value),
                SETTINGS_INITIAL_WINDOW_SIZE => {
                    if value > 0x7fff_ffff {
                        return Err(H2Error::Connection(
                            crate::error::ErrorCode::FlowControl,
                            "INITIAL_WINDOW_SIZE above 2^31-1".into(),
                        ));
                    }
                    self.initial_window_size = value;
                }
                SETTINGS_MAX_FRAME_SIZE => {
                    if !(DEFAULT_MAX_FRAME_SIZE..=MAX_ALLOWED_FRAME_SIZE).contains(&value) {
                        return Err(H2Error::protocol("MAX_FRAME_SIZE out of range"));
                    }
                    self.max_frame_size = value;
                }
                SETTINGS_MAX_HEADER_LIST_SIZE => self.max_header_list_size = Some(value),
                SETTINGS_GEN_ABILITY => self.gen_ability = GenAbility::from_bits(value),
                _ => {
                    // RFC 9113 §6.5.2: "An endpoint that receives a SETTINGS
                    // frame with any unknown or unsupported identifier MUST
                    // ignore that setting."
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_rfc() {
        let s = Settings::default();
        assert_eq!(s.header_table_size, 4096);
        assert!(s.enable_push);
        assert_eq!(s.initial_window_size, 65_535);
        assert_eq!(s.max_frame_size, 16_384);
        assert!(!s.gen_ability.supported());
    }

    #[test]
    fn gen_ability_roundtrips_via_params() {
        let s = Settings::sww(GenAbility::full());
        let params = s.to_params();
        assert!(params.contains(&(SETTINGS_GEN_ABILITY, 1)));
        let mut peer = Settings::default();
        peer.apply(&params).unwrap();
        assert!(peer.gen_ability.can_generate());
    }

    #[test]
    fn unknown_setting_ignored() {
        let mut s = Settings::default();
        s.apply(&[(0x99, 42), (0xabc, 7)]).unwrap();
        assert_eq!(s, Settings::default());
    }

    #[test]
    fn naive_peer_ignores_gen_ability() {
        // A non-participating peer applies our params and is unchanged
        // except for standard fields — the paper's fallback story.
        let mut naive = Settings::default();
        naive
            .apply(&Settings::sww(GenAbility::full()).to_params())
            .unwrap();
        assert!(!naive.enable_push);
        // The naive peer records the setting only if it understands it; a
        // truly naive implementation would have ignored 0x07 entirely. Our
        // Settings knows the id, so simulate naive by checking the
        // unknown-id path instead:
        let mut really_naive = Settings::default();
        really_naive.apply(&[(0xfff0, 1)]).unwrap();
        assert_eq!(really_naive, Settings::default());
    }

    #[test]
    fn ability_intersection_requires_both() {
        assert!(GenAbility::full()
            .intersect(GenAbility::full())
            .can_generate());
        assert!(!GenAbility::full().intersect(GenAbility::none()).supported());
        assert!(!GenAbility::none().intersect(GenAbility::full()).supported());
        let up = GenAbility::upscale_only();
        assert!(!GenAbility::full().intersect(up).supported());
        assert!(up.intersect(up).can_upscale());
        assert!(!up.intersect(up).can_generate());
    }

    #[test]
    fn capability_implications() {
        let full = GenAbility::full();
        assert!(full.can_generate() && full.can_upscale() && full.can_expand_text());
        assert!(!full.can_upscale_video());
        let v = GenAbility::from_bits(GenAbility::VIDEO);
        assert!(v.can_upscale_video() && !v.can_generate());
    }

    #[test]
    fn invalid_standard_settings_rejected() {
        let mut s = Settings::default();
        assert!(s.apply(&[(SETTINGS_ENABLE_PUSH, 2)]).is_err());
        assert!(s.apply(&[(SETTINGS_MAX_FRAME_SIZE, 100)]).is_err());
        assert!(s.apply(&[(SETTINGS_MAX_FRAME_SIZE, 1 << 24)]).is_err());
        assert!(s.apply(&[(SETTINGS_INITIAL_WINDOW_SIZE, 1 << 31)]).is_err());
    }

    #[test]
    fn model_levels_roundtrip_and_negotiate_to_minimum() {
        // §7: "Negotiating models is another aspect to consider" — the
        // 32-bit value carries ordinal model generations.
        let a = GenAbility::full()
            .with_image_model_level(3)
            .with_text_model_level(2);
        let b = GenAbility::full()
            .with_image_model_level(2)
            .with_text_model_level(5);
        assert_eq!(a.image_model_level(), 3);
        assert_eq!(a.text_model_level(), 2);
        let shared = a.intersect(b);
        assert!(shared.can_generate());
        assert_eq!(shared.image_model_level(), 2, "minimum of both peers");
        assert_eq!(shared.text_model_level(), 2);
        // The wire value survives a settings roundtrip.
        let mut peer = Settings::default();
        peer.apply(&[(SETTINGS_GEN_ABILITY, a.bits())]).unwrap();
        assert_eq!(peer.gen_ability, a);
    }

    #[test]
    fn model_levels_do_not_disturb_capability_bits() {
        let g = GenAbility::upscale_only().with_image_model_level(9);
        assert!(g.can_upscale());
        assert!(!g.can_generate());
        assert_eq!(g.image_model_level(), 9);
        let replaced = g.with_image_model_level(1);
        assert_eq!(replaced.image_model_level(), 1);
        assert!(replaced.can_upscale());
    }

    #[test]
    fn last_duplicate_wins() {
        let mut s = Settings::default();
        s.apply(&[(SETTINGS_GEN_ABILITY, 1), (SETTINGS_GEN_ABILITY, 0)])
            .unwrap();
        assert!(!s.gen_ability.supported());
    }
}
