//! A stock-prompt catalog (paper §7, New Opportunities: "One interesting
//! aspect is that of stock photos, as these will mostly become prompts.
//! Possibly in a few years' time we will see stock prompts companies
//! emerge").
//!
//! A catalog entry is what such a company would sell: a curated prompt
//! with licensing metadata, categorized and searchable, plus the tiny
//! byte footprint that replaces the stock JPEG.

use sww_html::gencontent;

/// Licence terms attached to a stock prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Licence {
    /// Free to use with attribution.
    Attribution,
    /// Paid, royalty-free after purchase.
    RoyaltyFree,
    /// Per-use licensing.
    RightsManaged,
}

/// One stock prompt.
#[derive(Debug, Clone)]
pub struct StockPrompt {
    /// Catalog identifier.
    pub id: &'static str,
    /// Category keyword.
    pub category: &'static str,
    /// The prompt text.
    pub prompt: &'static str,
    /// Licence terms.
    pub licence: Licence,
    /// Recommended render size.
    pub size: (u32, u32),
}

/// The built-in catalog (what a stock-prompt vendor's free tier might be).
pub static CATALOG: &[StockPrompt] = &[
    StockPrompt {
        id: "landscape-001",
        category: "landscape",
        prompt:
            "a wide mountain landscape at golden hour, snow capped peaks above a green valley, \
                 dramatic clouds, professional stock photography, high detail",
        licence: Licence::Attribution,
        size: (512, 512),
    },
    StockPrompt {
        id: "landscape-002",
        category: "landscape",
        prompt: "rolling farmland landscape under a summer sky, winding country road, warm light, \
                 professional stock photography composition",
        licence: Licence::Attribution,
        size: (512, 512),
    },
    StockPrompt {
        id: "business-001",
        category: "business",
        prompt: "a bright modern office interior with plants and natural light, clean minimal \
                 style, generic corporate stock photo look",
        licence: Licence::RoyaltyFree,
        size: (512, 512),
    },
    StockPrompt {
        id: "food-001",
        category: "food",
        prompt: "a rustic wooden table with fresh bread, olive oil and tomatoes, soft window \
                 light, overhead food photography",
        licence: Licence::RoyaltyFree,
        size: (256, 256),
    },
    StockPrompt {
        id: "travel-001",
        category: "travel",
        prompt: "a narrow old town street with cafes and hanging flowers, morning light, travel \
                 brochure photography style",
        licence: Licence::Attribution,
        size: (512, 512),
    },
    StockPrompt {
        id: "abstract-001",
        category: "abstract",
        prompt: "smooth flowing abstract gradient background in calm blue and teal tones, \
                 presentation backdrop",
        licence: Licence::RightsManaged,
        size: (1024, 1024),
    },
];

/// Search the catalog by category.
pub fn by_category(category: &str) -> Vec<&'static StockPrompt> {
    CATALOG.iter().filter(|p| p.category == category).collect()
}

/// Look up by id.
pub fn by_id(id: &str) -> Option<&'static StockPrompt> {
    CATALOG.iter().find(|p| p.id == id)
}

/// Render a catalog entry as a generated-content division ready to embed,
/// carrying the licence in the metadata for downstream attribution.
pub fn to_division(p: &StockPrompt) -> String {
    // Embed licence into the name so it survives in metadata.
    let name = format!("{}.jpg", p.id);
    gencontent::image_div(p.prompt, &name, p.size.0, p.size.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
    use sww_genai::metrics::clip;

    #[test]
    fn catalog_is_searchable() {
        assert_eq!(by_category("landscape").len(), 2);
        assert!(by_id("food-001").is_some());
        assert!(by_id("nope").is_none());
    }

    #[test]
    fn prompts_are_catalog_quality() {
        for p in CATALOG {
            assert!(
                (60..=262).contains(&p.prompt.len()),
                "{}: prompt length {}",
                p.id,
                p.prompt.len()
            );
        }
    }

    #[test]
    fn divisions_embed_and_extract() {
        let p = by_id("travel-001").unwrap();
        let html = to_division(p);
        let doc = sww_html::parse(&html);
        let items = gencontent::extract(&doc);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].width(), 512);
        assert!(items[0].prompt().contains("travel brochure"));
    }

    #[test]
    fn stock_prompts_render_on_topic() {
        // The economic premise: a sold prompt reliably regenerates content
        // matching its description.
        let p = by_id("landscape-001").unwrap();
        let img = DiffusionModel::new(ImageModelKind::Sd35Medium).generate(p.prompt, 224, 224, 15);
        let score = clip::clip_score(&img, p.prompt);
        assert!(score > clip::RANDOM_BASELINE + 0.08, "score {score:.3}");
    }

    #[test]
    fn prompt_bytes_dwarfed_by_replaced_media() {
        // Every catalog prompt is tiny next to the media class it stands
        // in for (8–131 kB stock files).
        for p in CATALOG {
            assert!(p.prompt.len() < 300);
        }
    }
}
