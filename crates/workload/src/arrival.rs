//! Diurnal session arrivals.
//!
//! Sessions arrive as a non-homogeneous Poisson process whose rate
//! follows a sinusoidal day curve — the familiar diurnal traffic shape
//! with a peak and a trough. Arrivals are drawn by Lewis–Shedler
//! thinning against the peak rate, so the sequence is a pure function of
//! the caller's seeded [`Rng`] stream and the model parameters.

use sww_genai::rng::Rng;

/// Sinusoidal diurnal rate model (all times in virtual seconds — the
/// trace compresses a "day" into whatever period the config chooses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalModel {
    /// Mean arrival rate over the day, in sessions per virtual second.
    pub base_rate: f64,
    /// Relative swing in `[0, 1)`: rate varies between
    /// `base·(1−amplitude)` and `base·(1+amplitude)`.
    pub amplitude: f64,
    /// Virtual day length in seconds.
    pub period: f64,
}

impl Default for DiurnalModel {
    fn default() -> DiurnalModel {
        DiurnalModel {
            base_rate: 50.0,
            amplitude: 0.6,
            period: 86_400.0,
        }
    }
}

impl DiurnalModel {
    /// Instantaneous arrival rate at virtual time `t` seconds.
    pub fn rate_at(&self, t: f64) -> f64 {
        self.base_rate * (1.0 + self.amplitude * (std::f64::consts::TAU * t / self.period).sin())
    }

    /// Peak rate (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        self.base_rate * (1.0 + self.amplitude)
    }

    /// Draw the next arrival strictly after `t` by thinning: propose
    /// exponential gaps at the peak rate, accept each proposal with
    /// probability `rate(t)/peak`. Deterministic given the stream.
    pub fn next_arrival(&self, mut t: f64, rng: &mut Rng) -> f64 {
        let peak = self.peak_rate();
        loop {
            // Inverse-CDF exponential gap; guard the log(0) corner.
            let u = rng.uniform().max(f64::MIN_POSITIVE);
            t -= u.ln() / peak;
            if rng.uniform() < self.rate_at(t) / peak {
                return t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_swings_about_the_base() {
        let m = DiurnalModel {
            base_rate: 100.0,
            amplitude: 0.5,
            period: 1000.0,
        };
        assert!((m.rate_at(0.0) - 100.0).abs() < 1e-9);
        assert!(
            (m.rate_at(250.0) - 150.0).abs() < 1e-9,
            "peak at quarter day"
        );
        assert!(
            (m.rate_at(750.0) - 50.0).abs() < 1e-9,
            "trough at three quarters"
        );
    }

    #[test]
    fn arrivals_advance_and_are_deterministic() {
        let m = DiurnalModel::default();
        let run = |seed| {
            let mut rng = Rng::new(seed);
            let mut t = 0.0;
            let mut times = Vec::new();
            for _ in 0..500 {
                let next = m.next_arrival(t, &mut rng);
                assert!(next > t, "arrivals strictly advance");
                t = next;
                times.push(t.to_bits());
            }
            times
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn mean_rate_matches_the_base() {
        // Over whole periods the sinusoid integrates out: the empirical
        // rate must land near base_rate.
        let m = DiurnalModel {
            base_rate: 20.0,
            amplitude: 0.8,
            period: 100.0,
        };
        let mut rng = Rng::new(6);
        let mut t = 0.0;
        let n = 40_000;
        for _ in 0..n {
            t = m.next_arrival(t, &mut rng);
        }
        let empirical = n as f64 / t;
        assert!(
            (empirical / m.base_rate - 1.0).abs() < 0.05,
            "empirical rate {empirical:.2} vs base {}",
            m.base_rate
        );
    }
}
