//! The SLO scorecard: what one replay run measured.
//!
//! A [`Scorecard`] accumulates per-request outcomes (status classes,
//! retries, wall latencies) plus the lifecycle counters the serving
//! stack exports (`sww_shed_total{reason}`, `sww_cancelled_total`,
//! `sww_deadline_exceeded_total`, `sww_client_fallbacks_total`) read as
//! before/after deltas of the global registry — the same reconciliation
//! the `/metrics` endpoint serves, so a scorecard and a scrape must
//! agree.
//!
//! Wall-clock numbers (p50/p99, qps) are **recorded but never gated** —
//! the repo-wide convention; the gated SLO quantities (modelled p99 vs
//! deadline, hit-rate monotonicity, replay determinism) are pure
//! functions of the seed and live in the modelled layer.

/// A point-in-time reading of the lifecycle counters the scorecard
/// reconciles. Take one before and one after a run; subtract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleSnapshot {
    /// `sww_shed_total{reason="deadline"}`.
    pub shed_deadline: u64,
    /// `sww_shed_total{reason="breaker"}`.
    pub shed_breaker: u64,
    /// `sww_shed_total{reason="draining"}`.
    pub shed_draining: u64,
    /// `sww_cancelled_total` summed over all sites.
    pub cancelled: u64,
    /// `sww_deadline_exceeded_total`.
    pub deadline_exceeded: u64,
    /// `sww_client_fallbacks_total`.
    pub fallbacks: u64,
}

impl LifecycleSnapshot {
    /// Read the current global counter values.
    pub fn take() -> LifecycleSnapshot {
        let shed = |reason| sww_obs::counter("sww_shed_total", &[("reason", reason)]).get();
        let cancelled = [
            "engine.wait",
            "engine.handoff",
            "denoise",
            "batch.wait",
            "pool.queue",
        ]
        .iter()
        .map(|site| sww_obs::counter("sww_cancelled_total", &[("site", site)]).get())
        .sum();
        LifecycleSnapshot {
            shed_deadline: shed("deadline"),
            shed_breaker: shed("breaker"),
            shed_draining: shed("draining"),
            cancelled,
            deadline_exceeded: sww_obs::counter("sww_deadline_exceeded_total", &[]).get(),
            fallbacks: sww_obs::counter("sww_client_fallbacks_total", &[]).get(),
        }
    }

    /// Counter movement between `self` (earlier) and `later`.
    pub fn delta(&self, later: &LifecycleSnapshot) -> LifecycleSnapshot {
        LifecycleSnapshot {
            shed_deadline: later.shed_deadline - self.shed_deadline,
            shed_breaker: later.shed_breaker - self.shed_breaker,
            shed_draining: later.shed_draining - self.shed_draining,
            cancelled: later.cancelled - self.cancelled,
            deadline_exceeded: later.deadline_exceeded - self.deadline_exceeded,
            fallbacks: later.fallbacks - self.fallbacks,
        }
    }
}

/// Accumulated outcomes of one replay run.
#[derive(Debug, Clone, Default)]
pub struct Scorecard {
    /// Human label (target + config).
    pub label: String,
    /// Requests attempted (first tries, not counting retries).
    pub requests: u64,
    /// 200 responses.
    pub ok: u64,
    /// 503 responses (shed / at-capacity).
    pub shed: u64,
    /// 504 responses (deadline exceeded).
    pub deadline: u64,
    /// Any other non-200 final outcome.
    pub errors: u64,
    /// Retries performed after retryable statuses.
    pub retries: u64,
    /// Server-side generations the run caused (engine counter delta).
    pub generations: u64,
    /// Coalesced waiters (single-flight hits; engine counter delta).
    pub coalesced: u64,
    /// Lifecycle counter movement over the run.
    pub lifecycle: LifecycleSnapshot,
    /// Wall-clock run duration in seconds.
    pub wall_seconds: f64,
    /// Per-request wall latencies in microseconds (drained by
    /// [`Scorecard::finish`]).
    latencies_us: Vec<u64>,
    /// Sorted latencies after `finish`.
    sorted_us: Vec<u64>,
}

impl Scorecard {
    /// Start an empty scorecard.
    pub fn new(label: impl Into<String>) -> Scorecard {
        Scorecard {
            label: label.into(),
            ..Scorecard::default()
        }
    }

    /// Record one request's final status and wall latency.
    pub fn record(&mut self, status: u16, wall_us: u64) {
        self.requests += 1;
        match status {
            200 => self.ok += 1,
            503 => self.shed += 1,
            504 => self.deadline += 1,
            _ => self.errors += 1,
        }
        self.latencies_us.push(wall_us);
    }

    /// Record `n` retries.
    pub fn add_retries(&mut self, n: u64) {
        self.retries += n;
    }

    /// Merge a concurrently collected shard into this scorecard.
    pub fn absorb(&mut self, other: Scorecard) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.shed += other.shed;
        self.deadline += other.deadline;
        self.errors += other.errors;
        self.retries += other.retries;
        self.latencies_us.extend(other.latencies_us);
    }

    /// Finalize: sort latencies and stamp the run duration.
    pub fn finish(&mut self, wall_seconds: f64) {
        self.wall_seconds = wall_seconds;
        self.sorted_us = std::mem::take(&mut self.latencies_us);
        self.sorted_us.sort_unstable();
    }

    fn percentile_us(&self, pct: f64) -> u64 {
        if self.sorted_us.is_empty() {
            return 0;
        }
        let rank = ((pct / 100.0) * self.sorted_us.len() as f64).ceil() as usize;
        self.sorted_us[rank.clamp(1, self.sorted_us.len()) - 1]
    }

    /// Median wall latency in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.percentile_us(50.0) as f64 / 1000.0
    }

    /// 99th-percentile wall latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.percentile_us(99.0) as f64 / 1000.0
    }

    /// Sustained wall-clock request rate.
    pub fn qps(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.requests as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Fraction of requests that ended 200.
    pub fn ok_rate(&self) -> f64 {
        self.rate(self.ok)
    }

    /// Fraction shed with 503.
    pub fn shed_rate(&self) -> f64 {
        self.rate(self.shed)
    }

    /// Fraction that exceeded their deadline (504).
    pub fn deadline_rate(&self) -> f64 {
        self.rate(self.deadline)
    }

    /// Fraction with other errors.
    pub fn error_rate(&self) -> f64 {
        self.rate(self.errors)
    }

    fn rate(&self, n: u64) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            n as f64 / self.requests as f64
        }
    }

    /// Single-flight efficiency: coalesced waiters per generation.
    pub fn coalesce_ratio(&self) -> f64 {
        if self.generations == 0 {
            0.0
        } else {
            self.coalesced as f64 / self.generations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_land_in_their_buckets() {
        let mut s = Scorecard::new("t");
        for (status, n) in [(200u16, 6u64), (503, 2), (504, 1), (500, 1)] {
            for _ in 0..n {
                s.record(status, 1000);
            }
        }
        s.finish(2.0);
        assert_eq!(
            (s.requests, s.ok, s.shed, s.deadline, s.errors),
            (10, 6, 2, 1, 1)
        );
        assert!((s.ok_rate() - 0.6).abs() < 1e-9);
        assert!((s.qps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut s = Scorecard::new("t");
        for us in [1000u64, 2000, 3000, 4000, 100_000] {
            s.record(200, us);
        }
        s.finish(1.0);
        assert!((s.p50_ms() - 3.0).abs() < 1e-9);
        assert!((s.p99_ms() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_merges_shards() {
        let mut a = Scorecard::new("a");
        a.record(200, 10);
        let mut b = Scorecard::new("b");
        b.record(503, 20);
        b.add_retries(3);
        a.absorb(b);
        a.finish(1.0);
        assert_eq!(a.requests, 2);
        assert_eq!(a.shed, 1);
        assert_eq!(a.retries, 3);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let before = LifecycleSnapshot {
            shed_deadline: 1,
            ..Default::default()
        };
        let after = LifecycleSnapshot {
            shed_deadline: 4,
            cancelled: 2,
            ..Default::default()
        };
        let d = before.delta(&after);
        assert_eq!(d.shed_deadline, 3);
        assert_eq!(d.cancelled, 2);
    }
}
