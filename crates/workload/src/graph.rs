//! The seeded Watts–Strogatz site graph: the *small world* structure the
//! paper assumes, as a first-class traffic-generation substrate.
//!
//! A [`SiteGraph`] is a pure function of its [`SmallWorldConfig`] — same
//! config (including seed), same adjacency, bit for bit — built the
//! classic way (Watts & Strogatz 1998): a ring lattice where every node
//! links its `k` nearest neighbours, then each clockwise edge is rewired
//! to a uniform random target with probability `beta`. `beta = 0` keeps
//! the high-clustering lattice, `beta = 1` degenerates to a random graph;
//! in between sits the small-world regime of high clustering *and* short
//! paths.
//!
//! Every node is a web page carrying generative recipes
//! ([`RecipeSpec`]), and the graph renders into a servable
//! [`SiteContent`] via [`SiteGraph::site_content`]. The first three nodes
//! are **anchors**: the paper's §6.2 evaluation pages (the 49-image
//! Wikimedia Landscape search page, the news article, the travel blog)
//! embedded as ordinary graph nodes, so the fixture pages and the
//! generated traffic share one recipe path.

use sww_core::SiteContent;
use sww_genai::rng::Rng;
use sww_html::gencontent;

/// Configuration of the generated small-world site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallWorldConfig {
    /// Page count (graph order). Must exceed `k`.
    pub nodes: usize,
    /// Lattice degree: links to the `k` nearest ring neighbours (`k/2`
    /// on each side). Must be even and ≥ 2.
    pub k: usize,
    /// Watts–Strogatz rewiring probability in `[0, 1]`.
    pub beta: f64,
    /// Seed for the rewiring draws (and nothing else — the lattice is
    /// seed-independent).
    pub seed: u64,
}

impl Default for SmallWorldConfig {
    fn default() -> SmallWorldConfig {
        SmallWorldConfig {
            nodes: 192,
            k: 8,
            beta: 0.1,
            seed: 42,
        }
    }
}

/// One generative recipe on a page — the single source of truth both the
/// paper fixtures (`wikimedia`, `article`, `blog`) and the generated
/// graph nodes assemble their pages from.
#[derive(Debug, Clone, PartialEq)]
pub enum RecipeSpec {
    /// An image recipe (prompt-form `<img>` replacement).
    Image {
        /// The generation prompt.
        prompt: String,
        /// File name the recipe replaces.
        name: String,
        /// Render width in pixels.
        width: u32,
        /// Render height in pixels.
        height: u32,
    },
    /// A text recipe (bullet-point compression of prose).
    Text {
        /// The bullet points.
        bullets: Vec<String>,
        /// Requested expansion length in words.
        words: usize,
    },
}

impl RecipeSpec {
    /// Render as the on-the-wire generated-content division.
    pub fn div(&self) -> String {
        match self {
            RecipeSpec::Image {
                prompt,
                name,
                width,
                height,
            } => gencontent::image_div(prompt, name, *width, *height),
            RecipeSpec::Text { bullets, words } => gencontent::text_div(bullets, *words),
        }
    }

    /// Whether this is an image recipe.
    pub fn is_image(&self) -> bool {
        matches!(self, RecipeSpec::Image { .. })
    }
}

/// A page of the site graph: path, title, and the recipes it carries.
#[derive(Debug, Clone)]
pub struct PageSpec {
    /// Request path.
    pub path: String,
    /// Page title (also the `<h1>`).
    pub title: String,
    /// The generative recipes on the page, in document order.
    pub recipes: Vec<RecipeSpec>,
}

impl PageSpec {
    /// Render the page's prompt-form HTML: title, heading, and the
    /// recipe divisions in order.
    pub fn html(&self) -> String {
        let divs: String = self.recipes.iter().map(RecipeSpec::div).collect();
        format!(
            "<html><head><title>{}</title></head><body><h1>{}</h1>{divs}</body></html>",
            self.title, self.title
        )
    }
}

/// Scene fragments for the generated nodes' prompts, in the style of the
/// paper's observed 120–262 character search-page prompts.
static THEMES: [&str; 8] = [
    "a quiet harbour town with fishing boats at dawn",
    "a terraced hillside of vineyards under summer haze",
    "a forest path crossing a stream on stepping stones",
    "a coastal cliff walk with seabirds riding the wind",
    "an old market square with striped awnings and bicycles",
    "a high mountain pass with a stone refuge hut",
    "a river delta of reed beds and winding channels",
    "a desert canyon wall striped in red and ochre",
];

static MOODS: [&str; 6] = [
    "in soft morning light",
    "under a clear midday sun",
    "at golden hour with long shadows",
    "in the diffuse light of an overcast afternoon",
    "just after rain with saturated colors",
    "in cool blue evening light",
];

/// Index of the Wikimedia Landscape anchor node.
pub const ANCHOR_WIKIMEDIA: usize = 0;
/// Index of the news-article anchor node.
pub const ANCHOR_ARTICLE: usize = 1;
/// Index of the travel-blog anchor node.
pub const ANCHOR_BLOG: usize = 2;
/// Number of anchor (paper fixture) nodes at the front of the graph.
pub const ANCHOR_COUNT: usize = 3;

/// The seeded small-world site graph.
#[derive(Debug, Clone)]
pub struct SiteGraph {
    cfg: SmallWorldConfig,
    /// Sorted adjacency lists (undirected; every edge appears in both).
    adj: Vec<Vec<usize>>,
}

impl SiteGraph {
    /// Generate the graph: ring lattice, then Watts–Strogatz rewiring.
    /// Pure function of `cfg` — equal configs yield bit-identical graphs.
    ///
    /// # Panics
    /// If `k` is odd, `k < 2`, or `nodes <= k`.
    pub fn generate(cfg: SmallWorldConfig) -> SiteGraph {
        assert!(
            cfg.k >= 2 && cfg.k.is_multiple_of(2),
            "k must be even and >= 2"
        );
        assert!(cfg.nodes > cfg.k, "nodes must exceed k");
        let n = cfg.nodes;
        let half = cfg.k / 2;
        // Adjacency as sets during construction (the lattice plus
        // rewiring must never create parallel edges).
        let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
        for i in 0..n {
            for j in 1..=half {
                let t = (i + j) % n;
                adj[i].insert(t);
                adj[t].insert(i);
            }
        }
        // Rewire each clockwise lattice edge (i, i+j) with probability
        // beta, lag by lag — the canonical WS sweep order, driven by one
        // seeded stream so the whole graph replays from the seed.
        let mut rng = Rng::new(cfg.seed ^ 0x5757_a11c_e000_0001);
        for j in 1..=half {
            for i in 0..n {
                let old = (i + j) % n;
                if rng.uniform() >= cfg.beta {
                    continue;
                }
                // Draw a fresh target: not self, not already adjacent.
                // Give up after a bounded number of draws (dense corner
                // cases) rather than loop forever.
                let mut new = None;
                for _ in 0..32 {
                    let t = rng.below(n);
                    if t != i && t != old && !adj[i].contains(&t) {
                        new = Some(t);
                        break;
                    }
                }
                let Some(t) = new else { continue };
                // The lattice edge may itself have been rewired away by
                // an earlier sweep step; only rewire edges still present.
                if !adj[i].remove(&old) {
                    continue;
                }
                adj[old].remove(&i);
                adj[i].insert(t);
                adj[t].insert(i);
            }
        }
        SiteGraph {
            cfg,
            adj: adj.into_iter().map(|s| s.into_iter().collect()).collect(),
        }
    }

    /// The configuration this graph was generated from.
    pub fn config(&self) -> SmallWorldConfig {
        self.cfg
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Sorted neighbours of `node`.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    /// Per-node degrees.
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }

    /// Total undirected edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether every node reaches every other.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }

    /// BFS distances from `source` (`usize::MAX` = unreachable).
    fn bfs_distances(&self, source: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The Watts–Strogatz clustering coefficient: the mean over nodes of
    /// `2·(links among neighbours) / (d·(d−1))`. Nodes of degree < 2
    /// contribute 0.
    pub fn clustering_coefficient(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for nbrs in &self.adj {
            let d = nbrs.len();
            if d < 2 {
                continue;
            }
            let mut links = 0usize;
            for (a, &u) in nbrs.iter().enumerate() {
                for &v in &nbrs[a + 1..] {
                    if self.adj[u].binary_search(&v).is_ok() {
                        links += 1;
                    }
                }
            }
            total += 2.0 * links as f64 / (d * (d - 1)) as f64;
        }
        total / self.adj.len() as f64
    }

    /// Mean shortest-path length over all reachable ordered pairs
    /// (exact all-pairs BFS — the graphs here are small).
    pub fn mean_path_length(&self) -> f64 {
        let mut total = 0u64;
        let mut pairs = 0u64;
        for s in 0..self.adj.len() {
            for (t, &d) in self.bfs_distances(s).iter().enumerate() {
                if t != s && d != usize::MAX {
                    total += d as u64;
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }

    /// FNV-1a digest of the full adjacency structure (plus the config) —
    /// the bit-identity witness the determinism suites compare.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        mix(self.cfg.nodes as u64);
        mix(self.cfg.k as u64);
        mix(self.cfg.beta.to_bits());
        mix(self.cfg.seed);
        for (i, nbrs) in self.adj.iter().enumerate() {
            mix(i as u64 ^ 0xffff_0000_0000_0000);
            for &v in nbrs {
                mix(v as u64);
            }
        }
        h
    }

    /// The request path of a node's page.
    pub fn node_path(&self, node: usize) -> String {
        match node {
            ANCHOR_WIKIMEDIA => crate::wikimedia::PAGE_PATH.to_string(),
            ANCHOR_ARTICLE => crate::article::PAGE_PATH.to_string(),
            ANCHOR_BLOG => crate::blog::BLOG_PATH.to_string(),
            _ => format!("/sw/{node}"),
        }
    }

    /// The page a node renders to. Anchor nodes return the paper fixture
    /// pages' recipes (shared with the fixtures themselves); generated
    /// nodes carry one unique image recipe whose prompt is derived from
    /// the node id and its theme pools.
    pub fn page_spec(&self, node: usize) -> PageSpec {
        match node {
            ANCHOR_WIKIMEDIA => PageSpec {
                path: self.node_path(node),
                title: "Search results for Landscape - Wikimedia Commons".into(),
                recipes: crate::wikimedia::page_recipes(),
            },
            ANCHOR_ARTICLE => PageSpec {
                path: self.node_path(node),
                title: "Light rail extension approved".into(),
                recipes: vec![crate::article::page_recipe()],
            },
            ANCHOR_BLOG => PageSpec {
                path: self.node_path(node),
                title: "Hiking the Gherdeina Ridge".into(),
                recipes: crate::blog::page_recipes(),
            },
            _ => {
                let theme = THEMES[node % THEMES.len()];
                let mood = MOODS[(node / THEMES.len()) % MOODS.len()];
                let mut prompt = format!("{theme}, {mood}, small world page {node}");
                if prompt.len() < 120 {
                    prompt.push_str(", high quality photograph with natural colors");
                }
                PageSpec {
                    path: self.node_path(node),
                    title: format!("Small world page {node}"),
                    recipes: vec![RecipeSpec::Image {
                        prompt,
                        name: format!("sw{node}.jpg"),
                        width: 64,
                        height: 64,
                    }],
                }
            }
        }
    }

    /// Render the whole graph into a servable prompt-form site: one page
    /// per node, anchors included. Anchor pages use the fixtures' cheap
    /// prompt-form HTML (no original media is generated here).
    pub fn site_content(&self) -> SiteContent {
        let mut site = SiteContent::new();
        for node in 0..self.len() {
            match node {
                // The fixtures keep their own page shells (byte counts
                // and §6.2 structure live there); the recipes they embed
                // are the same `page_spec` returns.
                ANCHOR_WIKIMEDIA => {
                    site.add_page(self.node_path(node), crate::wikimedia::page_html())
                }
                ANCHOR_ARTICLE => site.add_page(self.node_path(node), crate::article::page_html()),
                ANCHOR_BLOG => site.add_page(self.node_path(node), crate::blog::page_html()),
                _ => {
                    let spec = self.page_spec(node);
                    site.add_page(spec.path.clone(), spec.html());
                }
            }
        }
        site
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(beta: f64) -> SmallWorldConfig {
        SmallWorldConfig {
            nodes: 64,
            k: 6,
            beta,
            seed: 7,
        }
    }

    #[test]
    fn lattice_is_degree_regular_and_clustered() {
        let g = SiteGraph::generate(cfg(0.0));
        assert!(g.degrees().iter().all(|&d| d == 6), "{:?}", g.degrees());
        // Ring lattice with k=6: C = (3(k-2))/(4(k-1)) = 12/20 = 0.6.
        let c = g.clustering_coefficient();
        assert!((c - 0.6).abs() < 1e-9, "lattice clustering {c}");
        assert!(g.is_connected());
    }

    #[test]
    fn rewiring_shortens_paths_and_cuts_clustering() {
        let lattice = SiteGraph::generate(cfg(0.0));
        let random = SiteGraph::generate(cfg(1.0));
        assert!(random.clustering_coefficient() < lattice.clustering_coefficient());
        assert!(random.mean_path_length() < lattice.mean_path_length());
        // Rewiring preserves the edge count.
        assert_eq!(lattice.edge_count(), random.edge_count());
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = SiteGraph::generate(cfg(0.3));
        let b = SiteGraph::generate(cfg(0.3));
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.adj, b.adj);
        let c = SiteGraph::generate(SmallWorldConfig {
            seed: 8,
            ..cfg(0.3)
        });
        assert_ne!(a.digest(), c.digest(), "different seeds must diverge");
    }

    #[test]
    fn anchor_pages_take_the_fixture_paths() {
        let g = SiteGraph::generate(cfg(0.1));
        assert_eq!(g.node_path(ANCHOR_WIKIMEDIA), "/wiki/landscape");
        assert_eq!(g.node_path(ANCHOR_BLOG), crate::blog::BLOG_PATH);
        assert_eq!(
            g.page_spec(ANCHOR_WIKIMEDIA).recipes.len(),
            crate::wikimedia::IMAGE_COUNT
        );
    }

    #[test]
    fn site_serves_one_page_per_node() {
        let g = SiteGraph::generate(cfg(0.1));
        let site = g.site_content();
        assert_eq!(site.page_count(), g.len());
        for node in 0..g.len() {
            assert!(
                site.page(&g.node_path(node)).is_some(),
                "missing page for node {node}"
            );
        }
    }

    #[test]
    fn generated_pages_extract_their_recipe() {
        let g = SiteGraph::generate(cfg(0.1));
        let spec = g.page_spec(10);
        let doc = sww_html::parse(&spec.html());
        let items = gencontent::extract(&doc);
        assert_eq!(items.len(), 1);
        assert!(items[0].prompt().len() >= 120, "paper-style prompt length");
    }
}
