//! The Figure 2 workload: a Wikimedia Commons search-results page for
//! "Landscape" — 49 thumbnail images totalling ≈1.4 MB, converted to
//! prompts of 120–262 characters (paper §6.2).

use crate::graph::RecipeSpec;
use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::image::codec;
use sww_html::gencontent;

/// Number of images on the search-results page.
pub const IMAGE_COUNT: usize = 49;

/// Request path of the search-results page when served (also the path of
/// its anchor node in the small-world site graph).
pub const PAGE_PATH: &str = "/wiki/landscape";

/// Thumbnail side used for the original media (pixels). Chosen together
/// with the codec quality so the measured page total lands near the
/// paper's 1.4 MB.
pub const THUMB_SIDE: u32 = 256;

/// Scene fragments composed into the 49 prompts.
static SUBJECTS: [&str; 7] = [
    "a wide alpine landscape with snow capped mountains above a green valley",
    "an icelandic landscape of volcanic hills under a dramatic grey sky",
    "a swedish landscape of farmland and birch trees beside a quiet lake",
    "a hiking trail landscape crossing mossy highlands toward distant ridges",
    "a vast landscape with an enormous cumulus cloud over dry mexican plains",
    "a landscape with a rainbow arching over an old bridge and a river",
    "a strawberry field landscape stretching toward a flat rural horizon",
];

static LIGHTS: [&str; 7] = [
    "in soft morning light",
    "at golden hour with long shadows",
    "under a clear midday sun",
    "in the diffuse light of an overcast afternoon",
    "at sunset with warm orange tones across the sky",
    "just after rain with saturated colors",
    "in cool blue evening light",
];

/// One generatable image of the workload.
#[derive(Debug, Clone)]
pub struct WorkloadImage {
    /// File name on the original page.
    pub name: String,
    /// The prompt the conversion produced (120–262 chars).
    pub prompt: String,
    /// Original thumbnail bytes (measured, SWIM codec).
    pub original_bytes: Vec<u8>,
}

/// The full workload: the SWW page plus the original media it replaces.
#[derive(Debug, Clone)]
pub struct LandscapePage {
    /// Prompt-form HTML (49 generated-content divisions).
    pub sww_html: String,
    /// Traditional-form HTML referencing the 49 files.
    pub traditional_html: String,
    /// The original images.
    pub images: Vec<WorkloadImage>,
}

impl LandscapePage {
    /// Measured total of the original media files.
    pub fn original_media_bytes(&self) -> usize {
        self.images.iter().map(|i| i.original_bytes.len()).sum()
    }

    /// Measured metadata bytes of the prompt-form page.
    pub fn metadata_bytes(&self) -> usize {
        let doc = sww_html::parse(&self.sww_html);
        gencontent::extract(&doc)
            .iter()
            .map(|g| g.metadata_size())
            .sum()
    }

    /// The paper's headline compression factor: original media over
    /// metadata.
    pub fn compression_ratio(&self) -> f64 {
        self.original_media_bytes() as f64 / self.metadata_bytes().max(1) as f64
    }
}

/// Construct the 49 prompts. Lengths are padded/trimmed into the paper's
/// observed 120–262 character range.
pub fn prompts() -> Vec<String> {
    (0..IMAGE_COUNT)
        .map(|i| {
            let subject = SUBJECTS[i % SUBJECTS.len()];
            let light = LIGHTS[(i / SUBJECTS.len()) % LIGHTS.len()];
            let mut p = format!("{subject}, {light}");
            if i % 6 == 0 {
                p.push_str(
                    ", with rich natural detail in the foreground and a clear sense of depth",
                );
            } else if i % 3 == 0 {
                p.push_str(", photographed from a scenic viewpoint");
            }
            if p.len() < 120 {
                p.push_str(", high quality landscape photograph with natural colors");
            }
            p.truncate(262);
            p
        })
        .collect()
}

/// The page's recipes in document order — the single source of truth the
/// prompt-form HTML, the graph anchor node, and the byte accounting all
/// assemble from.
pub fn page_recipes() -> Vec<RecipeSpec> {
    prompts()
        .into_iter()
        .enumerate()
        .map(|(i, prompt)| RecipeSpec::Image {
            prompt,
            name: format!("landscape_{i:02}.jpg"),
            width: THUMB_SIDE,
            height: THUMB_SIDE,
        })
        .collect()
}

fn wrap(body: &str) -> String {
    format!(
        "<html><head><title>Search results for Landscape - Wikimedia Commons</title></head>\
         <body><h1>Landscape</h1><div class=\"results\">{body}</div></body></html>"
    )
}

/// Prompt-form HTML of the page, assembled from [`page_recipes`] without
/// generating any original media (cheap; byte-identical to
/// [`LandscapePage::sww_html`]).
pub fn page_html() -> String {
    let body: String = page_recipes().iter().map(RecipeSpec::div).collect();
    wrap(&body)
}

/// Codec quality for the original thumbnails, calibrated (together with
/// the photographic grain below) so the 49-image total lands near the
/// paper's 1.4 MB.
pub const THUMB_QUALITY: u8 = 83;

/// Grain added to the "original" thumbnails: real photographs carry
/// high-frequency sensor/texture detail that procedural images lack, and
/// that detail is what makes photo files big. σ in 8-bit channel units.
pub const PHOTO_GRAIN_SIGMA: f64 = 8.0;

/// Build the full workload page. The "original" thumbnails are generated
/// once from the prompts with a strong model (standing in for the real
/// Wikimedia photographs) and encoded with the codec, so every byte count
/// downstream is measured. The page is built once and cached (building
/// generates 49 images).
pub fn landscape_search_page() -> LandscapePage {
    static PAGE: std::sync::OnceLock<LandscapePage> = std::sync::OnceLock::new();
    PAGE.get_or_init(build_landscape_page).clone()
}

fn build_landscape_page() -> LandscapePage {
    let model = DiffusionModel::new(ImageModelKind::Dalle3);
    let mut images = Vec::with_capacity(IMAGE_COUNT);
    let mut sww_body = String::new();
    let mut trad_body = String::new();
    for (i, recipe) in page_recipes().into_iter().enumerate() {
        let RecipeSpec::Image { prompt, name, .. } = recipe else {
            unreachable!("landscape page carries only image recipes");
        };
        let mut img = model.generate(&prompt, THUMB_SIDE, THUMB_SIDE, 15);
        // Photographic grain: the originals stand in for real photos.
        let mut rng = sww_genai::rng::Rng::new(0x9e1e_c0de ^ i as u64);
        for y in 0..THUMB_SIDE {
            for x in 0..THUMB_SIDE {
                let mut p = img.get(x, y);
                let n = rng.gaussian() * PHOTO_GRAIN_SIGMA;
                for c in &mut p {
                    *c = (f64::from(*c) + n).clamp(0.0, 255.0) as u8;
                }
                img.set(x, y, p);
            }
        }
        let original_bytes = codec::encode(&img, THUMB_QUALITY);
        sww_body.push_str(&gencontent::image_div(
            &prompt, &name, THUMB_SIDE, THUMB_SIDE,
        ));
        trad_body.push_str(&format!(
            r#"<img src="/media/{name}" width="{THUMB_SIDE}" height="{THUMB_SIDE}">"#
        ));
        images.push(WorkloadImage {
            name,
            prompt,
            original_bytes,
        });
    }
    LandscapePage {
        sww_html: wrap(&sww_body),
        traditional_html: wrap(&trad_body),
        images,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_nine_prompts_in_length_range() {
        let ps = prompts();
        assert_eq!(ps.len(), IMAGE_COUNT);
        for p in &ps {
            assert!(
                (120..=262).contains(&p.len()),
                "prompt length {} out of the paper's range: {p}",
                p.len()
            );
        }
        // Prompts are not all identical.
        let distinct: std::collections::HashSet<_> = ps.iter().collect();
        assert!(distinct.len() > 40);
    }

    #[test]
    fn page_totals_near_paper_figures() {
        let page = landscape_search_page();
        assert_eq!(page.images.len(), IMAGE_COUNT);
        let media = page.original_media_bytes();
        // Paper: 1.4 MB of images. Accept a generous band — the shape
        // matters (tens of kB per thumbnail, ≈1 MB+ total).
        assert!(
            (700_000..2_500_000).contains(&media),
            "original media {media} B"
        );
        let metadata = page.metadata_bytes();
        // Paper: 8.92 kB of metadata for 49 images (≈182 B each).
        assert!((7_000..16_000).contains(&metadata), "metadata {metadata} B");
        let ratio = page.compression_ratio();
        assert!(
            ratio > 60.0,
            "compression {ratio:.0}x must exceed the worst case 68x ballpark"
        );
    }

    #[test]
    fn sww_page_extracts_49_items() {
        let page = landscape_search_page();
        let doc = sww_html::parse(&page.sww_html);
        let items = gencontent::extract(&doc);
        assert_eq!(items.len(), IMAGE_COUNT);
        for item in &items {
            assert_eq!(item.width(), THUMB_SIDE);
        }
    }

    #[test]
    fn traditional_page_references_49_files() {
        let page = landscape_search_page();
        let doc = sww_html::parse(&page.traditional_html);
        let imgs = sww_html::query::by_tag(&doc, doc.root(), "img");
        assert_eq!(imgs.len(), IMAGE_COUNT);
    }

    #[test]
    fn page_html_matches_full_build() {
        // The cheap recipe-routed page and the full (media-generating)
        // build must agree byte for byte — one recipe path, two callers.
        assert_eq!(page_html(), landscape_search_page().sww_html);
    }

    #[test]
    fn recipes_carry_the_prompts_in_order() {
        let recipes = page_recipes();
        assert_eq!(recipes.len(), IMAGE_COUNT);
        for (recipe, prompt) in recipes.iter().zip(prompts()) {
            match recipe {
                RecipeSpec::Image {
                    prompt: p,
                    width,
                    height,
                    ..
                } => {
                    assert_eq!(*p, prompt);
                    assert_eq!((*width, *height), (THUMB_SIDE, THUMB_SIDE));
                }
                RecipeSpec::Text { .. } => panic!("unexpected text recipe"),
            }
        }
    }

    #[test]
    fn originals_decode() {
        let page = landscape_search_page();
        let img = codec::decode(&page.images[0].original_bytes).unwrap();
        assert_eq!(img.width(), THUMB_SIDE);
    }
}
