//! Zipf-distributed page popularity.
//!
//! Real page-visit distributions are heavily skewed: a few pages take
//! most of the traffic and the tail is long. The workload models this
//! with a Zipf law — the page of popularity rank `r` is visited with
//! probability proportional to `1 / r^s` — sampled by binary search over
//! a precomputed CDF so draws cost `O(log n)` and are a pure function of
//! the caller's [`Rng`] stream.
//!
//! Ranks are mapped to graph nodes through a seeded permutation
//! ([`crate::trace::popularity_permutation`]), so "most popular" is not
//! hard-wired to node 0 and the anchor fixture pages land at
//! seed-determined ranks like any other page.

use sww_genai::rng::Rng;

/// A Zipf sampler over ranks `0..n` (rank 0 is the most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution over ranks; `cdf[r]` = P(rank ≤ r).
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s > 0`.
    ///
    /// # Panics
    /// If `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf over zero ranks");
        assert!(s.is_finite() && s > 0.0, "zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf, exponent: s }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over zero ranks (never true — `new` panics).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The configured exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of rank `r`.
    pub fn mass(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Draw a rank from the distribution using the caller's seeded
    /// stream. Deterministic given the stream position.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.uniform();
        // First rank whose CDF value exceeds the draw.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Estimate the rank-frequency exponent of observed counts by an
/// ordinary least-squares fit of `log(frequency)` against `log(rank)`
/// (slope negated, so a perfect Zipf-`s` sample estimates ≈ `s`). Ranks
/// with zero counts are skipped; counts must be in rank order (most
/// popular first).
pub fn rank_frequency_exponent(counts: &[u64]) -> f64 {
    let points: Vec<(f64, f64)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(r, &c)| (((r + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    -((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masses_sum_to_one_and_decrease() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..z.len()).map(|r| z.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..z.len() {
            assert!(z.mass(r) < z.mass(r - 1), "mass must decrease with rank");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let z = Zipf::new(50, 1.0);
        let draw = |seed| {
            let mut rng = Rng::new(seed);
            (0..1000).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 2.0);
        let mut rng = Rng::new(11);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    /// Rank counts drawn from the exact Zipf masses (no sampling noise)
    /// must let the OLS estimator recover the exponent to float
    /// precision — the estimator itself is unbiased on its own model.
    #[test]
    fn estimator_recovers_the_exponent_from_exact_masses() {
        for s in [0.8, 1.1, 1.4] {
            let z = Zipf::new(200, s);
            let counts: Vec<u64> = (0..z.len())
                .map(|r| (z.mass(r) * 1e12).round() as u64)
                .collect();
            let est = rank_frequency_exponent(&counts);
            assert!(
                (est - s).abs() < 1e-3,
                "estimator gave {est:.5} for exact Zipf-{s} masses"
            );
        }
    }

    /// 200k sampler draws at the E20 exponent must produce an empirical
    /// rank-frequency slope close to the configured 1.1 — the sampler
    /// really follows the distribution it advertises.
    #[test]
    fn sampler_matches_its_configured_exponent() {
        let z = Zipf::new(192, 1.1);
        let mut rng = Rng::new(42);
        let mut counts = vec![0u64; z.len()];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let est = rank_frequency_exponent(&counts);
        assert!(
            (est - 1.1).abs() < 0.08,
            "empirical exponent {est:.4} strayed from the configured 1.1"
        );
    }

    /// The exact pinned estimate for the E20 seed — any change to the
    /// sampler's inverse-CDF walk or the RNG stream shifts this value
    /// and must be a conscious re-bless.
    #[test]
    fn seeded_sampler_exponent_is_pinned() {
        let z = Zipf::new(192, 1.1);
        let mut rng = Rng::new(42);
        let mut counts = vec![0u64; z.len()];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let est = rank_frequency_exponent(&counts);
        let pinned = 1.112_584; // observed once, frozen
        assert!(
            (est - pinned).abs() < 5e-4,
            "pinned exponent drifted: got {est:.6}, expected {pinned}"
        );
    }

    /// Degenerate inputs must not panic or emit garbage slopes.
    #[test]
    fn estimator_handles_degenerate_counts() {
        assert_eq!(rank_frequency_exponent(&[]), 0.0);
        assert_eq!(rank_frequency_exponent(&[7]), 0.0);
        assert_eq!(rank_frequency_exponent(&[0, 0, 0]), 0.0);
        // A flat distribution has slope 0.
        assert!(rank_frequency_exponent(&[5, 5, 5, 5]).abs() < 1e-9);
    }
}
