//! The deterministic request trace: the full workload pipeline — graph,
//! popularity, sessions, arrivals — collapsed into a time-ordered event
//! list that is a **pure function of the config** (seed included), the
//! same way the fault layer derives every injection from its seed.
//!
//! Two constructions from equal configs are bit-identical ([`Trace::digest`]
//! compares them cheaply, across processes too); change any field and
//! the trace diverges. The replay harness ([`crate::replay`]) then drives
//! the events through a real server stack, and the modelled simulator
//! scales the same generator to millions of requests of virtual time.

use crate::arrival::DiurnalModel;
use crate::graph::{SiteGraph, SmallWorldConfig};
use crate::popularity::Zipf;
use crate::session::{random_walk, ProfileMix, WalkConfig};
use sww_energy::DeviceKind;
use sww_genai::rng::Rng;

/// Full workload configuration: every knob that shapes the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// The small-world site graph.
    pub graph: SmallWorldConfig,
    /// Zipf popularity exponent over pages.
    pub zipf_exponent: f64,
    /// Device-class population mix.
    pub mix: ProfileMix,
    /// Session random-walk parameters.
    pub walk: WalkConfig,
    /// Diurnal arrival-rate model.
    pub diurnal: DiurnalModel,
    /// Mean think time between page views within a session, in virtual
    /// seconds.
    pub think_mean: f64,
    /// Number of request events to generate.
    pub requests: usize,
    /// Master seed for popularity ranks, arrivals, devices, and walks
    /// (the graph has its own seed in `graph.seed`).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            graph: SmallWorldConfig::default(),
            zipf_exponent: 1.1,
            mix: ProfileMix::default(),
            walk: WalkConfig::default(),
            diurnal: DiurnalModel::default(),
            think_mean: 15.0,
            requests: 4_000,
            seed: 42,
        }
    }
}

impl WorkloadConfig {
    /// Generate the site graph this workload browses.
    pub fn site_graph(&self) -> SiteGraph {
        SiteGraph::generate(self.graph)
    }
}

/// One page request of the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Position in replay order (assigned after time-sorting).
    pub seq: u64,
    /// Virtual arrival time in milliseconds.
    pub vtime_ms: u64,
    /// The user (session) issuing the request.
    pub user: u64,
    /// The graph node (page) requested.
    pub node: usize,
    /// The user's device class.
    pub device: DeviceKind,
}

/// The generated trace.
#[derive(Debug, Clone)]
pub struct Trace {
    cfg: WorkloadConfig,
    events: Vec<TraceEvent>,
    sessions: u64,
}

impl Trace {
    /// Generate the trace for `cfg`, building the graph internally.
    pub fn generate(cfg: &WorkloadConfig) -> Trace {
        let graph = cfg.site_graph();
        Trace::generate_on(cfg, &graph)
    }

    /// Generate the trace for `cfg` over an already-built `graph` (which
    /// must come from `cfg.graph`). Pure function of the config: equal
    /// configs produce bit-identical traces.
    pub fn generate_on(cfg: &WorkloadConfig, graph: &SiteGraph) -> Trace {
        assert_eq!(graph.config(), cfg.graph, "graph/config mismatch");
        let zipf = Zipf::new(graph.len(), cfg.zipf_exponent);
        let ranks = popularity_permutation(graph.len(), cfg.seed);
        let mut rng = Rng::new(cfg.seed ^ 0x7ace_5eed_0000_0002);
        let mut events = Vec::with_capacity(cfg.requests);
        let mut arrival_t = 0.0f64;
        let mut sessions = 0u64;
        while events.len() < cfg.requests {
            arrival_t = cfg.diurnal.next_arrival(arrival_t, &mut rng);
            let user = sessions;
            sessions += 1;
            let device = cfg.mix.draw(&mut rng);
            let pages = random_walk(graph, &zipf, &ranks, cfg.walk, &mut rng);
            let mut t = arrival_t;
            for (i, &node) in pages.iter().enumerate() {
                if i > 0 {
                    let u = rng.uniform().max(f64::MIN_POSITIVE);
                    t += -u.ln() * cfg.think_mean;
                }
                events.push(TraceEvent {
                    seq: 0,
                    vtime_ms: (t * 1000.0) as u64,
                    user,
                    node,
                    device,
                });
            }
        }
        events.truncate(cfg.requests);
        // Interleave the sessions into global arrival order; the
        // (vtime, user) key makes the order total and deterministic.
        events.sort_by_key(|e| (e.vtime_ms, e.user));
        for (i, e) in events.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        let trace = Trace {
            cfg: *cfg,
            events,
            sessions,
        };
        trace.emit_metrics();
        trace
    }

    fn emit_metrics(&self) {
        sww_obs::counter("sww_workload_traces_total", &[]).inc();
        sww_obs::counter("sww_workload_trace_events_total", &[]).add(self.events.len() as u64);
        for (device, label) in [
            (DeviceKind::Laptop, "laptop"),
            (DeviceKind::Workstation, "workstation"),
            (DeviceKind::Mobile, "mobile"),
        ] {
            let n = self
                .events
                .iter()
                .filter(|e| e.device == device)
                .map(|e| e.user)
                .collect::<std::collections::HashSet<_>>()
                .len();
            sww_obs::counter("sww_workload_sessions_total", &[("device", label)]).add(n as u64);
        }
    }

    /// The config the trace was generated from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// The time-ordered events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of sessions the trace spans.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Virtual duration of the trace in seconds (first to last event).
    pub fn virtual_seconds(&self) -> f64 {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => (b.vtime_ms.saturating_sub(a.vtime_ms)) as f64 / 1000.0,
            _ => 0.0,
        }
    }

    /// Number of distinct pages the trace touches.
    pub fn unique_nodes(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.node)
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// The infinite-cache structural hit rate: the fraction of requests
    /// for a page already requested earlier in the trace. Saturates once
    /// the walk has covered the graph — see [`Trace::lru_hit_rate`] for
    /// the locality-sensitive quantity.
    pub fn structural_hit_rate(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        1.0 - self.unique_nodes() as f64 / self.events.len() as f64
    }

    /// The bounded-cache hit rate: fraction of requests served by an LRU
    /// of `capacity` pages fed the trace in order. Unlike the structural
    /// rate this is sensitive to *locality*: on a clustered (low-β)
    /// graph, concurrent sessions walk overlapping neighbourhoods and
    /// revisit pages while they are still resident; rewiring toward
    /// β = 1 disperses the walks and the rate falls. A pure function of
    /// the event sequence — this is the quantity the monotone
    /// hit-rate-vs-clustering gate compares across β.
    pub fn lru_hit_rate(&self, capacity: usize) -> f64 {
        if self.events.is_empty() || capacity == 0 {
            return 0.0;
        }
        let mut lru = LruTracker::new(capacity);
        let hits = self.events.iter().filter(|e| lru.touch(e.node)).count();
        hits as f64 / self.events.len() as f64
    }

    /// Per-rank visit counts (most popular node first) for exponent
    /// estimation.
    pub fn rank_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.cfg.graph.nodes];
        for e in &self.events {
            counts[e.node] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
    }

    /// FNV-1a digest over every event field — the bit-identity witness.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for e in &self.events {
            mix(e.seq);
            mix(e.vtime_ms);
            mix(e.user);
            mix(e.node as u64);
            mix(match e.device {
                DeviceKind::Laptop => 0,
                DeviceKind::Workstation => 1,
                DeviceKind::Mobile => 2,
            });
        }
        h
    }
}

/// A least-recently-used page set of bounded capacity — the cache model
/// both [`Trace::lru_hit_rate`] and the modelled SLO simulator share.
#[derive(Debug, Clone)]
pub struct LruTracker {
    capacity: usize,
    /// Most-recent first. Capacities here are small (a fraction of the
    /// graph), so linear scans beat pointer-chasing structures.
    order: std::collections::VecDeque<usize>,
}

impl LruTracker {
    /// An empty tracker holding at most `capacity` pages.
    pub fn new(capacity: usize) -> LruTracker {
        LruTracker {
            capacity,
            order: std::collections::VecDeque::with_capacity(capacity),
        }
    }

    /// Record an access: returns `true` on a hit (page resident), and in
    /// either case makes the page most-recent, evicting the coldest page
    /// when full.
    pub fn touch(&mut self, node: usize) -> bool {
        if let Some(pos) = self.order.iter().position(|&n| n == node) {
            self.order.remove(pos);
            self.order.push_front(node);
            return true;
        }
        if self.order.len() == self.capacity {
            self.order.pop_back();
        }
        self.order.push_front(node);
        false
    }
}

/// The seeded permutation mapping popularity ranks to graph nodes
/// (Fisher–Yates), so the hottest page is seed-determined rather than
/// always node 0.
pub fn popularity_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = Rng::new(seed ^ 0x7ace_5eed_0000_0001);
    for i in (1..n).rev() {
        perm.swap(i, rng.below(i + 1));
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            graph: SmallWorldConfig {
                nodes: 48,
                k: 6,
                beta: 0.1,
                seed: 5,
            },
            requests: 600,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn trace_is_a_pure_function_of_the_seed() {
        let a = Trace::generate(&small_cfg());
        let b = Trace::generate(&small_cfg());
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.events(), b.events());
        let c = Trace::generate(&WorkloadConfig {
            seed: 43,
            ..small_cfg()
        });
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn events_are_time_ordered_with_dense_seqs() {
        let t = Trace::generate(&small_cfg());
        assert_eq!(t.events().len(), 600);
        for (i, w) in t.events().windows(2).enumerate() {
            assert!(w[0].vtime_ms <= w[1].vtime_ms, "disorder at {i}");
        }
        for (i, e) in t.events().iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn popularity_is_zipf_shaped() {
        let cfg = WorkloadConfig {
            requests: 8_000,
            ..small_cfg()
        };
        let t = Trace::generate(&cfg);
        let est = crate::popularity::rank_frequency_exponent(&t.rank_counts());
        // The walk flattens the pure Zipf somewhat (uniform link steps),
        // but the skew must clearly survive.
        assert!(est > 0.3, "rank-frequency exponent {est:.2}");
    }

    #[test]
    fn clustering_raises_the_lru_hit_rate() {
        // The E20 shape: longer sessions, gentler restart, bounded
        // cache. Clustered neighbourhood walks must strictly beat the
        // rewired random graph.
        let gen = |beta| {
            Trace::generate(&WorkloadConfig {
                graph: SmallWorldConfig {
                    beta,
                    ..SmallWorldConfig::default()
                },
                walk: crate::session::WalkConfig {
                    restart: 0.10,
                    mean_len: 16.0,
                },
                requests: 4_000,
                ..WorkloadConfig::default()
            })
        };
        let clustered = gen(0.02).lru_hit_rate(32);
        let mid = gen(0.2).lru_hit_rate(32);
        let random = gen(1.0).lru_hit_rate(32);
        assert!(
            clustered > mid && mid > random,
            "hit rates must fall with rewiring: {clustered:.4} / {mid:.4} / {random:.4}"
        );
    }

    #[test]
    fn lru_tracker_hits_and_evicts() {
        let mut lru = LruTracker::new(2);
        assert!(!lru.touch(1));
        assert!(!lru.touch(2));
        assert!(lru.touch(1), "resident page hits");
        assert!(!lru.touch(3), "insert evicts the coldest (2)");
        assert!(!lru.touch(2), "evicted page misses");
        assert!(lru.touch(3));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = popularity_permutation(97, 9);
        let mut seen = [false; 97];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert_ne!(p, popularity_permutation(97, 10));
    }
}
