//! The §2.1 motivating example: a travel-blog page mixing generic
//! (generatable) content with unique content — "the details of a specific
//! hiking route or pictures taken during the hike".

use crate::graph::RecipeSpec;
use sww_core::{SiteContent, SwwPage};
use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::image::codec;

/// Paths of the unique hike photographs kept as real files.
pub const UNIQUE_PHOTOS: [&str; 2] = ["/photos/summit-2025.jpg", "/photos/ridge-camp.jpg"];

/// The page's generative recipes in document order — two generic stock
/// images and one generic intro text block (the second stock image sits
/// after the unique-photo section in the rendered page). The unique route
/// text and hike photos are *not* recipes: they are the §2.1 content that
/// must stay verbatim.
pub fn page_recipes() -> Vec<RecipeSpec> {
    vec![
        RecipeSpec::Image {
            prompt: "a scenic mountain landscape with hiking trail winding through green alpine \
                     meadows, photographed in soft morning light, high quality travel photography"
                .into(),
            name: "stock-header.jpg".into(),
            width: 512,
            height: 512,
        },
        RecipeSpec::Text {
            bullets: vec![
                "hiking preparation essentials boots water layers".into(),
                "mountain weather changes quickly check forecast".into(),
                "trail etiquette respect nature carry out litter".into(),
            ],
            words: 140,
        },
        RecipeSpec::Image {
            prompt: "a wooden signpost on a mountain pass pointing toward distant peaks under a \
                     clear blue sky, classic stock travel photo composition"
                .into(),
            name: "stock-signpost.jpg".into(),
            width: 256,
            height: 256,
        },
    ]
}

/// Prompt-form HTML of the blog page, assembled from [`page_recipes`]
/// plus the unique (non-generative) content.
pub fn page_html() -> String {
    let recipes = page_recipes();
    let divs: Vec<String> = recipes.iter().map(RecipeSpec::div).collect();
    let (stock1, generic_text, stock2) = (&divs[0], &divs[1], &divs[2]);
    // Route-specific text is unique information, kept as-is (§2.1).
    let route_text = "<p class=\"route\">The Gherdeina ridge route starts at the Dantercepies \
         lift (2298 m), follows marker 12A past the Crespëina lake, and descends to Colfosco in \
         about 4h30. The exposed section after the lake has fixed cables; bring a via ferrata set \
         in early season.</p>";

    format!(
        "<html><head><title>Hiking the Gherdeina Ridge</title></head><body>\
         <h1>Hiking the Gherdeina Ridge</h1>{stock1}{generic_text}{route_text}\
         <h2>Photos from the hike</h2>\
         <img src=\"{}\" width=\"512\" height=\"512\">\
         <img src=\"{}\" width=\"512\" height=\"512\">{stock2}</body></html>",
        UNIQUE_PHOTOS[0], UNIQUE_PHOTOS[1]
    )
}

/// Build the travel-blog site: one page with two generic stock images
/// (prompts), one generic intro text block (bullets), the route-specific
/// text kept verbatim, and two unique photographs stored as assets.
pub fn travel_blog() -> SiteContent {
    let mut site = SiteContent::new();
    site.add_page(BLOG_PATH, page_html());

    // The unique photographs: real encoded images (generated once here as
    // stand-ins for camera files, then stored as opaque assets).
    let camera = DiffusionModel::new(ImageModelKind::Dalle3);
    for (i, path) in UNIQUE_PHOTOS.iter().enumerate() {
        let img = camera.generate(&format!("summit photograph number {i}"), 512, 512, 15);
        site.add_asset(*path, codec::encode(&img, 82));
    }
    site
}

/// The page path of the blog post.
pub const BLOG_PATH: &str = "/blog/gherdeina-ridge";

/// Accessor used by benches: the page object.
pub fn blog_page(site: &SiteContent) -> &SwwPage {
    site.page(BLOG_PATH).expect("blog page present")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sww_html::gencontent;

    #[test]
    fn recipes_match_the_rendered_page() {
        // The recipes extracted from the served page are exactly the
        // ones `page_recipes` declares, in document order.
        let doc = sww_html::parse(&page_html());
        let extracted = gencontent::extract(&doc);
        let recipes = page_recipes();
        assert_eq!(extracted.len(), recipes.len());
        for (item, recipe) in extracted.iter().zip(&recipes) {
            match recipe {
                RecipeSpec::Image { prompt, .. } => assert_eq!(item.prompt(), *prompt),
                RecipeSpec::Text { words, .. } => assert_eq!(item.words(), *words),
            }
        }
    }

    #[test]
    fn blog_mixes_generated_and_unique() {
        let site = travel_blog();
        let page = blog_page(&site);
        let doc = sww_html::parse(&page.html);
        let generated = gencontent::extract(&doc);
        assert_eq!(generated.len(), 3, "two stock images + one text block");
        let imgs = sww_html::query::by_tag(&doc, doc.root(), "img");
        assert_eq!(imgs.len(), 2, "two unique photos fetched traditionally");
        assert!(page.html.contains("Crespëina"), "route text kept verbatim");
    }

    #[test]
    fn unique_assets_are_stored() {
        let site = travel_blog();
        assert!(
            site.stored_bytes() > 10_000,
            "unique photos dominate storage"
        );
    }

    #[test]
    fn stock_prompts_have_paper_style_lengths() {
        let site = travel_blog();
        let doc = sww_html::parse(&blog_page(&site).html);
        for item in gencontent::extract(&doc) {
            if item.content_type == gencontent::ContentType::Img {
                let len = item.prompt().len();
                assert!((80..=262).contains(&len), "prompt len {len}");
            }
        }
    }
}
