#![warn(missing_docs)]

//! Workload generators reproducing the paper's evaluation pages (§6.2):
//! the Wikimedia "Landscape" search-results page (49 images, 1.4 MB), the
//! newspaper article (2400 B → 778 B, 3.1×), and the §2.1 travel-blog
//! example with mixed generic and unique content.

pub mod article;
pub mod blog;
pub mod media_classes;
pub mod stock;
pub mod wikimedia;

pub use article::news_article;
pub use blog::travel_blog;
pub use wikimedia::landscape_search_page;
