#![warn(missing_docs)]

//! Workload generators reproducing the paper's evaluation pages (§6.2) —
//! the Wikimedia "Landscape" search-results page (49 images, 1.4 MB), the
//! newspaper article (2400 B → 778 B, 3.1×), and the §2.1 travel-blog
//! example — plus the million-user small-world traffic subsystem: a
//! seeded Watts–Strogatz site graph whose pages carry recipes
//! ([`graph`]), Zipf page popularity ([`popularity`]), random-walk user
//! sessions with restart over heterogeneous client profiles
//! ([`session`]), diurnal arrivals ([`arrival`]), a deterministic trace
//! ([`trace`]), and a replay harness with an SLO scorecard ([`replay`],
//! [`scorecard`]).

pub mod arrival;
pub mod article;
pub mod blog;
pub mod graph;
pub mod media_classes;
pub mod popularity;
pub mod replay;
pub mod scorecard;
pub mod session;
pub mod stock;
pub mod trace;
pub mod wikimedia;

pub use article::news_article;
pub use blog::travel_blog;
pub use graph::{SiteGraph, SmallWorldConfig};
pub use trace::{Trace, WorkloadConfig};
pub use wikimedia::landscape_search_page;
