//! User sessions: heterogeneous client profiles and link-following
//! random walks.
//!
//! Each simulated user gets a device class drawn from the E14 population
//! ([`ProfileMix`]): laptops and workstations generate client-side and
//! announce full ability, while mobile devices (whose on-device
//! generation is orders of magnitude slower, per E14) announce no
//! ability and fall back to server-materialized traditional content —
//! so the device mix directly shapes server-side generation load.
//!
//! A session is a random walk over the site graph's links: it starts on
//! a Zipf-sampled page, follows a uniformly chosen outgoing link each
//! step, and with probability [`WalkConfig::restart`] teleports to a
//! fresh Zipf-sampled page — the PageRank browsing model. On a clustered
//! (low-β) graph, walks revisit overlapping neighbourhoods, which is
//! precisely the locality the serving stack's caches exploit; rewiring
//! toward β = 1 destroys that locality and the measured hit rate falls
//! with the clustering coefficient.

use crate::graph::SiteGraph;
use crate::popularity::Zipf;
use sww_energy::DeviceKind;
use sww_genai::rng::Rng;
use sww_http2::GenAbility;

/// Population shares of the three E14 device classes. Shares must be
/// non-negative and sum to something positive; draws normalise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileMix {
    /// Laptop share (full generation ability).
    pub laptop: f64,
    /// Workstation share (full generation ability).
    pub workstation: f64,
    /// Mobile share (no generation ability; server materializes).
    pub mobile: f64,
}

impl Default for ProfileMix {
    fn default() -> ProfileMix {
        ProfileMix {
            laptop: 0.45,
            workstation: 0.25,
            mobile: 0.30,
        }
    }
}

impl ProfileMix {
    /// Draw a device class from the mix.
    pub fn draw(&self, rng: &mut Rng) -> DeviceKind {
        let total = self.laptop + self.workstation + self.mobile;
        let u = rng.uniform() * total;
        if u < self.laptop {
            DeviceKind::Laptop
        } else if u < self.laptop + self.workstation {
            DeviceKind::Workstation
        } else {
            DeviceKind::Mobile
        }
    }
}

/// The generation ability a device class announces when it connects.
pub fn ability_for(device: DeviceKind) -> GenAbility {
    match device {
        DeviceKind::Mobile => GenAbility::none(),
        DeviceKind::Laptop | DeviceKind::Workstation => GenAbility::full(),
    }
}

/// Random-walk parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkConfig {
    /// Per-step probability of restarting at a Zipf-sampled page (the
    /// PageRank teleport; 0.15 is the classic damping complement).
    pub restart: f64,
    /// Mean session length in page views (geometric continuation).
    pub mean_len: f64,
}

impl Default for WalkConfig {
    fn default() -> WalkConfig {
        WalkConfig {
            restart: 0.15,
            mean_len: 8.0,
        }
    }
}

/// Walk the graph for one session and return the visited node sequence.
/// The first page and every restart target are drawn from `zipf` and
/// mapped through `rank_to_node`; other steps follow a uniform outgoing
/// link. Pure function of the `rng` stream position.
pub fn random_walk(
    graph: &SiteGraph,
    zipf: &Zipf,
    rank_to_node: &[usize],
    cfg: WalkConfig,
    rng: &mut Rng,
) -> Vec<usize> {
    debug_assert_eq!(rank_to_node.len(), graph.len());
    let start = rank_to_node[zipf.sample(rng)];
    let mut pages = vec![start];
    let continue_p = 1.0 - 1.0 / cfg.mean_len.max(1.0);
    while rng.uniform() < continue_p {
        let here = *pages.last().expect("walk is non-empty");
        let next = if rng.uniform() < cfg.restart {
            rank_to_node[zipf.sample(rng)]
        } else {
            let nbrs = graph.neighbors(here);
            if nbrs.is_empty() {
                rank_to_node[zipf.sample(rng)]
            } else {
                nbrs[rng.below(nbrs.len())]
            }
        };
        pages.push(next);
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SmallWorldConfig;

    fn graph() -> SiteGraph {
        SiteGraph::generate(SmallWorldConfig {
            nodes: 48,
            k: 6,
            beta: 0.1,
            seed: 5,
        })
    }

    #[test]
    fn mix_draws_cover_all_classes() {
        let mix = ProfileMix::default();
        let mut rng = Rng::new(9);
        let mut seen = [0usize; 3];
        for _ in 0..3000 {
            match mix.draw(&mut rng) {
                DeviceKind::Laptop => seen[0] += 1,
                DeviceKind::Workstation => seen[1] += 1,
                DeviceKind::Mobile => seen[2] += 1,
            }
        }
        assert!(seen.iter().all(|&c| c > 300), "shares {seen:?}");
        // Laptop is the plurality class in the default mix.
        assert!(seen[0] > seen[1] && seen[0] > seen[2]);
    }

    #[test]
    fn mobile_is_the_only_naive_class() {
        assert_eq!(ability_for(DeviceKind::Mobile), GenAbility::none());
        assert_eq!(ability_for(DeviceKind::Laptop), GenAbility::full());
        assert_eq!(ability_for(DeviceKind::Workstation), GenAbility::full());
    }

    #[test]
    fn walks_follow_links_or_restart() {
        let g = graph();
        let zipf = Zipf::new(g.len(), 1.1);
        let ranks: Vec<usize> = (0..g.len()).collect();
        let mut rng = Rng::new(1);
        for _ in 0..200 {
            let pages = random_walk(&g, &zipf, &ranks, WalkConfig::default(), &mut rng);
            assert!(!pages.is_empty());
            for w in pages.windows(2) {
                let linked = g.neighbors(w[0]).contains(&w[1]);
                assert!(linked || w[1] < g.len(), "step must be a link or restart");
            }
        }
    }

    #[test]
    fn walks_are_deterministic() {
        let g = graph();
        let zipf = Zipf::new(g.len(), 1.1);
        let ranks: Vec<usize> = (0..g.len()).collect();
        let run = |seed| {
            let mut rng = Rng::new(seed);
            (0..50)
                .flat_map(|_| random_walk(&g, &zipf, &ranks, WalkConfig::default(), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(2), run(2));
        assert_ne!(run(2), run(3));
    }

    #[test]
    fn mean_session_length_tracks_config() {
        let g = graph();
        let zipf = Zipf::new(g.len(), 1.1);
        let ranks: Vec<usize> = (0..g.len()).collect();
        let mut rng = Rng::new(4);
        let cfg = WalkConfig {
            mean_len: 8.0,
            ..WalkConfig::default()
        };
        let total: usize = (0..2000)
            .map(|_| random_walk(&g, &zipf, &ranks, cfg, &mut rng).len())
            .sum();
        let mean = total as f64 / 2000.0;
        assert!((6.0..10.0).contains(&mean), "mean session length {mean}");
    }
}
