//! The deterministic replay harness: drive a generated [`Trace`] through
//! the real serving stack and score it.
//!
//! One [`ReplayEngine`] wraps one trace and replays it against a chosen
//! [`ReplayTarget`]:
//!
//! * `Single` — in-process sessions against one [`GenerativeServer`]
//!   (client threads partition users, preserving per-user order),
//! * `H2` / `H3` — the full framing path over in-memory duplex streams
//!   (`serve_stream` / `serve_h3_stream`), one persistent connection per
//!   announced ability,
//! * `Cluster(n)` — the PR 8 consistent-hash edge tier via
//!   [`EdgeRouter`], entry node chosen per user.
//!
//! Replay is compressed: virtual think time in the trace is *not* slept
//! away — `vtime` feeds the modelled simulator, the live run measures
//! the stack at full speed. The [`ReplayOutcome`] carries a
//! scheduling-invariant response digest (per-event status and body
//! digest, folded in trace order), so two replays of the same seed on
//! fresh servers are bit-comparable, and an SLO [`Scorecard`] reconciled
//! against the `/metrics` counters.
//!
//! The modelled half ([`modelled_slo`]) runs the same trace generator
//! through a discrete-event single-queue-per-node simulation over
//! virtual time — no clocks, no threads — which is how the E20 SLO
//! numbers (p99 vs deadline, sustained qps) scale to millions of
//! requests deterministically.

use crate::scorecard::{LifecycleSnapshot, Scorecard};
use crate::session::ability_for;
use crate::trace::{Trace, TraceEvent, WorkloadConfig};
use std::sync::Arc;
use std::time::Instant;
use sww_core::{EdgeConfig, EdgeRouter, GenerativeServer, MediaGenerator, ServerConfig};
use sww_energy::cost;
use sww_energy::device::{profile, DeviceKind};
use sww_http2::{GenAbility, Request};
use sww_http3::H3ClientConnection;

/// Where a replay run sends its traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayTarget {
    /// One in-process server, sync sessions.
    Single,
    /// One server behind HTTP/2 framing (duplex stream).
    H2,
    /// One server behind HTTP/3 framing (duplex stream).
    H3,
    /// An `n`-node consistent-hash edge cluster.
    Cluster(usize),
}

impl ReplayTarget {
    /// Short label for tables, metrics, and report records.
    pub fn label(&self) -> String {
        match self {
            ReplayTarget::Single => "single".into(),
            ReplayTarget::H2 => "h2".into(),
            ReplayTarget::H3 => "h3".into(),
            ReplayTarget::Cluster(n) => format!("edge{n}"),
        }
    }
}

/// Replay knobs independent of the workload itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// The target stack.
    pub target: ReplayTarget,
    /// Client threads for the sync targets (`Single` / `Cluster`).
    pub threads: usize,
    /// Optional per-request deadline sent as `x-sww-deadline-ms`.
    pub deadline_ms: Option<u64>,
    /// Bounded retries on retryable statuses (500/502/503).
    pub max_retries: usize,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            target: ReplayTarget::Single,
            threads: 4,
            deadline_ms: None,
            max_retries: 6,
        }
    }
}

/// What one replay run produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The SLO scorecard (statuses, retries, lifecycle deltas, wall
    /// percentiles).
    pub scorecard: Scorecard,
    /// Digest of the trace that was replayed.
    pub trace_digest: u64,
    /// Scheduling-invariant digest over `(seq, status, body)` for every
    /// event in trace order — the replay-determinism witness.
    pub response_digest: u64,
    /// Server-side generations the run caused (summed across nodes).
    pub generations: u64,
    /// Engine-level coalesces + cache hits (summed across nodes).
    pub coalesced: u64,
    /// Requests issued by ability-less (mobile) sessions — the ones that
    /// can trigger server-side generation.
    pub naive_requests: u64,
    /// Generation cache efficiency over naive traffic:
    /// `1 − generations/naive_requests`.
    pub hit_rate: f64,
}

/// One event's replay result, keyed for order-invariant folding.
struct EventResult {
    seq: u64,
    status: u16,
    body_digest: u64,
    wall_us: u64,
    retries: u64,
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Statuses worth a retry hop. Delegates to the protocol layer's single
/// retryability predicate so the replayer, the client retry policy, and
/// the edge successor walk cannot drift apart (this retired a local
/// list that omitted `504` — a missed deadline is retryable here too,
/// matching the client).
fn retryable(status: u16) -> bool {
    sww_core::retryable_status(status)
}

/// The replay harness: one trace, many targets.
#[derive(Debug, Clone)]
pub struct ReplayEngine {
    trace: Trace,
}

impl ReplayEngine {
    /// Wrap an already-generated trace.
    pub fn new(trace: Trace) -> ReplayEngine {
        ReplayEngine { trace }
    }

    /// Generate the trace for `cfg` and wrap it.
    pub fn from_config(cfg: &WorkloadConfig) -> ReplayEngine {
        ReplayEngine::new(Trace::generate(cfg))
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Replay the trace against `rcfg.target` on a fresh stack and score
    /// the run.
    pub fn run(&self, rcfg: &ReplayConfig) -> ReplayOutcome {
        let before = LifecycleSnapshot::take();
        let start = Instant::now();
        let (results, generations, coalesced) = match rcfg.target {
            ReplayTarget::Single => self.run_sync(rcfg, 1, false),
            ReplayTarget::Cluster(n) => self.run_sync(rcfg, n.max(1), true),
            ReplayTarget::H2 => self.run_transport(rcfg, false),
            ReplayTarget::H3 => self.run_transport(rcfg, true),
        };
        let elapsed = start.elapsed().as_secs_f64();
        let after = LifecycleSnapshot::take();
        self.outcome(
            rcfg,
            results,
            generations,
            coalesced,
            elapsed,
            before,
            after,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn outcome(
        &self,
        rcfg: &ReplayConfig,
        mut results: Vec<EventResult>,
        generations: u64,
        coalesced: u64,
        elapsed: f64,
        before: LifecycleSnapshot,
        after: LifecycleSnapshot,
    ) -> ReplayOutcome {
        results.sort_by_key(|r| r.seq);
        let mut card = Scorecard::new(rcfg.target.label());
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mix = |x: u64, h: &mut u64| {
            *h ^= x;
            *h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for r in &results {
            mix(r.seq, &mut digest);
            mix(u64::from(r.status), &mut digest);
            mix(r.body_digest, &mut digest);
            card.record(r.status, r.wall_us);
            card.add_retries(r.retries);
        }
        card.generations = generations;
        card.coalesced = coalesced;
        card.lifecycle = before.delta(&after);
        card.finish(elapsed);
        let naive_requests = self
            .trace
            .events()
            .iter()
            .filter(|e| e.device == DeviceKind::Mobile)
            .count() as u64;
        let label = rcfg.target.label();
        sww_obs::counter("sww_workload_replay_runs_total", &[]).inc();
        sww_obs::counter("sww_workload_replayed_total", &[("target", &label)])
            .add(results.len() as u64);
        ReplayOutcome {
            scorecard: card,
            trace_digest: self.trace.digest(),
            response_digest: digest,
            generations,
            coalesced,
            naive_requests,
            hit_rate: if naive_requests == 0 {
                0.0
            } else {
                1.0 - generations as f64 / naive_requests as f64
            },
        }
    }

    fn build_request(&self, rcfg: &ReplayConfig, path: String) -> Request {
        let mut req = Request::get(path);
        if let Some(ms) = rcfg.deadline_ms {
            req.headers.insert("x-sww-deadline-ms", ms.to_string());
        }
        req
    }

    /// Sync replay: `Single` is a 1-node cluster without the ring hop;
    /// both share the thread-per-user-partition drive loop.
    fn run_sync(
        &self,
        rcfg: &ReplayConfig,
        nodes: usize,
        via_ring: bool,
    ) -> (Vec<EventResult>, u64, u64) {
        let graph = self.trace.config().site_graph();
        let site = graph.site_content();
        let stack = Arc::new(if via_ring {
            SyncStack::Ring(EdgeRouter::new(
                EdgeConfig {
                    nodes,
                    ..EdgeConfig::default()
                },
                site,
                |site| {
                    GenerativeServer::from_config(ServerConfig {
                        site,
                        ..ServerConfig::default()
                    })
                },
            ))
        } else {
            SyncStack::Server(GenerativeServer::from_config(ServerConfig {
                site,
                ..ServerConfig::default()
            }))
        });
        let threads = rcfg.threads.max(1);
        let results: Vec<EventResult> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let stack = Arc::clone(&stack);
                let graph = &graph;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    // Sync sessions are per-ability; edge entry is the
                    // user's home node, so a user's requests stay on one
                    // entry (session affinity).
                    let sessions = match &*stack {
                        SyncStack::Server(server) => Some((
                            server.accept(GenAbility::full()),
                            server.accept(GenAbility::none()),
                        )),
                        SyncStack::Ring(_) => None,
                    };
                    for e in self
                        .trace
                        .events()
                        .iter()
                        .filter(|e| e.user as usize % threads == t)
                    {
                        let req = self.build_request(rcfg, graph.node_path(e.node));
                        let t0 = Instant::now();
                        let mut retries = 0u64;
                        let mut resp = self.dispatch(&stack, &sessions, e, nodes, &req);
                        while retryable(resp.status) && retries < rcfg.max_retries as u64 {
                            retries += 1;
                            resp = self.dispatch(&stack, &sessions, e, nodes, &req);
                        }
                        out.push(EventResult {
                            seq: e.seq,
                            status: resp.status,
                            body_digest: fnv(&resp.body),
                            wall_us: t0.elapsed().as_micros() as u64,
                            retries,
                        });
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("replay thread"))
                .collect()
        });
        let (generations, coalesced) = match &*stack {
            SyncStack::Server(server) => {
                (server.engine().generations(), server.engine().coalesced())
            }
            SyncStack::Ring(router) => {
                let nodes = router.nodes();
                (
                    nodes
                        .iter()
                        .map(|n| n.server().engine().generations())
                        .sum(),
                    nodes.iter().map(|n| n.server().engine().coalesced()).sum(),
                )
            }
        };
        (results, generations, coalesced)
    }

    fn dispatch(
        &self,
        stack: &SyncStack,
        sessions: &Option<(sww_core::Session, sww_core::Session)>,
        e: &TraceEvent,
        nodes: usize,
        req: &Request,
    ) -> sww_http2::Response {
        match stack {
            SyncStack::Server(_) => {
                let (full, naive) = sessions.as_ref().expect("single-node sessions");
                if e.device == DeviceKind::Mobile {
                    naive.handle(req)
                } else {
                    full.handle(req)
                }
            }
            SyncStack::Ring(router) => {
                router.handle(e.user as usize % nodes, ability_for(e.device), req)
            }
        }
    }

    /// Transport replay: the whole trace over persistent in-memory h2 or
    /// h3 connections, one per announced ability, events in trace order.
    fn run_transport(&self, rcfg: &ReplayConfig, h3: bool) -> (Vec<EventResult>, u64, u64) {
        let graph = self.trace.config().site_graph();
        let server = GenerativeServer::from_config(ServerConfig {
            site: graph.site_content(),
            ..ServerConfig::default()
        });
        let rt = tokio::runtime::Builder::new_multi_thread()
            .worker_threads(2)
            .enable_all()
            .build()
            .expect("tokio runtime");
        let mut results = Vec::with_capacity(self.trace.events().len());
        rt.block_on(async {
            if h3 {
                let mut full = h3_connect(&server, GenAbility::full()).await;
                let mut naive = h3_connect(&server, GenAbility::none()).await;
                for e in self.trace.events() {
                    let req = self.build_request(rcfg, graph.node_path(e.node));
                    let conn = if e.device == DeviceKind::Mobile {
                        &mut naive
                    } else {
                        &mut full
                    };
                    let t0 = Instant::now();
                    let mut retries = 0u64;
                    let mut resp = h3_send(conn, &req).await;
                    while retryable(resp.status) && retries < rcfg.max_retries as u64 {
                        retries += 1;
                        resp = h3_send(conn, &req).await;
                    }
                    results.push(EventResult {
                        seq: e.seq,
                        status: resp.status,
                        body_digest: fnv(&resp.body),
                        wall_us: t0.elapsed().as_micros() as u64,
                        retries,
                    });
                }
            } else {
                let mut full = h2_connect(&server, GenAbility::full()).await;
                let mut naive = h2_connect(&server, GenAbility::none()).await;
                for e in self.trace.events() {
                    let req = self.build_request(rcfg, graph.node_path(e.node));
                    let conn = if e.device == DeviceKind::Mobile {
                        &mut naive
                    } else {
                        &mut full
                    };
                    let t0 = Instant::now();
                    let mut retries = 0u64;
                    let mut resp = conn.send_request(&req).await.expect("h2 request");
                    while retryable(resp.status) && retries < rcfg.max_retries as u64 {
                        retries += 1;
                        resp = conn.send_request(&req).await.expect("h2 request");
                    }
                    results.push(EventResult {
                        seq: e.seq,
                        status: resp.status,
                        body_digest: fnv(&resp.body),
                        wall_us: t0.elapsed().as_micros() as u64,
                        retries,
                    });
                }
                let _ = full.close().await;
                let _ = naive.close().await;
            }
        });
        let generations = server.engine().generations();
        let coalesced = server.engine().coalesced();
        (results, generations, coalesced)
    }
}

/// The sync-target stack, named so `dispatch` can take it by reference.
enum SyncStack {
    /// One server (sessions created per thread).
    Server(GenerativeServer),
    /// The consistent-hash edge tier.
    Ring(EdgeRouter),
}

async fn h2_connect(
    server: &GenerativeServer,
    ability: GenAbility,
) -> sww_http2::ClientConnection<tokio::io::DuplexStream> {
    let (a, b) = tokio::io::duplex(1 << 20);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_stream(b).await;
    });
    sww_http2::ClientConnection::handshake(a, ability)
        .await
        .expect("h2 handshake")
}

async fn h3_connect(
    server: &GenerativeServer,
    ability: GenAbility,
) -> H3ClientConnection<tokio::io::DuplexStream> {
    let (a, b) = tokio::io::duplex(1 << 20);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_h3_stream(b).await;
    });
    H3ClientConnection::handshake(a, ability)
        .await
        .expect("h3 handshake")
}

async fn h3_send(
    conn: &mut H3ClientConnection<tokio::io::DuplexStream>,
    req: &Request,
) -> sww_http2::Response {
    let mut resps = conn
        .send_requests(std::slice::from_ref(req))
        .await
        .expect("h3 request");
    resps.pop().expect("one response per request")
}

/// The modelled SLO for one workload at millions-of-requests scale: a
/// deterministic discrete-event simulation over the trace's virtual
/// time. Each cluster node is a FIFO queue with a bounded LRU page
/// cache; a request missing the cache pays the cost model's generation
/// seconds for every recipe on its page, a resident page pays only the
/// serve overhead. No clocks, no threads — a pure function of the
/// config, which is why these numbers (unlike the wall-clock scorecard)
/// are gated.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelledSlo {
    /// Requests simulated.
    pub requests: u64,
    /// Distinct pages touched.
    pub unique_pages: usize,
    /// Bounded-LRU cache hit rate (gated monotone vs clustering).
    pub hit_rate: f64,
    /// Offered load over the virtual duration, requests per second.
    pub offered_qps: f64,
    /// 99th-percentile modelled sojourn (queue + service) in ms.
    pub p99_ms: f64,
    /// Mean modelled sojourn in ms.
    pub mean_ms: f64,
}

/// Per-request modelled serve overhead in seconds (parse + cache lookup +
/// framing; far below a generation).
pub const MODELLED_SERVE_S: f64 = 0.000_5;

/// Run the modelled simulation for `cfg` over a `nodes`-wide cluster
/// whose per-node page caches hold `cache_capacity` pages each.
pub fn modelled_slo(cfg: &WorkloadConfig, nodes: usize, cache_capacity: usize) -> ModelledSlo {
    let trace = Trace::generate(cfg);
    let generator = MediaGenerator::new(profile(DeviceKind::Workstation));
    // One 64×64 generation on the serving device — the recipes the
    // generated graph pages carry. Anchor pages carry more/larger
    // recipes; the simulation charges per recipe via the page's spec.
    let gen_s = cost::image_generation_time(
        generator.image_model(),
        &profile(DeviceKind::Workstation),
        64,
        64,
        generator.inference_steps(),
    )
    .expect("workstation runs the serving model");
    let graph = cfg.site_graph();
    let recipe_counts: Vec<usize> = (0..graph.len())
        .map(|n| graph.page_spec(n).recipes.len())
        .collect();
    let nodes = nodes.max(1);
    let mut node_free = vec![0.0f64; nodes];
    let mut caches: Vec<crate::trace::LruTracker> = (0..nodes)
        .map(|_| crate::trace::LruTracker::new(cache_capacity))
        .collect();
    let mut hits = 0u64;
    let mut sojourn_ms: Vec<f64> = Vec::with_capacity(trace.events().len());
    for e in trace.events() {
        let t = e.vtime_ms as f64 / 1000.0;
        // Owner approximates the consistent-hash ring: stable per page.
        let owner = e.node % nodes;
        let service = if caches[owner].touch(e.node) {
            hits += 1;
            MODELLED_SERVE_S
        } else {
            MODELLED_SERVE_S + recipe_counts[e.node] as f64 * gen_s
        };
        let start = node_free[owner].max(t);
        let done = start + service;
        node_free[owner] = done;
        sojourn_ms.push((done - t) * 1000.0);
    }
    let hit_rate = if trace.events().is_empty() {
        0.0
    } else {
        hits as f64 / trace.events().len() as f64
    };
    sojourn_ms.sort_by(|a, b| a.total_cmp(b));
    let p99 = percentile(&sojourn_ms, 99.0);
    let mean = if sojourn_ms.is_empty() {
        0.0
    } else {
        sojourn_ms.iter().sum::<f64>() / sojourn_ms.len() as f64
    };
    ModelledSlo {
        requests: trace.events().len() as u64,
        unique_pages: trace.unique_nodes(),
        hit_rate,
        offered_qps: trace.events().len() as f64 / trace.virtual_seconds().max(1e-9),
        p99_ms: p99,
        mean_ms: mean,
    }
}

fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SmallWorldConfig;

    fn tiny() -> WorkloadConfig {
        WorkloadConfig {
            graph: SmallWorldConfig {
                nodes: 24,
                k: 4,
                beta: 0.2,
                seed: 5,
            },
            requests: 120,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn single_replay_succeeds_and_reconciles() {
        let engine = ReplayEngine::from_config(&tiny());
        let out = engine.run(&ReplayConfig::default());
        assert_eq!(out.scorecard.requests, 120);
        assert_eq!(out.scorecard.ok, 120, "all replayed requests serve");
        assert!(out.naive_requests > 0, "the mix includes mobile users");
        assert!(out.generations <= out.naive_requests);
        assert!(out.hit_rate > 0.0, "revisits must hit the cache");
    }

    #[test]
    fn replay_is_deterministic_on_fresh_stacks() {
        let a = ReplayEngine::from_config(&tiny()).run(&ReplayConfig::default());
        let b = ReplayEngine::from_config(&tiny()).run(&ReplayConfig::default());
        assert_eq!(a.trace_digest, b.trace_digest);
        assert_eq!(a.response_digest, b.response_digest);
        assert_eq!(a.generations, b.generations);
    }

    #[test]
    fn cluster_replay_matches_single_node_bytes() {
        let single = ReplayEngine::from_config(&tiny()).run(&ReplayConfig::default());
        let cluster = ReplayEngine::from_config(&tiny()).run(&ReplayConfig {
            target: ReplayTarget::Cluster(3),
            ..ReplayConfig::default()
        });
        assert_eq!(cluster.scorecard.ok, cluster.scorecard.requests);
        assert_eq!(
            single.response_digest, cluster.response_digest,
            "payloads must not depend on the topology"
        );
    }

    #[test]
    fn modelled_slo_is_deterministic() {
        let a = modelled_slo(&tiny(), 4, 8);
        let b = modelled_slo(&tiny(), 4, 8);
        assert_eq!(a, b);
        assert!(a.requests == 120);
        assert!(a.hit_rate > 0.0);
        assert!(a.p99_ms >= a.mean_ms * 0.5);
    }
}
