//! The §6.2 text workload: a newspaper article of ≈2400 bytes whose
//! bullet-point form is ≈778 bytes (3.1× compression).

use crate::graph::RecipeSpec;
use sww_genai::text::bullets;

/// Request path of the article page when served (also the path of its
/// anchor node in the small-world site graph).
pub const PAGE_PATH: &str = "/news/light-rail";

/// The article text (written for this repository; ≈2400 bytes of typical
/// regional-news prose).
pub static ARTICLE: &str = "\
The regional council voted on Tuesday to approve the long debated extension of the light rail \
network, ending a planning process that has stretched across nearly six years. The approved route \
adds eleven kilometres of track and seven new stations, connecting the university district with \
the industrial parks on the eastern edge of the city. Construction is scheduled to begin in the \
spring, with the first trains expected to run within four years.

Officials presented projections showing that the extension will carry around forty thousand \
passengers each weekday, reducing car traffic on the parallel motorway by an estimated twelve \
percent. Commute times between the university and the eastern employment zone are expected to \
fall by twenty minutes in each direction. The council also approved a plan to redesign three of \
the busiest interchange stations, adding step free access and secure bicycle parking.

Funding for the project combines national infrastructure grants with a municipal bond issue that \
was oversubscribed within two days of its announcement. Opposition members criticised the chosen \
alignment, arguing that a northern variant would have served two large housing estates that \
currently lack rapid transit. The transport committee responded that the northern option would \
have required an additional river crossing and delayed the opening by at least three years.

Local businesses along the route have expressed cautious optimism. A survey conducted by the \
chamber of commerce found that two thirds of shop owners expect increased foot traffic once the \
line opens, although many voiced concerns about access during the construction period. The city \
has promised a compensation scheme modelled on the one used during the refurbishment of the \
central station, which paid out to traders whose revenue fell during the works.

Environmental groups welcomed the decision while urging the council to commit to the promised \
tree planting along the corridor. The environmental assessment filed with the application \
estimates that the completed rail line will remove around nine thousand tonnes of carbon dioxide \
emissions each year once passenger numbers reach the projected level, a figure that independent \
reviewers at the technical university described as plausible but sensitive to fare policy.";

/// Requested expansion length in words, matching the article's own length
/// so the regeneration is a faithful reconstruction target.
pub fn target_words() -> usize {
    ARTICLE.split_whitespace().count()
}

/// The bullet-point (SWW) form of the article.
pub fn article_bullets() -> Vec<String> {
    bullets::to_bullets(ARTICLE, 6)
}

/// The article's recipe — the single source of truth the on-the-wire
/// division and the graph anchor node both assemble from.
pub fn page_recipe() -> RecipeSpec {
    RecipeSpec::Text {
        bullets: article_bullets(),
        words: target_words(),
    }
}

/// The on-the-wire generated-content division for the article.
pub fn news_article() -> String {
    page_recipe().div()
}

/// Prompt-form HTML of the article as a servable page.
pub fn page_html() -> String {
    let title = "Light rail extension approved";
    format!(
        "<html><head><title>{title}</title></head><body><h1>{title}</h1>{}</body></html>",
        news_article()
    )
}

/// Original and converted byte sizes `(original, converted)`.
pub fn sizes() -> (usize, usize) {
    (
        ARTICLE.len(),
        bullets::bullets_wire_size(&article_bullets()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sww_html::gencontent;

    #[test]
    fn article_is_about_2400_bytes() {
        // Paper: "from 2400B to 778B".
        let len = ARTICLE.len();
        assert!((2200..2600).contains(&len), "article is {len} B");
    }

    #[test]
    fn compression_near_3x() {
        let (original, converted) = sizes();
        let ratio = original as f64 / converted as f64;
        assert!(
            (2.4..4.2).contains(&ratio),
            "text compression {ratio:.2}x (orig {original}, conv {converted})"
        );
    }

    #[test]
    fn division_roundtrips() {
        let html = news_article();
        let doc = sww_html::parse(&html);
        let items = gencontent::extract(&doc);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].words(), target_words());
        assert!(items[0].bullets().len() >= 10);
    }

    #[test]
    fn page_html_serves_the_single_recipe() {
        let doc = sww_html::parse(&page_html());
        let items = gencontent::extract(&doc);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].words(), target_words());
    }

    #[test]
    fn bullets_preserve_key_facts() {
        let joined = article_bullets().join(" ");
        for fact in ["extension", "route", "construction", "funding", "council"] {
            assert!(joined.contains(fact), "missing fact {fact}");
        }
    }
}
