//! The Table 2 media classes: small / medium / large images and the
//! 250-word text block, with their nominal sizes and worst-case metadata
//! budgets from the paper.

use sww_genai::text::bullets;
use sww_html::gencontent;
use sww_json::Value;

/// One Table 2 row's inputs.
#[derive(Debug, Clone)]
pub struct MediaClass {
    /// Row label as printed.
    pub label: &'static str,
    /// Image side (0 for the text row).
    pub side: u32,
    /// The paper's nominal media size in bytes.
    pub nominal_bytes: u64,
    /// The paper's metadata budget in bytes.
    pub nominal_metadata: u64,
}

/// The four Table 2 rows.
pub fn table2_classes() -> [MediaClass; 4] {
    [
        MediaClass {
            label: "Small Image (256x256)",
            side: 256,
            nominal_bytes: 8_192,
            nominal_metadata: 428,
        },
        MediaClass {
            label: "Medium Image (512x512)",
            side: 512,
            nominal_bytes: 32_768,
            nominal_metadata: 428,
        },
        MediaClass {
            label: "Large Image (1024x1024)",
            side: 1024,
            nominal_bytes: 131_072,
            nominal_metadata: 428,
        },
        MediaClass {
            label: "Text Block (250 words)",
            side: 0,
            nominal_bytes: 1_250,
            nominal_metadata: 649,
        },
    ]
}

/// The worst-case image metadata of the paper's footnote: a 400 B prompt,
/// 20 B name, 4 B per dimension — measured in its serialized JSON form.
pub fn worst_case_image_metadata(side: u32) -> Value {
    let prompt = "a ".repeat(200); // exactly 400 bytes
    Value::object([
        ("prompt", Value::from(prompt.trim_end())),
        (
            "name",
            Value::from("generated_image.jpg\u{0}".trim_end_matches('\u{0}')),
        ),
        ("width", Value::from(u64::from(side) as i64)),
        ("height", Value::from(u64::from(side) as i64)),
    ])
}

/// A 250-word text block and its bullet metadata, sized to the paper's
/// 1250 B / 649 B text row. Sentences vary so the bullet conversion faces
/// realistic (non-duplicate) prose.
pub fn text_block_250() -> (String, String) {
    let subjects = ["trail", "path", "route", "track", "ridge"];
    let verbs = ["winds", "climbs", "turns", "narrows", "levels"];
    let places = [
        "through quiet pine forest",
        "past weathered granite slabs",
        "along the grassy shoulder",
        "above the shadowed ravine",
        "beside a cold clear stream",
    ];
    let ends = [
        "toward the open ridge ahead",
        "until the valley spreads below",
        "where walkers pause to rest",
        "before the final steep rise",
        "as the morning light strengthens",
    ];
    let mut sentences = Vec::new();
    let mut i = 0usize;
    let mut words = 0usize;
    while words < 250 {
        let s = format!(
            "The {} {} {} {}.",
            subjects[i % subjects.len()],
            verbs[(i / 2) % verbs.len()],
            places[(i / 3) % places.len()],
            ends[(i / 5) % ends.len()]
        );
        words += s.split_whitespace().count();
        sentences.push(s);
        i += 1;
    }
    let mut text = sentences.join(" ");
    // Trim to exactly 250 words.
    let w: Vec<&str> = text.split_whitespace().take(250).collect();
    text = w.join(" ");
    let blist = bullets::to_bullets(&text, 10);
    let div = gencontent::text_div(&blist, 250);
    (text, div)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_compression_ratios_match_table2() {
        // 19.14 / 76.56 / 306.24 / 1.93.
        let expected = [19.14, 76.56, 306.24, 1.93];
        for (class, exp) in table2_classes().iter().zip(expected) {
            let ratio = class.nominal_bytes as f64 / class.nominal_metadata as f64;
            assert!(
                (ratio - exp).abs() / exp < 0.01,
                "{}: {ratio:.2} vs {exp}",
                class.label
            );
        }
    }

    #[test]
    fn worst_case_metadata_near_428_bytes() {
        let md = worst_case_image_metadata(1024);
        let size = sww_json::to_string(&md).len();
        assert!(
            (428..=475).contains(&size),
            "worst-case metadata {size} B (428 B payload + JSON framing)"
        );
    }

    #[test]
    fn text_block_is_1250_bytes_ish() {
        let (text, _div) = text_block_250();
        assert_eq!(text.split_whitespace().count(), 250);
        let len = text.len();
        assert!((1150..1600).contains(&len), "text block {len} B");
    }

    #[test]
    fn text_division_parses() {
        let (_, div) = text_block_250();
        let doc = sww_html::parse(&div);
        let items = gencontent::extract(&doc);
        assert_eq!(items[0].words(), 250);
    }
}
