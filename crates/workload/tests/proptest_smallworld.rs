//! Property tests for the Watts–Strogatz site-graph generator
//! (`sww_workload::graph`) — the structural invariants the E20 workload
//! sweep rests on, checked for *arbitrary* sizes, rewiring
//! probabilities, and seeds rather than the unit tests' hand-picked
//! ones.
//!
//! * **Connectivity**: rewiring never disconnects the site — every page
//!   stays reachable from every other, at any β.
//! * **Edge conservation**: rewiring moves endpoints but never adds or
//!   drops links; the graph keeps exactly `nodes·k/2` edges.
//! * **Lattice regularity**: at β = 0 the generator emits the pure ring
//!   lattice — every node has degree exactly `k` and the clustering
//!   coefficient equals the closed form `3(k−2)/(4(k−1))`.
//! * **Small-world transition**: as β rises the clustering coefficient
//!   strictly falls and the mean shortest path shortens — the
//!   paper's locality knob really is a locality knob.
//! * **Determinism**: equal seeds produce bit-identical graphs and
//!   traces, both within a process and across two independently
//!   spawned processes.

use proptest::prelude::*;
use std::process::Command;
use sww_workload::graph::{SiteGraph, SmallWorldConfig};
use sww_workload::trace::{Trace, WorkloadConfig};

fn graph(nodes: usize, k: usize, beta: f64, seed: u64) -> SiteGraph {
    SiteGraph::generate(SmallWorldConfig {
        nodes,
        k,
        beta,
        seed,
    })
}

/// The workload driven over a probe graph by the determinism checks.
fn probe_workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        graph: SmallWorldConfig {
            nodes: 96,
            k: 8,
            beta: 0.3,
            seed,
        },
        requests: 400,
        seed,
        ..WorkloadConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rewiring_preserves_connectivity_and_edge_count(
        nodes in 24usize..=96,
        k_idx in 0usize..3,
        beta_milli in 0u32..=1000,
        seed in 0u64..=u64::MAX,
    ) {
        let k = [4, 6, 8][k_idx];
        let beta = f64::from(beta_milli) / 1000.0;
        let g = graph(nodes, k, beta, seed);
        prop_assert_eq!(g.len(), nodes);
        prop_assert!(
            g.is_connected(),
            "β={beta:.3} disconnected a {nodes}-node k={k} graph (seed {seed})"
        );
        prop_assert_eq!(g.edge_count(), nodes * k / 2);
    }

    #[test]
    fn the_unrewired_lattice_is_degree_regular(
        nodes in 32usize..=96,
        k_idx in 0usize..3,
        seed in 0u64..=u64::MAX,
    ) {
        let k = [4, 6, 8][k_idx];
        let g = graph(nodes, k, 0.0, seed);
        for (node, degree) in g.degrees().into_iter().enumerate() {
            prop_assert_eq!(degree, k, "node {} of the lattice", node);
        }
        // Ring-lattice closed form: C(0) = 3(k−2) / 4(k−1).
        let expected = 3.0 * (k as f64 - 2.0) / (4.0 * (k as f64 - 1.0));
        let got = g.clustering_coefficient();
        prop_assert!(
            (got - expected).abs() < 1e-9,
            "lattice clustering {got} != closed form {expected} (k={k})"
        );
    }

    #[test]
    fn clustering_falls_and_paths_shorten_as_beta_rises(
        seed in 0u64..=u64::MAX,
    ) {
        let probe = |beta: f64| {
            let g = graph(128, 8, beta, seed);
            (g.clustering_coefficient(), g.mean_path_length())
        };
        let (c_lattice, p_lattice) = probe(0.0);
        let (c_mid, p_mid) = probe(0.2);
        let (c_random, p_random) = probe(1.0);
        prop_assert!(
            c_lattice > c_mid && c_mid > c_random,
            "clustering must strictly fall with β: {c_lattice:.4} / {c_mid:.4} / {c_random:.4}"
        );
        prop_assert!(
            p_lattice > p_mid && p_mid > p_random,
            "paths must shorten with β: {p_lattice:.3} / {p_mid:.3} / {p_random:.3}"
        );
    }

    #[test]
    fn equal_seeds_generate_bit_identical_graphs_and_traces(
        beta_milli in 0u32..=1000,
        seed in 0u64..=u64::MAX,
    ) {
        let beta = f64::from(beta_milli) / 1000.0;
        let a = graph(64, 6, beta, seed);
        let b = graph(64, 6, beta, seed);
        prop_assert_eq!(a.digest(), b.digest());
        for node in 0..a.len() {
            prop_assert_eq!(a.neighbors(node), b.neighbors(node), "node {}", node);
        }
        let cfg = WorkloadConfig {
            graph: a.config(),
            requests: 300,
            seed,
            ..WorkloadConfig::default()
        };
        let ta = Trace::generate(&cfg);
        let tb = Trace::generate(&cfg);
        prop_assert_eq!(ta.digest(), tb.digest());
        prop_assert_eq!(ta.events(), tb.events());
    }
}

/// Seed handed to the out-of-process probe below; when set, this binary
/// prints the digests instead of asserting anything.
const PROBE_ENV: &str = "SWW_SMALLWORLD_PROBE_SEED";

fn probe_line(seed: u64) -> String {
    let cfg = probe_workload(seed);
    let g = cfg.site_graph();
    format!(
        "probe-digest graph={} trace={}",
        g.digest(),
        Trace::generate(&cfg).digest()
    )
}

/// Probe mode: re-invoked by `generation_is_bit_identical_across_processes`
/// in a fresh process. A no-op in a normal test run.
#[test]
fn digest_probe() {
    if let Ok(seed) = std::env::var(PROBE_ENV) {
        println!("{}", probe_line(seed.parse().expect("probe seed")));
    }
}

#[test]
fn generation_is_bit_identical_across_processes() {
    let seed = 1234u64;
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        let out = Command::new(&exe)
            .args([
                "digest_probe",
                "--exact",
                "--nocapture",
                "--test-threads",
                "1",
            ])
            .env(PROBE_ENV, seed.to_string())
            .output()
            .expect("spawn probe process");
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(out.status.success(), "probe process failed:\n{stdout}");
        // The harness prints its own `test digest_probe ...` prefix on
        // the same line, so locate the marker rather than the line start.
        let at = stdout.find("probe-digest").expect("probe output");
        stdout[at..]
            .lines()
            .next()
            .expect("probe line")
            .trim()
            .to_string()
    };
    let first = spawn();
    let second = spawn();
    assert_eq!(first, second, "two fresh processes disagreed");
    assert_eq!(
        first,
        probe_line(seed),
        "spawned processes disagree with the in-process construction"
    );
}
