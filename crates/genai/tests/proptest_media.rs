//! Property tests over the media substrate: the codec must roundtrip any
//! image at any quality with bounded distortion, and the generators must
//! be total and deterministic over arbitrary prompts.

use proptest::prelude::*;
use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::image::{codec, ImageBuffer};
use sww_genai::rng::Rng;
use sww_genai::text::{TextModel, TextModelKind};

fn arb_image() -> impl Strategy<Value = ImageBuffer> {
    (2u32..48, 2u32..48, any::<u64>()).prop_map(|(w, h, seed)| {
        let mut rng = Rng::new(seed);
        let mut img = ImageBuffer::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    [
                        (rng.next_u64() & 0xff) as u8,
                        (rng.next_u64() & 0xff) as u8,
                        (rng.next_u64() & 0xff) as u8,
                    ],
                );
            }
        }
        img
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn codec_roundtrips_any_image(img in arb_image(), quality in 1u8..=100) {
        let enc = codec::encode(&img, quality);
        let dec = codec::decode(&enc).unwrap();
        prop_assert_eq!((dec.width(), dec.height()), (img.width(), img.height()));
        // Even at quality 1 the reconstruction stays within u8 range and
        // bounded error (worst-case random noise at coarsest quantization).
        let err = codec::mean_abs_error(&img, &dec);
        prop_assert!(err < 128.0, "err={err}");
    }

    #[test]
    fn codec_decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = codec::decode(&data);
    }

    #[test]
    fn corrupted_streams_never_panic(img in arb_image(), flip in any::<(u16, u8)>()) {
        let mut enc = codec::encode(&img, 60);
        if !enc.is_empty() {
            let idx = usize::from(flip.0) % enc.len();
            enc[idx] ^= flip.1 | 1;
            let _ = codec::decode(&enc); // may fail, must not panic
        }
    }

    #[test]
    fn generation_total_over_prompts(prompt in ".{0,80}", steps in 1u32..25) {
        let model = DiffusionModel::new(ImageModelKind::Sd21Base);
        let img = model.generate(&prompt, 24, 24, steps);
        prop_assert_eq!(img.pixels(), 24 * 24);
        // Determinism.
        prop_assert_eq!(model.generate(&prompt, 24, 24, steps), img);
    }

    #[test]
    fn text_expansion_total(bullets in prop::collection::vec("[a-z ]{1,40}", 1..5), words in 10usize..200) {
        let model = TextModel::new(TextModelKind::Llama32);
        let text = model.expand(&bullets, words);
        prop_assert!(!text.is_empty());
        prop_assert!(text.ends_with('.'));
        prop_assert_eq!(model.expand(&bullets, words), text);
    }
}
