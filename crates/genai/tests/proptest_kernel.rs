//! Property tests for the data-parallel denoise kernel (PR 6): for
//! *arbitrary* batch sizes, tile counts, worker placements and
//! cancellation points, the tiled kernel must be bit-identical to the
//! scalar step-major path — "faster" can never mean "different pixels".

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use sww_genai::diffusion::scheduler::Schedule;
use sww_genai::diffusion::{
    denoise_batch, try_denoise_batch_tiled, DiffusionModel, ImageModelKind, InlineRunner,
    LatentJob, StepCancel, ThreadRunner, TileRunner, Tiling,
};
use sww_genai::prompt::PromptFeatures;

fn features(n: usize, salt: u64) -> Vec<PromptFeatures> {
    (0..n)
        .map(|i| PromptFeatures::analyze(&format!("prop kernel {salt} prompt {i}")))
        .collect()
}

fn runner(threaded: bool) -> &'static dyn TileRunner {
    if threaded {
        &ThreadRunner
    } else {
        &InlineRunner
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tiled_denoise_is_bit_identical_to_scalar(
        jobs_n in 1usize..9,
        tiles in 1usize..9,
        steps in 1u32..16,
        threaded in any::<bool>(),
        salt in any::<u64>(),
    ) {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let feats = features(jobs_n, salt);
        let schedule = Schedule::new(steps);
        let mut reference: Vec<LatentJob> = feats.iter().map(|f| m.prepare_job(f)).collect();
        denoise_batch(&schedule, &mut reference);
        let jobs: Vec<LatentJob> = feats.iter().map(|f| m.prepare_job(f)).collect();
        let tiled = try_denoise_batch_tiled(
            &schedule, jobs, &StepCancel::never(), Tiling::new(runner(threaded), tiles),
        ).expect("never cancelled");
        prop_assert_eq!(reference.len(), tiled.len());
        for (r, t) in reference.iter().zip(&tiled) {
            prop_assert_eq!(r.latent(), t.latent(),
                "jobs={} tiles={} steps={} threaded={}", jobs_n, tiles, steps, threaded);
        }
    }

    #[test]
    fn tiled_generation_is_bit_identical_to_scalar(
        jobs_n in 1usize..7,
        tiles in 1usize..7,
        steps in 1u32..12,
        side in 8u32..33,
        threaded in any::<bool>(),
        salt in any::<u64>(),
    ) {
        let m = DiffusionModel::new(ImageModelKind::Sd35Medium);
        let feats = features(jobs_n, salt);
        let reference = m.generate_batch(&feats, side, side / 2 + 1, steps);
        let tiled = m.try_generate_batch_on(
            &feats, side, side / 2 + 1, steps,
            &StepCancel::never(), Tiling::new(runner(threaded), tiles),
        ).expect("never cancelled");
        prop_assert_eq!(reference, tiled,
            "jobs={} tiles={} steps={} side={}", jobs_n, tiles, steps, side);
    }

    #[test]
    fn cancellation_point_decides_tiled_outcome(
        jobs_n in 1usize..7,
        tiles in 1usize..7,
        steps in 2u32..12,
        fire_frac in 0u32..100,
        threaded in any::<bool>(),
        salt in any::<u64>(),
    ) {
        // A probe that fires from its `fire_at`-th evaluation onwards.
        // Tiles poll independently, so the *count* of checks varies with
        // scheduling — but the outcome is scheduling-free at the two
        // extremes this property pins:
        //   fire_at <  steps           → some tile must observe the probe
        //                                before finishing → None;
        //   fire_at >= steps * tiles   → no tile can exhaust the budget
        //                                → Some, bit-identical to scalar.
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let feats = features(jobs_n, salt);
        let schedule = Schedule::new(steps);
        let tile_count = tiles.min(jobs_n).max(1);
        let early = fire_frac % 2 == 0;
        let fire_at = if early { fire_frac % steps } else { steps * tile_count as u32 };
        let checks = Arc::new(AtomicU32::new(0));
        let probe_checks = Arc::clone(&checks);
        let cancel = StepCancel::from_fn(move || {
            probe_checks.fetch_add(1, Ordering::SeqCst) >= fire_at
        });
        let jobs: Vec<LatentJob> = feats.iter().map(|f| m.prepare_job(f)).collect();
        let out =
            try_denoise_batch_tiled(&schedule, jobs, &cancel, Tiling::new(runner(threaded), tiles));
        if early {
            prop_assert!(out.is_none(),
                "fire_at={} < steps={} must abandon the batch", fire_at, steps);
        } else {
            let tiled = out.expect("budget outlives every tile");
            let mut reference: Vec<LatentJob> = feats.iter().map(|f| m.prepare_job(f)).collect();
            denoise_batch(&schedule, &mut reference);
            for (r, t) in reference.iter().zip(&tiled) {
                prop_assert_eq!(r.latent(), t.latent());
            }
        }
    }
}
