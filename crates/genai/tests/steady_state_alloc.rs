//! Steady-state allocation suite (PR 6): after warmup, the generation
//! hot path performs **zero** large allocations — every latent field and
//! decode noise plane comes off a [`BufferPool`] shelf.
//!
//! The property is asserted through the pool metrics rather than an
//! allocator hook: `sww_alloc_bytes_total{pool}` counts exactly the
//! fresh heap the pools hand out, so "flat across the measured window"
//! is equivalent to "no large allocations occurred". One test in its own
//! integration binary: the metrics registry is process-global, and a
//! sibling test generating concurrently would pollute the deltas.
//!
//! [`BufferPool`]: sww_genai::pool::BufferPool

use sww_genai::diffusion::{
    DiffusionModel, ImageModelKind, InlineRunner, StepCancel, ThreadRunner, TileRunner, Tiling,
};
use sww_genai::pool;
use sww_genai::prompt::PromptFeatures;

fn counter(name: &'static str, labels: &[(&'static str, &'static str)]) -> u64 {
    sww_obs::counter(name, labels).get()
}

fn alloc_bytes() -> (u64, u64) {
    (
        counter("sww_alloc_bytes_total", &[("pool", "latent")]),
        counter("sww_alloc_bytes_total", &[("pool", "decode_noise")]),
    )
}

fn reuse_count() -> u64 {
    counter(
        "sww_pool_acquired_total",
        &[("pool", "latent"), ("outcome", "reuse")],
    ) + counter(
        "sww_pool_acquired_total",
        &[("pool", "decode_noise"), ("outcome", "reuse")],
    )
}

#[test]
fn hot_path_allocates_nothing_after_warmup() {
    const BATCH: usize = 6;
    const SIDE: u32 = 24;
    const STEPS: u32 = 8;
    const MAX_TILES: usize = 3;
    let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
    let features: Vec<PromptFeatures> = (0..BATCH)
        .map(|i| PromptFeatures::analyze(&format!("steady state prompt {i} over a weir")))
        .collect();
    let run = |runner: &dyn TileRunner, tiles: usize| {
        model
            .try_generate_batch_on(
                &features,
                SIDE,
                SIDE,
                STEPS,
                &StepCancel::never(),
                Tiling::new(runner, tiles),
            )
            .expect("StepCancel::never cannot abort")
    };

    // Warmup: one pass per configuration the measured phase will use,
    // then a deterministic decode-plane prewarm — organic warmup only
    // shelves the *concurrently live* peak, which depends on scheduling.
    run(&InlineRunner, 1);
    run(&ThreadRunner, MAX_TILES);
    pool::decode_pool().prewarm(MAX_TILES, (SIDE * SIDE) as usize);

    let (latent_before, decode_before) = alloc_bytes();
    let reuse_before = reuse_count();
    let reference = run(&InlineRunner, 1);
    for round in 0..20 {
        let tiles = 1 + round % MAX_TILES;
        let runner: &dyn TileRunner = if round % 2 == 0 {
            &ThreadRunner
        } else {
            &InlineRunner
        };
        let images = run(runner, tiles);
        // Pooling and tiling never change pixels.
        assert_eq!(images, reference, "round {round} (tiles={tiles}) diverged");
    }
    let (latent_after, decode_after) = alloc_bytes();
    assert_eq!(
        latent_after, latent_before,
        "latent pool allocated fresh heap at steady state"
    );
    assert_eq!(
        decode_after, decode_before,
        "decode pool allocated fresh heap at steady state"
    );
    // And the passes really did run off the shelves: 21 batches × (3
    // latent buffers + 1 decode plane) per job is far more than 100
    // reuse hits.
    assert!(
        reuse_count() >= reuse_before + 100,
        "steady-state passes should be served from the shelves"
    );
}
