//! Calibration harness: prints the measured CLIP-sim cosine as a function
//! of model quality, and the measured SBERT raw cosine per text model.
//! Used to pin the quality parameters and affine calibrations so measured
//! metrics land on the paper's Table 1 / §6.3.2 values.

use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::metrics::{clip, sbert};
use sww_genai::prompt::{cosine, PromptFeatures};
use sww_genai::text::{TextModel, TextModelKind};

fn main() {
    let prompts = [
        "a mountain landscape at sunset with a lake",
        "a dense forest trail in autumn",
        "a sandy beach with turquoise ocean water",
        "storm clouds over a wheat field",
        "a cartoon goldfish swimming in a bowl",
        "a snow covered village at night",
    ];
    println!("== image: measured cosine & CLIP per model ==");
    for kind in [
        ImageModelKind::Sd21Base,
        ImageModelKind::Sd3Medium,
        ImageModelKind::Sd35Medium,
        ImageModelKind::Dalle3,
        ImageModelKind::FluxFast,
    ] {
        let m = DiffusionModel::new(kind);
        let mut cos_sum = 0.0;
        let mut clip_sum = 0.0;
        for p in &prompts {
            let img = m.generate(p, 224, 224, 15);
            let f = PromptFeatures::analyze(p);
            cos_sum += cosine(&DiffusionModel::image_embedding(&img), &f.embedding);
            clip_sum += clip::clip_score(&img, p);
        }
        let n = prompts.len() as f64;
        println!(
            "{:<12} q={:.2}  cos={:.3}  clip={:.3}",
            m.profile().name,
            m.profile().quality,
            cos_sum / n,
            clip_sum / n
        );
    }

    println!("\n== image: cosine as a function of quality (sweep) ==");
    for q10 in 0..=10 {
        let q = f64::from(q10) / 10.0;
        let m = DiffusionModel::with_quality(ImageModelKind::Sd3Medium, q);
        let mut cos_sum = 0.0;
        for p in &prompts {
            let img = m.generate(p, 224, 224, 15);
            let f = PromptFeatures::analyze(p);
            cos_sum += cosine(&DiffusionModel::image_embedding(&img), &f.embedding);
        }
        println!("q={q:.1}  cos={:.3}", cos_sum / prompts.len() as f64);
    }

    println!("\n== text: measured raw cosine & SBERT per model ==");
    let bullets = vec![
        "trail climbs forest pines morning light".to_string(),
        "ridge view valley snow peaks river".to_string(),
        "route marked moderate fitness boots scree water".to_string(),
    ];
    for kind in TextModelKind::all() {
        let m = TextModel::new(kind);
        let mut raw = 0.0;
        let mut cal = 0.0;
        let n = 10;
        for i in 0..n {
            let mut b = bullets.clone();
            b.push(format!("detail variation {i}"));
            let text = m.expand(&b, 150);
            raw += sbert::similarity(&b.join(" "), &text);
            cal += sbert::sbert_score(&b, &text);
        }
        println!(
            "{:<18} fidelity={:.2}  raw={:.3}  sbert={:.3}",
            m.profile().name,
            m.profile().keyword_fidelity,
            raw / n as f64,
            cal / n as f64
        );
    }
}
