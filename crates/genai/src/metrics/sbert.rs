//! SBERT-style sentence similarity (the paper's text metric, §6.3.2).
//!
//! Sentences embed as bags of content words (unigrams + bigrams) with
//! sub-linear term weighting; similarity is the cosine, mapped into
//! SBERT range by a fixed affine calibration — semantically related
//! paragraph pairs score high (the paper's band is 0.82–0.91), unrelated
//! pairs considerably lower but rarely near zero.

use crate::text::bullets::{is_stopword, normalize_word};
use std::collections::HashMap;

/// Calibration intercept of the cosine → SBERT mapping.
pub const CALIBRATION_BASE: f64 = 0.70;

/// Calibration slope.
pub const CALIBRATION_SLOPE: f64 = 0.58;

/// Bag-of-terms embedding: content unigrams and bigrams, weight
/// `1 + ln(count)`.
fn embed(text: &str) -> HashMap<String, f64> {
    let words: Vec<String> = text
        .split_whitespace()
        .map(normalize_word)
        .filter(|w| !w.is_empty() && !is_stopword(w))
        .collect();
    let mut counts: HashMap<String, f64> = HashMap::new();
    for w in &words {
        *counts.entry(w.clone()).or_default() += 1.0;
    }
    for pair in words.windows(2) {
        *counts
            .entry(format!("{} {}", pair[0], pair[1]))
            .or_default() += 1.0;
    }
    counts
        .into_iter()
        .map(|(term, c)| (term, 1.0 + c.ln()))
        .collect()
}

fn cosine(a: &HashMap<String, f64>, b: &HashMap<String, f64>) -> f64 {
    let dot: f64 = a
        .iter()
        .filter_map(|(term, wa)| b.get(term).map(|wb| wa * wb))
        .sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Raw cosine between two texts' term bags.
pub fn similarity(a: &str, b: &str) -> f64 {
    cosine(&embed(a), &embed(b))
}

/// SBERT-calibrated score between source bullets and expanded text.
pub fn sbert_score(bullets: &[String], text: &str) -> f64 {
    let source = bullets.join(" ");
    (CALIBRATION_BASE + CALIBRATION_SLOPE * similarity(&source, text)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::{TextModel, TextModelKind};

    #[test]
    fn identical_text_scores_maximal() {
        let s = similarity("the mountain trail is steep", "the mountain trail is steep");
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unrelated_text_scores_low() {
        let s = similarity(
            "mountain trail hiking boots summit views",
            "quarterly earnings exceeded analyst forecasts substantially",
        );
        assert!(s < 0.1, "s={s}");
    }

    #[test]
    fn stopwords_do_not_inflate() {
        let s = similarity("the a of and mountain", "the a of and spreadsheet");
        assert!(s < 1e-9);
    }

    #[test]
    fn expansions_land_in_paper_band() {
        // Paper: all models achieve SBERT means 0.82–0.91.
        let bullets = vec![
            "trail climbs forest pines morning light".to_string(),
            "ridge view valley snow peaks river".to_string(),
            "route marked moderate fitness boots scree water".to_string(),
        ];
        for kind in TextModelKind::all() {
            let m = TextModel::new(kind);
            let mut total = 0.0;
            let n = 6;
            for i in 0..n {
                let mut b = bullets.clone();
                b.push(format!("detail variation {i}"));
                total += sbert_score(&b, &m.expand(&b, 150));
            }
            let mean = total / n as f64;
            assert!(
                (0.78..=0.95).contains(&mean),
                "{kind:?} mean SBERT {mean:.3} outside band"
            );
        }
    }

    #[test]
    fn better_model_scores_higher() {
        let bullets = vec![
            "council approved transit plan".to_string(),
            "construction begins spring".to_string(),
            "commute times reduced twenty percent".to_string(),
        ];
        let score = |kind| {
            let m = TextModel::new(kind);
            (0..8)
                .map(|i| {
                    let mut b = bullets.clone();
                    b.push(format!("v{i}"));
                    sbert_score(&b, &m.expand(&b, 120))
                })
                .sum::<f64>()
                / 8.0
        };
        let weak = score(TextModelKind::DeepSeekR1_1_5B);
        let strong = score(TextModelKind::DeepSeekR1_8B);
        assert!(strong > weak, "8B {strong:.3} should beat 1.5B {weak:.3}");
    }

    #[test]
    fn score_capped_at_one() {
        let b = vec!["exact words repeated".to_string()];
        assert!(sbert_score(&b, "exact words repeated") <= 1.0);
    }
}
