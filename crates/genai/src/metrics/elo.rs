//! ELO rating math (the paper's qualitative metric, §6.3.1, citing the
//! round-robin Elo analysis of its ref \[18\]).
//!
//! The paper reads model ratings off the Artificial Analysis arena; those
//! published numbers ship as calibration data in the model profiles. This
//! module implements the rating algorithm itself — expected score, update
//! rule, and a round-robin tournament — so the harness can *check* that
//! the published ratings are consistent with the models' measured quality
//! ordering (a tournament seeded from measured CLIP-sim win rates must
//! reproduce the published ranking).

/// Standard Elo logistic scale.
pub const SCALE: f64 = 400.0;

/// Default K-factor.
pub const K: f64 = 24.0;

/// Expected score of a player rated `ra` against `rb`.
pub fn expected(ra: f64, rb: f64) -> f64 {
    1.0 / (1.0 + 10f64.powf((rb - ra) / SCALE))
}

/// Update a rating after a game: `score` is 1 for a win, 0.5 draw, 0 loss.
pub fn update(rating: f64, opponent: f64, score: f64, k: f64) -> f64 {
    rating + k * (score - expected(rating, opponent))
}

/// Run a round-robin tournament: `win_prob[i][j]` is the probability that
/// player `i` beats player `j`. Plays `rounds` full round-robins using the
/// expected scores directly (the large-sample limit), starting everyone at
/// `start`. Returns final ratings.
pub fn round_robin(win_prob: &[Vec<f64>], rounds: u32, start: f64) -> Vec<f64> {
    let n = win_prob.len();
    let mut ratings = vec![start; n];
    for _ in 0..rounds {
        // Snapshot so a round is order-independent.
        let snapshot = ratings.clone();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                ratings[i] = update(ratings[i], snapshot[j], win_prob[i][j], K);
            }
        }
    }
    ratings
}

/// Convert a quality gap into a win probability via the Bradley–Terry
/// model used by arena leaderboards.
pub fn win_probability(quality_a: f64, quality_b: f64, sensitivity: f64) -> f64 {
    1.0 / (1.0 + (-(quality_a - quality_b) * sensitivity).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusion::models::{profile, ImageModelKind};

    #[test]
    fn expected_is_symmetric() {
        assert!((expected(1000.0, 1000.0) - 0.5).abs() < 1e-12);
        let e = expected(1200.0, 1000.0);
        assert!((e + expected(1000.0, 1200.0) - 1.0).abs() < 1e-12);
        assert!(e > 0.7);
    }

    #[test]
    fn update_moves_toward_result() {
        let r = update(1000.0, 1000.0, 1.0, K);
        assert!((r - 1012.0).abs() < 1e-9); // K/2 gain for beating an equal
        let r = update(1000.0, 1000.0, 0.0, K);
        assert!((r - 988.0).abs() < 1e-9);
    }

    #[test]
    fn rating_conserved_in_pairwise_update() {
        let (ra, rb) = (1100.0, 900.0);
        let ra2 = update(ra, rb, 1.0, K);
        let rb2 = update(rb, ra, 0.0, K);
        assert!((ra + rb - (ra2 + rb2)).abs() < 1e-9);
    }

    #[test]
    fn tournament_orders_by_strength() {
        // Three players with clear win-probability ordering.
        let wp = vec![
            vec![0.5, 0.8, 0.9],
            vec![0.2, 0.5, 0.7],
            vec![0.1, 0.3, 0.5],
        ];
        let ratings = round_robin(&wp, 200, 1000.0);
        assert!(ratings[0] > ratings[1]);
        assert!(ratings[1] > ratings[2]);
    }

    #[test]
    fn tournament_from_quality_reproduces_published_ranking() {
        // Seed win probabilities from the model quality parameters (which
        // the CLIP tests verify are measured from pixels) and check the
        // tournament ranking matches the published ELO ranking the paper
        // cites for the three SD-class models + DALLE-3: SD2.1 worst,
        // DALLE-3 and SD3.5 at the top within noise of each other.
        let kinds = ImageModelKind::table1();
        let profiles: Vec<_> = kinds.iter().map(|&k| profile(k)).collect();
        let wp: Vec<Vec<f64>> = profiles
            .iter()
            .map(|a| {
                profiles
                    .iter()
                    .map(|b| win_probability(a.quality, b.quality, 10.0))
                    .collect()
            })
            .collect();
        let ratings = round_robin(&wp, 300, 900.0);
        // SD 2.1 (idx 0) strictly worst, like its 688 published rating.
        assert!(ratings[0] < ratings[1]);
        assert!(ratings[0] < ratings[2]);
        assert!(ratings[0] < ratings[3]);
        // SD3 below SD3.5/DALLE cluster.
        assert!(ratings[1] <= ratings[2].max(ratings[3]) + 1.0);
    }
}
