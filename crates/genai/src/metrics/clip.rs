//! CLIP-style prompt↔image similarity (the paper's quantitative image
//! metric, §6.3.1, citing CLIPScore).
//!
//! The cosine between the prompt embedding and the image's measured
//! feature-space embedding is mapped into CLIP-score range by a fixed
//! affine calibration: real CLIP similarities are anisotropic (a random
//! image scores ≈0.09 against any prompt, per the paper's baseline), so
//! `score = 0.09 + 0.30 · max(cos, 0)`. The cosine itself is computed
//! from pixels; nothing about the model's quality enters this function.

use crate::diffusion::DiffusionModel;
use crate::image::ImageBuffer;
use crate::prompt::{cosine, PromptFeatures};

/// The paper's measured CLIP score for a random (promptless) image.
pub const RANDOM_BASELINE: f64 = 0.09;

/// Slope of the cosine → CLIP-score calibration.
pub const CALIBRATION_SLOPE: f64 = 0.30;

/// Raw cosine similarity between an image and a prompt in the shared
/// feature space.
pub fn similarity(image: &ImageBuffer, prompt: &str) -> f64 {
    let features = PromptFeatures::analyze(prompt);
    let img_embedding = DiffusionModel::image_embedding(image);
    cosine(&img_embedding, &features.embedding)
}

/// CLIP score of an image against a prompt.
pub fn clip_score(image: &ImageBuffer, prompt: &str) -> f64 {
    RANDOM_BASELINE + CALIBRATION_SLOPE * similarity(image, prompt).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusion::{DiffusionModel, ImageModelKind};
    use crate::rng::Rng;

    fn random_image(w: u32, h: u32, seed: u64) -> ImageBuffer {
        let mut rng = Rng::new(seed);
        let mut img = ImageBuffer::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    [
                        (rng.next_u64() & 0xff) as u8,
                        (rng.next_u64() & 0xff) as u8,
                        (rng.next_u64() & 0xff) as u8,
                    ],
                );
            }
        }
        img
    }

    #[test]
    fn random_image_scores_near_baseline() {
        // Paper: "the CLIP score of a randomly generated image (no prompt)
        // was 0.09".
        let prompt = "a serene mountain landscape with a lake";
        let mut total = 0.0;
        for seed in 0..8 {
            total += clip_score(&random_image(224, 224, seed), prompt);
        }
        let mean = total / 8.0;
        assert!(
            (RANDOM_BASELINE - 0.02..RANDOM_BASELINE + 0.04).contains(&mean),
            "random baseline {mean:.3}"
        );
    }

    #[test]
    fn generated_image_beats_random() {
        let prompt = "a serene mountain landscape with a lake";
        let img = DiffusionModel::new(ImageModelKind::Sd3Medium).generate(prompt, 224, 224, 15);
        let s_gen = clip_score(&img, prompt);
        let s_rand = clip_score(&random_image(224, 224, 1), prompt);
        assert!(
            s_gen > s_rand + 0.05,
            "gen {s_gen:.3} vs random {s_rand:.3}"
        );
    }

    #[test]
    fn matching_prompt_beats_mismatched() {
        let prompt = "rolling hills landscape with morning fog";
        let img = DiffusionModel::new(ImageModelKind::Sd35Medium).generate(prompt, 224, 224, 15);
        let matched = clip_score(&img, prompt);
        let mismatched = clip_score(&img, "a red sports car in a parking garage");
        assert!(
            matched > mismatched,
            "matched {matched:.3} vs mismatched {mismatched:.3}"
        );
    }

    #[test]
    fn table1_model_ordering_is_measured() {
        // The CLIP ordering of Table 1 must emerge from pixels: SD 2.1
        // well below SD 3 ≈ SD 3.5 below DALLE-3. Average over prompts to
        // tame per-prompt noise.
        let prompts = [
            "a mountain landscape at sunset with a lake",
            "a dense forest trail in autumn",
            "a sandy beach with turquoise ocean water",
            "storm clouds over a wheat field",
        ];
        let mean_score = |kind: ImageModelKind| -> f64 {
            prompts
                .iter()
                .map(|p| clip_score(&DiffusionModel::new(kind).generate(p, 224, 224, 15), p))
                .sum::<f64>()
                / prompts.len() as f64
        };
        let sd21 = mean_score(ImageModelKind::Sd21Base);
        let sd3 = mean_score(ImageModelKind::Sd3Medium);
        let sd35 = mean_score(ImageModelKind::Sd35Medium);
        let dalle = mean_score(ImageModelKind::Dalle3);
        assert!(sd21 < sd3, "sd21 {sd21:.3} < sd3 {sd3:.3}");
        assert!((sd3 - sd35).abs() < 0.04, "sd3 {sd3:.3} ≈ sd35 {sd35:.3}");
        assert!(sd35 < dalle, "sd35 {sd35:.3} < dalle {dalle:.3}");
        // Ranges near the paper's Table 1 values.
        assert!((0.14..0.25).contains(&sd21), "sd21={sd21:.3}");
        assert!((0.22..0.32).contains(&sd3), "sd3={sd3:.3}");
        assert!((0.26..0.37).contains(&dalle), "dalle={dalle:.3}");
    }
}
