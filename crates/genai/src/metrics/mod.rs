//! Quality metrics: CLIP-sim (prompt↔image), SBERT-sim (bullets↔text)
//! and ELO rating math.

pub mod clip;
pub mod elo;
pub mod sbert;
