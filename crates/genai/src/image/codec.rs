//! Lossy image codec: YCbCr 4:2:0 chroma subsampling + 8×8 block DCT +
//! uniform quantization + zigzag run-length coding + varint entropy stage
//! — the JPEG recipe, self-contained.
//!
//! The codec exists so every byte count the benches report is *measured*
//! from a real encoded artifact: the paper's compression ratios divide
//! media bytes by metadata bytes, and using nominal sizes would beg the
//! question. The format ("SWIM" v2) is:
//!
//! ```text
//! magic "SWIM" | u8 version=2 | u16 width | u16 height | u8 quality |
//!   Y plane (w×h), then Cb and Cr planes (⌈w/2⌉×⌈h/2⌉), each a raster
//!   of 8×8 blocks coded as zigzag RLE of quantized coefficients:
//!   (zero-run varint, value zigzag-varint)*, run=64 end-of-block sentinel.
//! ```
//!
//! Chroma uses quantization steps twice as coarse as luma, as JPEG's
//! default tables do.

use super::buffer::ImageBuffer;
use super::color::{rgb_to_ycbcr, ycbcr_to_rgb};
use super::dct::{forward, inverse, zigzag_order, N};

/// Format version byte.
const VERSION: u8 = 2;

/// Codec errors.
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Header missing, magic mismatch or unsupported version.
    BadHeader,
    /// Stream ended early or a varint overflowed.
    Truncated,
    /// Run/level structure inconsistent.
    Corrupt,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadHeader => write!(f, "bad SWIM header"),
            CodecError::Truncated => write!(f, "truncated SWIM stream"),
            CodecError::Corrupt => write!(f, "corrupt SWIM stream"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Quantization step for a coefficient index (zigzag position) at a
/// quality in 1..=100; `chroma` doubles the step like JPEG's tables.
fn quant_step(zig_pos: usize, quality: u8, chroma: bool) -> f64 {
    let q = f64::from(quality.clamp(1, 100));
    let base = 4.0 + zig_pos as f64 * 3.0;
    let scale = if q < 50.0 {
        50.0 / q
    } else {
        (100.0 - q + 1.0) / 51.0
    };
    let step = (base * scale).max(1.0);
    if chroma {
        step * 2.0
    } else {
        step
    }
}

fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = *buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 63 {
            return Err(CodecError::Truncated);
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Map signed to unsigned (zigzag integer coding).
fn zz(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzz(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A single-component plane.
struct Plane {
    w: usize,
    h: usize,
    data: Vec<f64>,
}

impl Plane {
    fn new(w: usize, h: usize) -> Plane {
        Plane {
            w,
            h,
            data: vec![0.0; w * h],
        }
    }

    fn get_clamped(&self, x: usize, y: usize) -> f64 {
        self.data[y.min(self.h - 1) * self.w + x.min(self.w - 1)]
    }

    /// Bilinear sample at fractional plane coordinates.
    fn sample(&self, fx: f64, fy: f64) -> f64 {
        let x0 = (fx.floor().max(0.0) as usize).min(self.w - 1);
        let y0 = (fy.floor().max(0.0) as usize).min(self.h - 1);
        let x1 = (x0 + 1).min(self.w - 1);
        let y1 = (y0 + 1).min(self.h - 1);
        let tx = (fx - x0 as f64).clamp(0.0, 1.0);
        let ty = (fy - y0 as f64).clamp(0.0, 1.0);
        let a = self.data[y0 * self.w + x0];
        let b = self.data[y0 * self.w + x1];
        let c = self.data[y1 * self.w + x0];
        let d = self.data[y1 * self.w + x1];
        a * (1.0 - tx) * (1.0 - ty) + b * tx * (1.0 - ty) + c * (1.0 - tx) * ty + d * tx * ty
    }
}

fn encode_plane(plane: &Plane, quality: u8, chroma: bool, out: &mut Vec<u8>) {
    let order = zigzag_order();
    let bw = plane.w.div_ceil(N);
    let bh = plane.h.div_ceil(N);
    for by in 0..bh {
        for bx in 0..bw {
            let mut block = [0.0f64; N * N];
            for (i, v) in block.iter_mut().enumerate() {
                *v = plane.get_clamped(bx * N + i % N, by * N + i / N) - 128.0;
            }
            let coeffs = forward(&block);
            let mut run = 0u64;
            for (zpos, &idx) in order.iter().enumerate() {
                let q = (coeffs[idx] / quant_step(zpos, quality, chroma)).round() as i64;
                if q == 0 {
                    run += 1;
                } else {
                    put_varint(run, out);
                    put_varint(zz(q), out);
                    run = 0;
                }
            }
            if run > 0 {
                put_varint(64, out); // end-of-block sentinel
            }
        }
    }
}

fn decode_plane(
    buf: &[u8],
    pos: &mut usize,
    w: usize,
    h: usize,
    quality: u8,
    chroma: bool,
) -> Result<Plane, CodecError> {
    let order = zigzag_order();
    let mut plane = Plane::new(w, h);
    let bw = w.div_ceil(N);
    let bh = h.div_ceil(N);
    for by in 0..bh {
        for bx in 0..bw {
            let mut coeffs = [0.0f64; N * N];
            let mut zpos = 0usize;
            while zpos < N * N {
                let run = get_varint(buf, pos)?;
                if run == 64 {
                    break;
                }
                zpos += run as usize;
                if zpos >= N * N {
                    return Err(CodecError::Corrupt);
                }
                let q = unzz(get_varint(buf, pos)?);
                coeffs[order[zpos]] = q as f64 * quant_step(zpos, quality, chroma);
                zpos += 1;
            }
            let block = inverse(&coeffs);
            for (i, v) in block.iter().enumerate() {
                let x = bx * N + i % N;
                let y = by * N + i / N;
                if x < w && y < h {
                    plane.data[y * w + x] = v + 128.0;
                }
            }
        }
    }
    Ok(plane)
}

/// Encode an image at the given quality (1..=100).
pub fn encode(img: &ImageBuffer, quality: u8) -> Vec<u8> {
    let span = sww_obs::Span::begin("sww_genai_stage", "codec_encode");
    let out = encode_inner(img, quality);
    span.finish();
    out
}

fn encode_inner(img: &ImageBuffer, quality: u8) -> Vec<u8> {
    let quality = quality.clamp(1, 100);
    let w = img.width() as usize;
    let h = img.height() as usize;
    let cw = w.div_ceil(2);
    let ch = h.div_ceil(2);

    // Build the full-res Y plane and box-averaged half-res chroma planes.
    let mut y_plane = Plane::new(w, h);
    let mut cb_plane = Plane::new(cw, ch);
    let mut cr_plane = Plane::new(cw, ch);
    let mut cb_acc = vec![0.0f64; cw * ch];
    let mut cr_acc = vec![0.0f64; cw * ch];
    let mut counts = vec![0u32; cw * ch];
    for yy in 0..h {
        for xx in 0..w {
            let p = img.get(xx as u32, yy as u32);
            let [y, cb, cr] = rgb_to_ycbcr([f64::from(p[0]), f64::from(p[1]), f64::from(p[2])]);
            y_plane.data[yy * w + xx] = y;
            let ci = (yy / 2) * cw + xx / 2;
            cb_acc[ci] += cb;
            cr_acc[ci] += cr;
            counts[ci] += 1;
        }
    }
    for i in 0..cw * ch {
        let n = f64::from(counts[i].max(1));
        cb_plane.data[i] = cb_acc[i] / n;
        cr_plane.data[i] = cr_acc[i] / n;
    }

    let mut out = Vec::with_capacity(w * h / 6);
    out.extend_from_slice(b"SWIM");
    out.push(VERSION);
    out.extend_from_slice(&(w as u16).to_be_bytes());
    out.extend_from_slice(&(h as u16).to_be_bytes());
    out.push(quality);
    encode_plane(&y_plane, quality, false, &mut out);
    encode_plane(&cb_plane, quality, true, &mut out);
    encode_plane(&cr_plane, quality, true, &mut out);
    out
}

/// Decode a SWIM stream.
pub fn decode(data: &[u8]) -> Result<ImageBuffer, CodecError> {
    if data.len() < 10 || &data[..4] != b"SWIM" || data[4] != VERSION {
        return Err(CodecError::BadHeader);
    }
    let w = usize::from(u16::from_be_bytes([data[5], data[6]]));
    let h = usize::from(u16::from_be_bytes([data[7], data[8]]));
    let quality = data[9];
    if w == 0 || h == 0 {
        return Err(CodecError::BadHeader);
    }
    let cw = w.div_ceil(2);
    let ch = h.div_ceil(2);
    let mut pos = 10usize;
    let y_plane = decode_plane(data, &mut pos, w, h, quality, false)?;
    let cb_plane = decode_plane(data, &mut pos, cw, ch, quality, true)?;
    let cr_plane = decode_plane(data, &mut pos, cw, ch, quality, true)?;

    let mut img = ImageBuffer::new(w as u32, h as u32);
    for yy in 0..h {
        for xx in 0..w {
            let y = y_plane.data[yy * w + xx];
            // Chroma sample at the pixel's position in half-res space.
            let cb = cb_plane.sample(xx as f64 / 2.0 - 0.25, yy as f64 / 2.0 - 0.25);
            let cr = cr_plane.sample(xx as f64 / 2.0 - 0.25, yy as f64 / 2.0 - 0.25);
            let rgb = ycbcr_to_rgb([y, cb, cr]);
            img.set(
                xx as u32,
                yy as u32,
                [
                    rgb[0].round() as u8,
                    rgb[1].round() as u8,
                    rgb[2].round() as u8,
                ],
            );
        }
    }
    Ok(img)
}

/// Mean absolute per-channel error between two same-sized images; the
/// codec's distortion measure used in tests.
pub fn mean_abs_error(a: &ImageBuffer, b: &ImageBuffer) -> f64 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()));
    let total: f64 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (f64::from(x) - f64::from(y)).abs())
        .sum();
    total / a.data().len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn gradient_image(w: u32, h: u32) -> ImageBuffer {
        let mut img = ImageBuffer::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    [
                        (x * 255 / w.max(1)) as u8,
                        (y * 255 / h.max(1)) as u8,
                        ((x + y) * 127 / (w + h).max(1)) as u8,
                    ],
                );
            }
        }
        img
    }

    #[test]
    fn roundtrip_dimensions_and_quality() {
        let img = gradient_image(64, 48);
        let enc = encode(&img, 80);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.width(), 64);
        assert_eq!(dec.height(), 48);
        assert!(mean_abs_error(&img, &dec) < 5.0, "high quality ≈ low error");
    }

    #[test]
    fn smooth_images_compress_well() {
        let img = gradient_image(256, 256);
        let enc = encode(&img, 75);
        let raw = 256 * 256 * 3;
        assert!(
            enc.len() * 12 < raw,
            "gradient must compress >12x, got {} of {}",
            enc.len(),
            raw
        );
    }

    #[test]
    fn subsampling_beats_full_chroma_on_size() {
        // The 4:2:0 layout carries half the samples of 4:4:4 RGB; even
        // with identical coding the stream must be much smaller than raw.
        let mut img = gradient_image(128, 128);
        let mut rng = Rng::new(9);
        for y in 0..128 {
            for x in 0..128 {
                let mut p = img.get(x, y);
                let n = (rng.gaussian() * 8.0) as i32;
                for c in &mut p {
                    *c = (i32::from(*c) + n).clamp(0, 255) as u8;
                }
                img.set(x, y, p);
            }
        }
        let enc = encode(&img, 60);
        assert!(enc.len() < 128 * 128 * 3 / 4, "{} bytes", enc.len());
    }

    #[test]
    fn quality_trades_size_for_error() {
        let mut img = gradient_image(96, 96);
        let mut rng = Rng::new(5);
        for y in 0..96 {
            for x in 0..96 {
                let mut p = img.get(x, y);
                let n = (rng.gaussian() * 12.0) as i32;
                for c in &mut p {
                    *c = (i32::from(*c) + n).clamp(0, 255) as u8;
                }
                img.set(x, y, p);
            }
        }
        let lo = encode(&img, 20);
        let hi = encode(&img, 90);
        assert!(lo.len() < hi.len());
        let err_lo = mean_abs_error(&img, &decode(&lo).unwrap());
        let err_hi = mean_abs_error(&img, &decode(&hi).unwrap());
        assert!(err_hi < err_lo);
    }

    #[test]
    fn non_multiple_of_eight_sizes() {
        for (w, h) in [(7, 5), (13, 9), (65, 33), (1, 1), (2, 2)] {
            let img = gradient_image(w, h);
            let dec = decode(&encode(&img, 70)).unwrap();
            assert_eq!((dec.width(), dec.height()), (w, h));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(b"nope").unwrap_err(), CodecError::BadHeader);
        // Version 1 streams are not accepted.
        assert_eq!(
            decode(b"SWIM\x01\x00\x10\x00\x10\x50").unwrap_err(),
            CodecError::BadHeader
        );
        let img = gradient_image(16, 16);
        let enc = encode(&img, 70);
        assert!(decode(&enc[..12]).is_err());
    }

    #[test]
    fn zigzag_varint_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, 1000, -1000, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzz(zz(v)), v);
        }
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX / 2] {
            buf.clear();
            put_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn grey_images_have_tiny_chroma_cost() {
        // A greyscale image's chroma planes quantize to nothing; the
        // stream should be barely larger than a luma-only encoding.
        let mut img = ImageBuffer::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                let v = ((x * 3 + y * 2) % 256) as u8;
                img.set(x, y, [v, v, v]);
            }
        }
        let enc = encode(&img, 70);
        let dec = decode(&enc).unwrap();
        assert!(mean_abs_error(&img, &dec) < 6.0);
    }
}
