//! 8×8 type-II DCT and its inverse, the transform behind the lossy codec.

use std::f64::consts::PI;
use std::sync::OnceLock;

/// Block edge length.
pub const N: usize = 8;

/// Cosine basis cache: `basis[u][x] = cos((2x+1)uπ/16) * c(u)`.
fn basis() -> &'static [[f64; N]; N] {
    static BASIS: OnceLock<[[f64; N]; N]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0.0; N]; N];
        for (u, row) in b.iter_mut().enumerate() {
            let cu = if u == 0 {
                (1.0 / N as f64).sqrt()
            } else {
                (2.0 / N as f64).sqrt()
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = cu * ((2.0 * x as f64 + 1.0) * u as f64 * PI / (2.0 * N as f64)).cos();
            }
        }
        b
    })
}

/// Forward 2-D DCT of one 8×8 block (row-major).
pub fn forward(block: &[f64; N * N]) -> [f64; N * N] {
    let b = basis();
    let mut tmp = [0.0; N * N];
    // Rows.
    for y in 0..N {
        for u in 0..N {
            let mut acc = 0.0;
            for x in 0..N {
                acc += block[y * N + x] * b[u][x];
            }
            tmp[y * N + u] = acc;
        }
    }
    // Columns.
    let mut out = [0.0; N * N];
    for u in 0..N {
        for v in 0..N {
            let mut acc = 0.0;
            for y in 0..N {
                acc += tmp[y * N + u] * b[v][y];
            }
            out[v * N + u] = acc;
        }
    }
    out
}

/// Inverse 2-D DCT of one 8×8 coefficient block.
pub fn inverse(coeffs: &[f64; N * N]) -> [f64; N * N] {
    let b = basis();
    let mut tmp = [0.0; N * N];
    // Columns.
    for u in 0..N {
        for y in 0..N {
            let mut acc = 0.0;
            for v in 0..N {
                acc += coeffs[v * N + u] * b[v][y];
            }
            tmp[y * N + u] = acc;
        }
    }
    // Rows.
    let mut out = [0.0; N * N];
    for y in 0..N {
        for x in 0..N {
            let mut acc = 0.0;
            for u in 0..N {
                acc += tmp[y * N + u] * b[u][x];
            }
            out[y * N + x] = acc;
        }
    }
    out
}

/// JPEG-style zigzag scan order for 8×8 blocks.
pub fn zigzag_order() -> &'static [usize; N * N] {
    static ORDER: OnceLock<[usize; N * N]> = OnceLock::new();
    ORDER.get_or_init(|| {
        let mut order = [0usize; N * N];
        let mut idx = 0;
        for s in 0..(2 * N - 1) {
            let coords: Vec<(usize, usize)> = (0..=s)
                .filter_map(|i| {
                    let (x, y) = (i, s - i);
                    (x < N && y < N).then_some((x, y))
                })
                .collect();
            // Odd diagonals run top-right → bottom-left, even the reverse.
            let iter: Box<dyn Iterator<Item = &(usize, usize)>> = if s % 2 == 0 {
                Box::new(coords.iter())
            } else {
                Box::new(coords.iter().rev())
            };
            for &(x, y) in iter {
                order[idx] = y * N + x;
                idx += 1;
            }
        }
        order
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_roundtrip() {
        let mut block = [0.0; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37) % 256) as f64 - 128.0;
        }
        let coeffs = forward(&block);
        let back = inverse(&coeffs);
        for (a, b) in block.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let block = [80.0; 64];
        let coeffs = forward(&block);
        // DC = mean * 8 for an orthonormal 8x8 DCT.
        assert!((coeffs[0] - 80.0 * 8.0).abs() < 1e-9);
        for &c in &coeffs[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn energy_preserved() {
        // Parseval: orthonormal transform preserves the L2 norm.
        let mut block = [0.0; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (i as f64 * 0.7).sin() * 100.0;
        }
        let coeffs = forward(&block);
        let e1: f64 = block.iter().map(|v| v * v).sum();
        let e2: f64 = coeffs.iter().map(|v| v * v).sum();
        assert!((e1 - e2).abs() / e1 < 1e-9);
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let order = zigzag_order();
        let mut seen = [false; 64];
        for &i in order.iter() {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert_eq!(order[0], 0);
        assert_eq!(order[63], 63);
        // First few entries of the classic JPEG zigzag.
        assert_eq!(&order[..6], &[0, 1, 8, 16, 9, 2]);
    }
}
