//! RGB image buffer.

/// An 8-bit RGB image, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageBuffer {
    width: u32,
    height: u32,
    /// `width * height * 3` octets, RGB interleaved.
    data: Vec<u8>,
}

impl ImageBuffer {
    /// A black image.
    pub fn new(width: u32, height: u32) -> ImageBuffer {
        ImageBuffer {
            width,
            height,
            data: vec![0; (width * height * 3) as usize],
        }
    }

    /// Wrap existing pixel data (must be `width * height * 3` octets).
    pub fn from_data(width: u32, height: u32, data: Vec<u8>) -> ImageBuffer {
        assert_eq!(data.len(), (width * height * 3) as usize);
        ImageBuffer {
            width,
            height,
            data,
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixels.
    pub fn pixels(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Raw pixel bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Read one pixel.
    pub fn get(&self, x: u32, y: u32) -> [u8; 3] {
        let i = ((y * self.width + x) * 3) as usize;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Write one pixel.
    pub fn set(&mut self, x: u32, y: u32, rgb: [u8; 3]) {
        let i = ((y * self.width + x) * 3) as usize;
        self.data[i..i + 3].copy_from_slice(&rgb);
    }

    /// Bilinear sample at fractional coordinates in `[0,1]²`.
    pub fn sample(&self, u: f64, v: f64) -> [f64; 3] {
        let x = (u.clamp(0.0, 1.0) * f64::from(self.width - 1)).max(0.0);
        let y = (v.clamp(0.0, 1.0) * f64::from(self.height - 1)).max(0.0);
        let x0 = x.floor() as u32;
        let y0 = y.floor() as u32;
        let x1 = (x0 + 1).min(self.width - 1);
        let y1 = (y0 + 1).min(self.height - 1);
        let fx = x - f64::from(x0);
        let fy = y - f64::from(y0);
        let mut out = [0.0; 3];
        for (c, slot) in out.iter_mut().enumerate() {
            let p00 = f64::from(self.get(x0, y0)[c]);
            let p10 = f64::from(self.get(x1, y0)[c]);
            let p01 = f64::from(self.get(x0, y1)[c]);
            let p11 = f64::from(self.get(x1, y1)[c]);
            *slot = p00 * (1.0 - fx) * (1.0 - fy)
                + p10 * fx * (1.0 - fy)
                + p01 * (1.0 - fx) * fy
                + p11 * fx * fy;
        }
        out
    }

    /// Downsample by box-averaging into a `tw × th` grid of RGB floats.
    /// Used by the CLIP-sim feature extractor.
    pub fn downsample(&self, tw: u32, th: u32) -> Vec<[f64; 3]> {
        let mut out = Vec::with_capacity((tw * th) as usize);
        for ty in 0..th {
            for tx in 0..tw {
                let x0 = (u64::from(tx) * u64::from(self.width) / u64::from(tw)) as u32;
                let x1 = (u64::from(tx + 1) * u64::from(self.width) / u64::from(tw))
                    .max(u64::from(x0) + 1) as u32;
                let y0 = (u64::from(ty) * u64::from(self.height) / u64::from(th)) as u32;
                let y1 = (u64::from(ty + 1) * u64::from(self.height) / u64::from(th))
                    .max(u64::from(y0) + 1) as u32;
                let mut acc = [0.0f64; 3];
                let mut n = 0.0f64;
                for y in y0..y1.min(self.height) {
                    for x in x0..x1.min(self.width) {
                        let p = self.get(x, y);
                        for c in 0..3 {
                            acc[c] += f64::from(p[c]);
                        }
                        n += 1.0;
                    }
                }
                for a in &mut acc {
                    *a /= n.max(1.0);
                }
                out.push(acc);
            }
        }
        out
    }

    /// Mean channel values, for quick content assertions.
    pub fn mean_rgb(&self) -> [f64; 3] {
        let mut acc = [0.0f64; 3];
        for px in self.data.chunks_exact(3) {
            for c in 0..3 {
                acc[c] += f64::from(px[c]);
            }
        }
        let n = self.pixels() as f64;
        acc.map(|a| a / n)
    }

    /// Serialize as binary PPM (P6) for eyeballing outputs.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.data);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_roundtrip() {
        let mut img = ImageBuffer::new(4, 3);
        img.set(2, 1, [10, 20, 30]);
        assert_eq!(img.get(2, 1), [10, 20, 30]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn sample_interpolates() {
        let mut img = ImageBuffer::new(2, 1);
        img.set(0, 0, [0, 0, 0]);
        img.set(1, 0, [100, 200, 50]);
        let mid = img.sample(0.5, 0.0);
        assert!((mid[0] - 50.0).abs() < 1.0);
        assert!((mid[1] - 100.0).abs() < 1.0);
    }

    #[test]
    fn downsample_averages() {
        let mut img = ImageBuffer::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                img.set(x, y, [if x < 2 { 0 } else { 200 }, 0, 0]);
            }
        }
        let grid = img.downsample(2, 1);
        assert!((grid[0][0] - 0.0).abs() < 1e-9);
        assert!((grid[1][0] - 200.0).abs() < 1e-9);
    }

    #[test]
    fn ppm_header() {
        let img = ImageBuffer::new(3, 2);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 18);
    }

    #[test]
    fn mean_rgb() {
        let mut img = ImageBuffer::new(2, 1);
        img.set(0, 0, [0, 0, 0]);
        img.set(1, 0, [200, 100, 50]);
        let m = img.mean_rgb();
        assert_eq!(m, [100.0, 50.0, 25.0]);
    }
}
