//! Image representation and codecs.

pub mod buffer;
pub mod codec;
pub mod color;
pub mod dct;

pub use buffer::ImageBuffer;
