//! RGB ↔ YCbCr color conversion (BT.601 full-range, as JPEG uses) for the
//! codec's chroma-subsampled mode.

/// RGB → YCbCr. All components in `[0, 255]`.
pub fn rgb_to_ycbcr(rgb: [f64; 3]) -> [f64; 3] {
    let [r, g, b] = rgb;
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
    let cr = 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
    [y, cb, cr]
}

/// YCbCr → RGB, clamped to `[0, 255]`.
pub fn ycbcr_to_rgb(ycbcr: [f64; 3]) -> [f64; 3] {
    let [y, cb, cr] = ycbcr;
    let r = y + 1.402 * (cr - 128.0);
    let g = y - 0.344_136 * (cb - 128.0) - 0.714_136 * (cr - 128.0);
    let b = y + 1.772 * (cb - 128.0);
    [
        r.clamp(0.0, 255.0),
        g.clamp(0.0, 255.0),
        b.clamp(0.0, 255.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_roundtrip() {
        for rgb in [
            [0.0, 0.0, 0.0],
            [255.0, 255.0, 255.0],
            [255.0, 0.0, 0.0],
            [0.0, 255.0, 0.0],
            [0.0, 0.0, 255.0],
            [128.0, 64.0, 200.0],
        ] {
            let back = ycbcr_to_rgb(rgb_to_ycbcr(rgb));
            for c in 0..3 {
                assert!((back[c] - rgb[c]).abs() < 0.01, "{rgb:?} → {back:?}");
            }
        }
    }

    #[test]
    fn grey_has_neutral_chroma() {
        for v in [0.0, 100.0, 255.0] {
            let [y, cb, cr] = rgb_to_ycbcr([v, v, v]);
            assert!((y - v).abs() < 1e-9);
            assert!((cb - 128.0).abs() < 1e-9);
            assert!((cr - 128.0).abs() < 1e-9);
        }
    }

    #[test]
    fn luma_weights_sum_to_one() {
        let [y, _, _] = rgb_to_ycbcr([255.0, 255.0, 255.0]);
        assert!((y - 255.0).abs() < 1e-9);
    }

    #[test]
    fn exhaustive_roundtrip_error_bounded() {
        // Sampled sweep: conversion error stays sub-pixel.
        for r in (0..=255).step_by(51) {
            for g in (0..=255).step_by(51) {
                for b in (0..=255).step_by(51) {
                    let rgb = [f64::from(r), f64::from(g), f64::from(b)];
                    let back = ycbcr_to_rgb(rgb_to_ycbcr(rgb));
                    for c in 0..3 {
                        assert!((back[c] - rgb[c]).abs() < 0.01);
                    }
                }
            }
        }
    }
}
