//! Inference-step schedule: a decaying-sigma denoising trajectory whose
//! endpoint fidelity saturates with step count — reproducing the paper's
//! observation (§6.3.1) that CLIP scores barely move between 10 and 60
//! steps while time grows linearly.

/// A denoising schedule for a fixed number of steps.
#[derive(Debug, Clone, Copy)]
pub struct Schedule {
    steps: u32,
    /// Time constant of convergence toward the target, in steps.
    tau: f64,
}

impl Schedule {
    /// Schedule for `steps` inference steps.
    pub fn new(steps: u32) -> Schedule {
        Schedule {
            steps: steps.max(1),
            tau: 3.0,
        }
    }

    /// Number of steps.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Blend factor toward the target at step `k`: chosen so cumulative
    /// progress after step `k` equals `1 - exp(-(k+1)/τ)` regardless of
    /// the total step count.
    pub fn alpha(&self, k: u32) -> f64 {
        // progress(k) = 1 - e^{-(k+1)/τ}; alpha = Δprogress / (1 - progress_prev)
        let p_prev = 1.0 - (-(f64::from(k)) / self.tau).exp();
        let p_now = 1.0 - (-(f64::from(k) + 1.0) / self.tau).exp();
        (p_now - p_prev) / (1.0 - p_prev)
    }

    /// Residual noise level injected at step `k` (decays with progress).
    pub fn sigma(&self, k: u32) -> f64 {
        (-(f64::from(k) + 1.0) / self.tau).exp()
    }

    /// Cumulative fidelity after all steps, in `[0, 1)`.
    pub fn final_progress(&self) -> f64 {
        1.0 - (-f64::from(self.steps) / self.tau).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphas_in_unit_interval() {
        let s = Schedule::new(30);
        for k in 0..30 {
            let a = s.alpha(k);
            assert!((0.0..=1.0).contains(&a), "alpha({k})={a}");
        }
    }

    #[test]
    fn progress_saturates() {
        // 10 vs 60 steps: both near 1.0 → flat CLIP, per the paper.
        let p10 = Schedule::new(10).final_progress();
        let p60 = Schedule::new(60).final_progress();
        assert!(p10 > 0.95);
        assert!(p60 > p10);
        assert!(p60 - p10 < 0.05);
    }

    #[test]
    fn sigma_decays_monotonically() {
        let s = Schedule::new(20);
        for k in 1..20 {
            assert!(s.sigma(k) < s.sigma(k - 1));
        }
    }

    #[test]
    fn simulated_convergence_matches_closed_form() {
        // Applying the alphas to a scalar starting at 0 with target 1 must
        // land on final_progress.
        let s = Schedule::new(15);
        let mut x: f64 = 0.0;
        for k in 0..15 {
            x += s.alpha(k) * (1.0 - x);
        }
        assert!((x - s.final_progress()).abs() < 1e-9);
    }
}
