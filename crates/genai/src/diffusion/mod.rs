//! Procedural latent-denoising image synthesis — the stand-in for Stable
//! Diffusion in the paper's prototype (see DESIGN.md substitutions).
//!
//! The mechanism mirrors a diffusion sampler's shape: a seeded noise
//! latent is refined toward a prompt-derived semantic target over N
//! inference steps through a decaying-sigma schedule, then decoded to RGB.
//! Model profiles differ in how faithfully their target matches the ideal
//! prompt field (`quality`) and in per-step cost, both calibrated to the
//! paper's Table 1. Because fidelity is planted in a measurable feature
//! space, the CLIP-sim metric *measures* quality from pixels rather than
//! reading it from a table.
//!
//! # Kernel shape (PR 6)
//!
//! The batched kernel is **step-major** (all latents advance one sigma
//! step together) and, within a step, each job refreshes a noise scratch
//! from its private RNG and then runs a pure element-wise update the
//! autovectorizer can chunk — the serial RNG draw is separated from the
//! arithmetic, but the per-cell floating-point expression and draw order
//! are exactly the original fused loop's, so outputs stay bit-identical.
//! Because each [`LatentJob`] owns its RNG, target and latent, the batch
//! is also data-parallel across jobs: [`try_denoise_batch_tiled`] and
//! [`DiffusionModel::try_generate_batch_on`] split a batch into tiles and
//! run them on any [`TileRunner`] with, again, bit-identical output for
//! every tile/worker count. Scratch buffers come from [`crate::pool`], so
//! a warm server denoises without allocating.

pub mod field;
pub mod models;
pub mod noise;
pub mod scheduler;
pub mod tile;

pub use models::{ImageModelKind, ImageModelProfile};
pub use tile::{InlineRunner, ThreadRunner, TileRunner, TileTask, Tiling};

use crate::image::ImageBuffer;
use crate::pool::{self, PooledF64};
use crate::prompt::{PromptFeatures, TextureClass, EMBED_DIM};
use crate::rng::Rng;
use field::{semantic_target, GRID};
use scheduler::Schedule;
use std::sync::{Arc, Mutex};

/// Amplitude of the semantic luminance field planted into the image.
pub const SEMANTIC_AMPLITUDE: f64 = 60.0;

/// Element-wise chunk width for the denoise update loop. `GRID²` (1024)
/// is a multiple of this, so the remainder loop is cold; 8 f64 lanes fill
/// a pair of AVX2 registers, the widest target the autovectorizer sees
/// without `-C target-feature` flags.
const LANE: usize = 8;

/// Result slot a tile task writes back into; `None` until the task ran,
/// which is how the kernel detects a runner that dropped a tile.
type TileSlot<T> = Arc<Mutex<Option<T>>>;

/// A cooperative cancellation probe checked once per denoise step.
///
/// The serving layer sits *above* this crate (`sww-core` depends on
/// `sww-genai`), so the step loop cannot know about request deadlines or
/// waiter refcounts directly. Instead it accepts this opaque probe: a
/// cheap `Fn() -> bool` the caller builds from whatever lifecycle state
/// it tracks. Returning `true` means "nobody wants this image anymore";
/// the kernel then abandons the batch before the next sigma step —
/// bounding wasted work to at most one step past the cancellation.
///
/// [`StepCancel::never`] is the identity probe; every pre-existing entry
/// point delegates through it, so the cancellable paths are bit-identical
/// to the original ones when the probe stays false.
#[derive(Clone)]
pub struct StepCancel {
    check: Arc<dyn Fn() -> bool + Send + Sync>,
}

impl StepCancel {
    /// A probe that never fires: the denoise loop runs to completion.
    #[must_use]
    pub fn never() -> StepCancel {
        StepCancel {
            check: Arc::new(|| false),
        }
    }

    /// Build a probe from an arbitrary predicate.
    #[must_use]
    pub fn from_fn(f: impl Fn() -> bool + Send + Sync + 'static) -> StepCancel {
        StepCancel { check: Arc::new(f) }
    }

    /// Evaluate the probe. Called once per denoise step per batch (once
    /// per step *per tile* on the tiled paths), so a relaxed atomic load
    /// or two is the expected cost.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        (self.check)()
    }
}

impl std::fmt::Debug for StepCancel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StepCancel {{ cancelled: {} }}", self.is_cancelled())
    }
}

/// A ready-to-run text-to-image model.
#[derive(Debug, Clone)]
pub struct DiffusionModel {
    profile: ImageModelProfile,
}

impl DiffusionModel {
    /// Instantiate a named model.
    pub fn new(kind: ImageModelKind) -> DiffusionModel {
        DiffusionModel {
            profile: models::profile(kind),
        }
    }

    /// Instantiate a model with an overridden quality parameter — used by
    /// the calibration harness and quality-ablation benches.
    pub fn with_quality(kind: ImageModelKind, quality: f64) -> DiffusionModel {
        let mut profile = models::profile(kind);
        profile.quality = quality.clamp(0.0, 1.0);
        DiffusionModel { profile }
    }

    /// The model's profile (quality, cost, ELO calibration).
    pub fn profile(&self) -> &ImageModelProfile {
        &self.profile
    }

    /// Generate an image from a prompt. Deterministic in
    /// `(prompt, width, height, steps, model)`.
    pub fn generate(&self, prompt: &str, width: u32, height: u32, steps: u32) -> ImageBuffer {
        let span = sww_obs::Span::begin("sww_genai_stage", "embed");
        let features = PromptFeatures::analyze(prompt);
        span.finish();
        self.generate_with_features(&features, width, height, steps)
    }

    /// Generate from pre-analyzed prompt features (the pipeline reuses the
    /// analysis across metrics and generation).
    pub fn generate_with_features(
        &self,
        features: &PromptFeatures,
        width: u32,
        height: u32,
        steps: u32,
    ) -> ImageBuffer {
        self.try_generate_with_features(features, width, height, steps, &StepCancel::never())
            .expect("StepCancel::never cannot abort a generation")
    }

    /// Cancellable [`generate_with_features`]: the probe is checked once
    /// per denoise step; `None` means the generation was abandoned
    /// mid-loop (no image is decoded — decode cost is skipped too).
    ///
    /// [`generate_with_features`]: DiffusionModel::generate_with_features
    pub fn try_generate_with_features(
        &self,
        features: &PromptFeatures,
        width: u32,
        height: u32,
        steps: u32,
        cancel: &StepCancel,
    ) -> Option<ImageBuffer> {
        let steps = steps.max(1);
        let denoise_span = sww_obs::Span::begin("sww_genai_stage", "denoise");
        let schedule = Schedule::new(steps);
        let mut job = self.prepare_job(features);
        let completed = try_denoise_batch(&schedule, std::slice::from_mut(&mut job), cancel);
        denoise_span.finish();
        if !completed {
            return None;
        }

        let decode_span = sww_obs::Span::begin("sww_genai_stage", "decode");
        let out = self.decode(features, &job.latent, width, height, &mut job.rng);
        decode_span.finish();
        Some(out)
    }

    /// Generate one image per prompt through a single batched denoising
    /// pass: all latents advance together, one sigma step at a time, then
    /// each decodes at the shared `width`×`height`.
    ///
    /// Per-image output is **bit-identical** to [`generate_with_features`]:
    /// every job keeps its own prompt-seeded RNG stream and its own latent
    /// field, so batching restructures the loop nesting (step-major over
    /// the batch) without reordering any image's random draws or float
    /// operations.
    ///
    /// [`generate_with_features`]: DiffusionModel::generate_with_features
    pub fn generate_batch(
        &self,
        features: &[PromptFeatures],
        width: u32,
        height: u32,
        steps: u32,
    ) -> Vec<ImageBuffer> {
        self.try_generate_batch(features, width, height, steps, &StepCancel::never())
            .expect("StepCancel::never cannot abort a batch")
    }

    /// Cancellable [`generate_batch`]: the probe is checked once per
    /// shared sigma step (not per job). `None` means the whole batch was
    /// abandoned — batches are only cancelled as a unit, when every
    /// member's waiters are gone.
    ///
    /// [`generate_batch`]: DiffusionModel::generate_batch
    pub fn try_generate_batch(
        &self,
        features: &[PromptFeatures],
        width: u32,
        height: u32,
        steps: u32,
        cancel: &StepCancel,
    ) -> Option<Vec<ImageBuffer>> {
        let steps = steps.max(1);
        let denoise_span = sww_obs::Span::begin("sww_genai_stage", "denoise_batch");
        let schedule = Schedule::new(steps);
        let mut jobs: Vec<LatentJob> = features.iter().map(|f| self.prepare_job(f)).collect();
        let completed = try_denoise_batch(&schedule, &mut jobs, cancel);
        denoise_span.finish();
        if !completed {
            return None;
        }

        Some(
            features
                .iter()
                .zip(jobs.iter_mut())
                .map(|(f, job)| {
                    let decode_span = sww_obs::Span::begin("sww_genai_stage", "decode");
                    let out = self.decode(f, &job.latent, width, height, &mut job.rng);
                    decode_span.finish();
                    out
                })
                .collect(),
        )
    }

    /// Data-parallel [`try_generate_batch`]: split the batch into at most
    /// [`Tiling::max_tiles`] contiguous tiles of jobs and run each tile —
    /// prepare, denoise, decode — as one task on the plan's runner.
    ///
    /// Per-image output is **bit-identical** to [`try_generate_batch`]
    /// (and therefore to the single-image path) for every tile and worker
    /// count: jobs never share state, so tiling only changes *where* a
    /// job's instruction stream executes, never its contents. With a plan
    /// of one tile, a single-job batch, or an [`InlineRunner`], this *is*
    /// the sequential path.
    ///
    /// Cancellation stays batch-as-a-unit, but each tile polls the probe
    /// independently (once per step per tile); if any tile observes the
    /// probe and aborts, the whole call returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if `runner` violates the [`TileRunner`] contract by dropping
    /// a task without running it.
    ///
    /// [`try_generate_batch`]: DiffusionModel::try_generate_batch
    pub fn try_generate_batch_on(
        &self,
        features: &[PromptFeatures],
        width: u32,
        height: u32,
        steps: u32,
        cancel: &StepCancel,
        tiling: Tiling<'_>,
    ) -> Option<Vec<ImageBuffer>> {
        let tiles = tiling.max_tiles.min(features.len()).max(1);
        if tiles <= 1 {
            return self.try_generate_batch(features, width, height, steps, cancel);
        }
        let chunk = features.len().div_ceil(tiles);
        let slots: Vec<TileSlot<Option<Vec<ImageBuffer>>>> = features
            .chunks(chunk)
            .map(|_| Arc::new(Mutex::new(None)))
            .collect();
        let tasks: Vec<TileTask> = features
            .chunks(chunk)
            .zip(&slots)
            .map(|(tile_features, slot)| {
                let slot = Arc::clone(slot);
                let model = self.clone();
                let tile_features = tile_features.to_vec();
                let cancel = cancel.clone();
                Box::new(move || {
                    let result =
                        model.try_generate_batch(&tile_features, width, height, steps, &cancel);
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                }) as TileTask
            })
            .collect();
        tiling.runner.run_all(tasks);

        let mut out = Vec::with_capacity(features.len());
        for slot in slots {
            match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                Some(Some(images)) => out.extend(images),
                Some(None) => return None,
                None => panic!("TileRunner dropped a tile without running it"),
            }
        }
        Some(out)
    }

    /// Build one image's denoising state: its private prompt-seeded RNG,
    /// the quality-degraded semantic target, and the noise-initialized
    /// latent — all in buffers checked out of [`crate::pool::latent_pool`].
    /// The RNG draw order (latent init, then denoise, then decode) is the
    /// contract the batch kernel's bit-identity rests on.
    ///
    /// Public so kernel-level callers (benches, the tiled property tests)
    /// can drive [`denoise_batch`] directly.
    pub fn prepare_job(&self, features: &PromptFeatures) -> LatentJob {
        let mut rng = Rng::new(features.seed ^ self.profile.seed_salt);

        // The model's target: the ideal semantic field degraded by model
        // quality — weaker models blend in a model-specific distortion.
        let ideal = semantic_target(&features.embedding);
        let distortion = self.model_distortion(features.seed);
        let q = self.profile.quality;
        let mut target = pool::latent_pool().acquire(GRID * GRID);
        for (i, t) in target.iter_mut().enumerate() {
            *t = q * ideal[i] + (1.0 - q) * distortion[i];
        }

        let mut latent = pool::latent_pool().acquire(GRID * GRID);
        for l in latent.iter_mut() {
            *l = rng.gaussian();
        }
        let noise = pool::latent_pool().acquire(GRID * GRID);
        LatentJob {
            rng,
            target,
            latent,
            noise,
        }
    }

    /// Model-specific smooth distortion field: what a weaker model "sees"
    /// instead of the prompt.
    fn model_distortion(&self, prompt_seed: u64) -> [f64; GRID * GRID] {
        let mut out = [0.0f64; GRID * GRID];
        let seed = prompt_seed
            .rotate_left(17)
            .wrapping_add(self.profile.seed_salt);
        for (i, v) in out.iter_mut().enumerate() {
            let x = (i % GRID) as f64 / GRID as f64;
            let y = (i / GRID) as f64 / GRID as f64;
            *v = noise::fbm(seed, x * 3.0, y * 3.0, 3) * 3.5;
        }
        out
    }

    /// Decode the latent to RGB: aesthetic base color from the palette and
    /// texture class, plus the semantic luminance field, plus residual
    /// noise that the schedule did not remove.
    ///
    /// Two passes: the residual-noise plane is drawn first, serially and
    /// row-major (the exact stream the fused pre-PR-6 loop consumed), into
    /// a pooled scratch; the per-pixel combine is then pure arithmetic
    /// over it. Output is bit-identical to the fused loop.
    fn decode(
        &self,
        features: &PromptFeatures,
        latent: &[f64],
        width: u32,
        height: u32,
        rng: &mut Rng,
    ) -> ImageBuffer {
        let mut img = ImageBuffer::new(width, height);
        let residual = 3.5 * (1.0 - self.profile.quality);
        let mut noise = pool::decode_pool().acquire(width as usize * height as usize);
        for g in noise.iter_mut() {
            *g = rng.gaussian();
        }
        for y in 0..height {
            let v = f64::from(y) / f64::from(height.max(1));
            let row = y as usize * width as usize;
            for x in 0..width {
                let u = f64::from(x) / f64::from(width.max(1));
                let base = self.aesthetic_color(features, u, v);
                let s = sample_grid(latent, u, v) * SEMANTIC_AMPLITUDE;
                let n = noise[row + x as usize] * residual;
                let px = [
                    (base[0] + s + n).clamp(0.0, 255.0) as u8,
                    (base[1] + s + n).clamp(0.0, 255.0) as u8,
                    (base[2] + s + n).clamp(0.0, 255.0) as u8,
                ];
                img.set(x, y, px);
            }
        }
        img
    }

    fn aesthetic_color(&self, features: &PromptFeatures, u: f64, v: f64) -> [f64; 3] {
        let palette = &features.palette;
        let pick = |t: f64| -> [f64; 3] {
            let t = t.clamp(0.0, 0.999);
            let idx = (t * palette.len() as f64) as usize;
            let c = palette[idx.min(palette.len() - 1)];
            [f64::from(c[0]), f64::from(c[1]), f64::from(c[2])]
        };
        match features.texture {
            // Horizon bands: palette sweeps top to bottom.
            TextureClass::Banded => {
                let band = v + 0.08 * noise::fbm(features.seed, u * 4.0, v * 4.0, 2);
                pick(band)
            }
            // Soft blobs.
            TextureClass::Organic => {
                let b = 0.5 + 0.5 * noise::fbm(features.seed, u * 3.0, v * 3.0, 3);
                pick(b)
            }
            // Hard-edged cells.
            TextureClass::Geometric => {
                let cell = noise::fbm(features.seed, (u * 5.0).floor(), (v * 5.0).floor(), 1);
                pick(0.5 + 0.5 * cell)
            }
        }
    }

    /// Extract the image's embedding in the shared prompt/image feature
    /// space: downsample to the latent grid, remove the aesthetic mean,
    /// and project onto the basis patterns. This is what CLIP-sim consumes.
    pub fn image_embedding(img: &ImageBuffer) -> [f32; EMBED_DIM] {
        let grid = img.downsample(GRID as u32, GRID as u32);
        // Luminance deviation field.
        let lum: Vec<f64> = grid
            .iter()
            .map(|rgb| (rgb[0] + rgb[1] + rgb[2]) / 3.0)
            .collect();
        let mean = lum.iter().sum::<f64>() / lum.len() as f64;
        let dev: Vec<f64> = lum
            .iter()
            .map(|l| (l - mean) / SEMANTIC_AMPLITUDE)
            .collect();
        field::project(&dev)
    }
}

/// One image's in-flight denoising state: the latent field being refined,
/// its target, a per-step noise scratch, and the image's private
/// prompt-seeded RNG. Built by [`DiffusionModel::prepare_job`]; the field
/// buffers live in [`crate::pool::latent_pool`] and recycle on drop.
///
/// Keeping the RNG *inside* the job is what makes batched — and tiled —
/// denoising bit-identical to the single-image path: no matter how many
/// jobs share a [`denoise_batch`] pass or which thread a tile lands on,
/// each image consumes exactly the random stream it would have consumed
/// alone.
///
/// # Example
///
/// ```
/// use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
/// use sww_genai::PromptFeatures;
///
/// let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
/// let job = model.prepare_job(&PromptFeatures::analyze("a mountain lake"));
/// // The latent starts as pure prompt-seeded gaussian noise.
/// assert_eq!(job.latent().len(), 32 * 32);
/// ```
#[derive(Debug, Clone)]
pub struct LatentJob {
    rng: Rng,
    target: PooledF64,
    latent: PooledF64,
    noise: PooledF64,
}

impl LatentJob {
    /// Read access to the latent field (`GRID²` cells, row-major).
    pub fn latent(&self) -> &[f64] {
        &self.latent
    }

    /// Advance this job one sigma step. The noise scratch is refreshed
    /// from the job's RNG first (the serial part), then the update runs as
    /// a pure element-wise loop in [`LANE`]-wide chunks — separable
    /// because the latent values never feed back into the RNG. The
    /// per-cell expression is kept literally as
    /// `l += alpha * (t - l) + sigma * g * 0.15` so no floating-point
    /// operation is reassociated relative to the original fused loop.
    fn step(&mut self, alpha: f64, sigma: f64) {
        for g in self.noise.iter_mut() {
            *g = self.rng.gaussian();
        }
        let mut lat = self.latent.chunks_exact_mut(LANE);
        let mut tgt = self.target.chunks_exact(LANE);
        let mut noi = self.noise.chunks_exact(LANE);
        for ((lc, tc), nc) in (&mut lat).zip(&mut tgt).zip(&mut noi) {
            for i in 0..LANE {
                lc[i] += alpha * (tc[i] - lc[i]) + sigma * nc[i] * 0.15;
            }
        }
        for ((l, &t), &g) in lat
            .into_remainder()
            .iter_mut()
            .zip(tgt.remainder())
            .zip(noi.remainder())
        {
            *l += alpha * (t - *l) + sigma * g * 0.15;
        }
    }
}

/// The batched denoising kernel: advance every job's latent field through
/// the shared schedule, one sigma step at a time across the whole batch
/// (step-major, the memory-access shape a real batched sampler has).
///
/// All jobs must share the schedule — callers group work by (model,
/// resolution, steps) before batching. With a single job this executes
/// the exact instruction sequence of the pre-batching denoise loop.
///
/// # Example
///
/// ```
/// use sww_genai::diffusion::scheduler::Schedule;
/// use sww_genai::diffusion::{denoise_batch, DiffusionModel, ImageModelKind};
/// use sww_genai::PromptFeatures;
///
/// let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
/// let f = PromptFeatures::analyze("a mountain lake");
/// let mut jobs = vec![model.prepare_job(&f), model.prepare_job(&f)];
/// denoise_batch(&Schedule::new(4), &mut jobs);
/// // Same prompt, same schedule: the jobs advanced identically.
/// assert_eq!(jobs[0].latent(), jobs[1].latent());
/// ```
pub fn denoise_batch(schedule: &Schedule, jobs: &mut [LatentJob]) {
    let done = try_denoise_batch(schedule, jobs, &StepCancel::never());
    debug_assert!(done, "StepCancel::never cannot abort the kernel");
}

/// Cancellable denoising kernel: identical to [`denoise_batch`] except
/// that the probe is evaluated once before each sigma step. Returns
/// `true` if the schedule ran to completion, `false` if the batch was
/// abandoned mid-loop (the jobs' latents are then partial and must not
/// be decoded).
///
/// The check is per *step*, not per job or per grid cell, so the
/// steady-state overhead with [`StepCancel::never`] is one virtual call
/// per step — and a cancelled flight wastes at most one step of work.
///
/// # Example
///
/// ```
/// use sww_genai::diffusion::scheduler::Schedule;
/// use sww_genai::diffusion::{try_denoise_batch, DiffusionModel, ImageModelKind, StepCancel};
/// use sww_genai::PromptFeatures;
///
/// let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
/// let f = PromptFeatures::analyze("a mountain lake");
/// let mut jobs = vec![model.prepare_job(&f)];
/// assert!(try_denoise_batch(&Schedule::new(4), &mut jobs, &StepCancel::never()));
/// // A pre-fired probe aborts before the first step runs.
/// let mut jobs = vec![model.prepare_job(&f)];
/// assert!(!try_denoise_batch(&Schedule::new(4), &mut jobs, &StepCancel::from_fn(|| true)));
/// ```
pub fn try_denoise_batch(schedule: &Schedule, jobs: &mut [LatentJob], cancel: &StepCancel) -> bool {
    for k in 0..schedule.steps() {
        if cancel.is_cancelled() {
            return false;
        }
        let alpha = schedule.alpha(k);
        let sigma = schedule.sigma(k);
        for job in jobs.iter_mut() {
            job.step(alpha, sigma);
        }
    }
    true
}

/// Data-parallel [`try_denoise_batch`]: split `jobs` into at most
/// [`Tiling::max_tiles`] contiguous tiles and advance each tile through
/// the full schedule as one task on the plan's runner.
///
/// Jobs never share state, so the result is **bit-identical** to the
/// sequential kernel for every tile count, worker count and runner —
/// including after a cancellation (each job is either untouched, partial
/// by whole steps, or complete, exactly as sequential cancellation leaves
/// it). Returns the jobs in their original order, or `None` if any tile
/// observed the probe and abandoned (tiles poll independently, once per
/// step per tile).
///
/// # Panics
///
/// Panics if `runner` violates the [`TileRunner`] contract by dropping a
/// task without running it.
///
/// # Example
///
/// ```
/// use sww_genai::diffusion::scheduler::Schedule;
/// use sww_genai::diffusion::{
///     try_denoise_batch_tiled, DiffusionModel, ImageModelKind, InlineRunner, StepCancel, Tiling,
/// };
/// use sww_genai::PromptFeatures;
///
/// let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
/// let jobs: Vec<_> = ["a", "b", "c"]
///     .iter()
///     .map(|p| model.prepare_job(&PromptFeatures::analyze(p)))
///     .collect();
/// let done = try_denoise_batch_tiled(
///     &Schedule::new(4), jobs, &StepCancel::never(), Tiling::new(&InlineRunner, 2),
/// );
/// assert_eq!(done.expect("never cancelled").len(), 3);
/// ```
pub fn try_denoise_batch_tiled(
    schedule: &Schedule,
    mut jobs: Vec<LatentJob>,
    cancel: &StepCancel,
    tiling: Tiling<'_>,
) -> Option<Vec<LatentJob>> {
    let tiles = tiling.max_tiles.min(jobs.len()).max(1);
    if tiles <= 1 {
        let done = try_denoise_batch(schedule, &mut jobs, cancel);
        return done.then_some(jobs);
    }
    let chunk = jobs.len().div_ceil(tiles);
    let mut slots: Vec<TileSlot<(Vec<LatentJob>, bool)>> = Vec::new();
    let mut tasks: Vec<TileTask> = Vec::new();
    while !jobs.is_empty() {
        let rest = jobs.split_off(chunk.min(jobs.len()));
        let mut tile = std::mem::replace(&mut jobs, rest);
        let slot = Arc::new(Mutex::new(None));
        slots.push(Arc::clone(&slot));
        let schedule = *schedule;
        let cancel = cancel.clone();
        tasks.push(Box::new(move || {
            let done = try_denoise_batch(&schedule, &mut tile, &cancel);
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some((tile, done));
        }));
    }
    tiling.runner.run_all(tasks);

    let mut out = Vec::new();
    let mut completed = true;
    for slot in slots {
        match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some((tile, done)) => {
                completed &= done;
                out.extend(tile);
            }
            None => panic!("TileRunner dropped a tile without running it"),
        }
    }
    completed.then_some(out)
}

/// Bilinear sample of the coarse latent grid at `(u, v) ∈ [0,1]²`.
/// `grid` must hold `GRID²` cells, row-major.
fn sample_grid(grid: &[f64], u: f64, v: f64) -> f64 {
    debug_assert_eq!(grid.len(), GRID * GRID);
    let x = u.clamp(0.0, 1.0) * (GRID - 1) as f64;
    let y = v.clamp(0.0, 1.0) * (GRID - 1) as f64;
    let x0 = x.floor() as usize;
    let y0 = y.floor() as usize;
    let x1 = (x0 + 1).min(GRID - 1);
    let y1 = (y0 + 1).min(GRID - 1);
    let fx = x - x0 as f64;
    let fy = y - y0 as f64;
    grid[y0 * GRID + x0] * (1.0 - fx) * (1.0 - fy)
        + grid[y0 * GRID + x1] * fx * (1.0 - fy)
        + grid[y1 * GRID + x0] * (1.0 - fx) * fy
        + grid[y1 * GRID + x1] * fx * fy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{cosine, PromptFeatures};

    #[test]
    fn generation_is_deterministic() {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let a = m.generate("a mountain lake at sunset", 64, 64, 15);
        let b = m.generate("a mountain lake at sunset", 64, 64, 15);
        assert_eq!(a, b);
    }

    #[test]
    fn different_prompts_differ() {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let a = m.generate("a mountain lake", 32, 32, 15);
        let b = m.generate("a city street at night", 32, 32, 15);
        assert_ne!(a, b);
    }

    #[test]
    fn better_model_recovers_prompt_better() {
        let prompt = "rolling green hills under a cloudy sky, landscape photograph";
        let f = PromptFeatures::analyze(prompt);
        let weak = DiffusionModel::new(ImageModelKind::Sd21Base).generate(prompt, 224, 224, 15);
        let strong = DiffusionModel::new(ImageModelKind::Dalle3).generate(prompt, 224, 224, 15);
        let cw = cosine(&DiffusionModel::image_embedding(&weak), &f.embedding);
        let cs = cosine(&DiffusionModel::image_embedding(&strong), &f.embedding);
        assert!(
            cs > cw,
            "DALLE-3 sim {cs:.3} should beat SD 2.1 sim {cw:.3}"
        );
    }

    #[test]
    fn more_steps_do_not_hurt_similarity_much() {
        // Paper §6.3.1: scaling steps 10→60 leaves CLIP roughly flat.
        let prompt = "a quiet forest with morning fog";
        let f = PromptFeatures::analyze(prompt);
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let c10 = cosine(
            &DiffusionModel::image_embedding(&m.generate(prompt, 128, 128, 10)),
            &f.embedding,
        );
        let c60 = cosine(
            &DiffusionModel::image_embedding(&m.generate(prompt, 128, 128, 60)),
            &f.embedding,
        );
        assert!((c10 - c60).abs() < 0.15, "c10={c10:.3} c60={c60:.3}");
    }

    #[test]
    fn requested_dimensions_respected() {
        let m = DiffusionModel::new(ImageModelKind::Sd21Base);
        for (w, h) in [(16, 16), (64, 32), (100, 100)] {
            let img = m.generate("x", w, h, 5);
            assert_eq!((img.width(), img.height()), (w, h));
        }
    }

    #[test]
    fn zero_steps_clamped() {
        let m = DiffusionModel::new(ImageModelKind::Sd21Base);
        let img = m.generate("x", 16, 16, 0);
        assert_eq!(img.width(), 16);
    }

    #[test]
    fn batched_generation_is_bit_identical_to_single() {
        let prompts = [
            "a mountain lake at sunset",
            "a city street at night",
            "rolling hills under storm clouds",
            "a sandy beach with palm trees",
            "a snow covered village",
            "a dense autumn forest",
            "a desert canyon at noon",
            "a harbor with fishing boats",
        ];
        for model in [ImageModelKind::Sd3Medium, ImageModelKind::Sd21Base] {
            let m = DiffusionModel::new(model);
            for n in 1..=prompts.len() {
                let features: Vec<PromptFeatures> = prompts[..n]
                    .iter()
                    .map(|p| PromptFeatures::analyze(p))
                    .collect();
                let batched = m.generate_batch(&features, 48, 48, 15);
                for (f, img) in features.iter().zip(&batched) {
                    let single = m.generate_with_features(f, 48, 48, 15);
                    assert_eq!(
                        *img, single,
                        "batch of {n} diverged from single pass ({model:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_equivalence_holds_across_steps_and_sizes() {
        let m = DiffusionModel::new(ImageModelKind::Sd35Medium);
        let features: Vec<PromptFeatures> = ["foggy pier", "red rock mesa", "alpine meadow"]
            .iter()
            .map(|p| PromptFeatures::analyze(p))
            .collect();
        for (w, h, steps) in [(16, 16, 1), (64, 32, 7), (32, 64, 30)] {
            let batched = m.generate_batch(&features, w, h, steps);
            for (f, img) in features.iter().zip(&batched) {
                assert_eq!(*img, m.generate_with_features(f, w, h, steps));
            }
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        assert!(m.generate_batch(&[], 32, 32, 15).is_empty());
    }

    #[test]
    fn never_cancel_path_is_bit_identical() {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let f = PromptFeatures::analyze("a mountain lake at sunset");
        let plain = m.generate_with_features(&f, 48, 48, 12);
        let via_try = m
            .try_generate_with_features(&f, 48, 48, 12, &StepCancel::never())
            .unwrap();
        assert_eq!(plain, via_try);
    }

    #[test]
    fn pre_cancelled_generation_aborts_before_any_step() {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let f = PromptFeatures::analyze("abandoned before start");
        let cancel = StepCancel::from_fn(|| true);
        assert!(m
            .try_generate_with_features(&f, 64, 64, 40, &cancel)
            .is_none());
        assert!(m.try_generate_batch(&[f], 64, 64, 40, &cancel).is_none());
    }

    #[test]
    fn mid_loop_cancel_aborts_within_one_step() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        // Fire the probe on its 4th evaluation: the kernel must run
        // exactly 3 steps (probe precedes each step) and then abandon.
        let checks = Arc::new(AtomicU32::new(0));
        let probe_checks = Arc::clone(&checks);
        let cancel = StepCancel::from_fn(move || probe_checks.fetch_add(1, Ordering::SeqCst) >= 3);
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let f = PromptFeatures::analyze("cancelled mid flight");
        let schedule = Schedule::new(40);
        let mut jobs = vec![m.prepare_job(&f)];
        assert!(!try_denoise_batch(&schedule, &mut jobs, &cancel));
        assert_eq!(checks.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn cancel_probe_is_per_step_not_per_job() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let checks = Arc::new(AtomicU32::new(0));
        let probe_checks = Arc::clone(&checks);
        let cancel = StepCancel::from_fn(move || {
            probe_checks.fetch_add(1, Ordering::SeqCst);
            false
        });
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let features: Vec<PromptFeatures> = ["one", "two", "three"]
            .iter()
            .map(|p| PromptFeatures::analyze(p))
            .collect();
        let steps = 9;
        assert!(m
            .try_generate_batch(&features, 16, 16, steps, &cancel)
            .is_some());
        assert_eq!(checks.load(Ordering::SeqCst), steps);
    }

    fn batch_features(n: usize) -> Vec<PromptFeatures> {
        (0..n)
            .map(|i| PromptFeatures::analyze(&format!("tiled kernel prompt {i}")))
            .collect()
    }

    #[test]
    fn tiled_kernel_is_bit_identical_for_every_tile_count() {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let features = batch_features(7);
        let schedule = Schedule::new(11);
        let mut reference: Vec<LatentJob> = features.iter().map(|f| m.prepare_job(f)).collect();
        denoise_batch(&schedule, &mut reference);
        for tiles in 1..=9 {
            let jobs: Vec<LatentJob> = features.iter().map(|f| m.prepare_job(f)).collect();
            let tiled = try_denoise_batch_tiled(
                &schedule,
                jobs,
                &StepCancel::never(),
                Tiling::new(&InlineRunner, tiles),
            )
            .expect("never cancelled");
            for (r, t) in reference.iter().zip(&tiled) {
                assert_eq!(r.latent(), t.latent(), "tiles={tiles}");
            }
        }
    }

    #[test]
    fn tiled_kernel_is_bit_identical_across_threads() {
        let m = DiffusionModel::new(ImageModelKind::Sd35Medium);
        let features = batch_features(8);
        let schedule = Schedule::new(9);
        let mut reference: Vec<LatentJob> = features.iter().map(|f| m.prepare_job(f)).collect();
        denoise_batch(&schedule, &mut reference);
        for tiles in [2, 3, 8] {
            let jobs: Vec<LatentJob> = features.iter().map(|f| m.prepare_job(f)).collect();
            let tiled = try_denoise_batch_tiled(
                &schedule,
                jobs,
                &StepCancel::never(),
                Tiling::new(&ThreadRunner, tiles),
            )
            .expect("never cancelled");
            for (r, t) in reference.iter().zip(&tiled) {
                assert_eq!(r.latent(), t.latent(), "tiles={tiles}");
            }
        }
    }

    #[test]
    fn tiled_generation_matches_sequential_batch() {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let features = batch_features(6);
        let sequential = m.generate_batch(&features, 40, 24, 8);
        for (runner, tiles) in [
            (&InlineRunner as &dyn TileRunner, 1),
            (&InlineRunner, 4),
            (&ThreadRunner, 3),
            (&ThreadRunner, 6),
        ] {
            let tiled = m
                .try_generate_batch_on(
                    &features,
                    40,
                    24,
                    8,
                    &StepCancel::never(),
                    Tiling::new(runner, tiles),
                )
                .expect("never cancelled");
            assert_eq!(sequential, tiled, "tiles={tiles}");
        }
    }

    #[test]
    fn tiled_generation_cancels_as_a_unit() {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let features = batch_features(4);
        let cancel = StepCancel::from_fn(|| true);
        assert!(m
            .try_generate_batch_on(
                &features,
                24,
                24,
                10,
                &cancel,
                Tiling::new(&ThreadRunner, 4)
            )
            .is_none());
        let jobs: Vec<LatentJob> = features.iter().map(|f| m.prepare_job(f)).collect();
        assert!(try_denoise_batch_tiled(
            &Schedule::new(10),
            jobs,
            &cancel,
            Tiling::new(&ThreadRunner, 2)
        )
        .is_none());
    }

    #[test]
    fn tiled_generation_of_empty_batch_is_empty() {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let out = m
            .try_generate_batch_on(
                &[],
                24,
                24,
                5,
                &StepCancel::never(),
                Tiling::new(&ThreadRunner, 4),
            )
            .expect("empty batch cannot cancel");
        assert!(out.is_empty());
    }

    #[test]
    fn broken_runner_that_drops_tiles_panics() {
        struct DropRunner;
        impl TileRunner for DropRunner {
            fn run_all(&self, tasks: Vec<TileTask>) {
                drop(tasks);
            }
        }
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let features = batch_features(4);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.try_generate_batch_on(
                &features,
                16,
                16,
                3,
                &StepCancel::never(),
                Tiling::new(&DropRunner, 2),
            )
        }));
        assert!(panicked.is_err(), "a lost tile must never pass silently");
    }
}
