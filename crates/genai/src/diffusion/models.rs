//! Named image-model profiles, calibrated to the paper's Table 1.
//!
//! `quality` is the feature-space fidelity planted by the generator (the
//! CLIP-sim metric then *measures* it from pixels); `elo` carries the
//! published Artificial Analysis arena ratings the paper cites; the
//! per-step times are the paper's measured anchors at 224×224 / FP16 /
//! 15 steps.

/// The image models the paper evaluates, plus the fast model its §7
/// outlook points at (FLUX.1-class, "models aimed at speed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageModelKind {
    /// Stable Diffusion 2.1 Base — fast but significantly worse quality.
    Sd21Base,
    /// Stable Diffusion 3 Medium — the prototype's model of choice.
    Sd3Medium,
    /// Stable Diffusion 3.5 Medium.
    Sd35Medium,
    /// DALL·E 3 — server-side only in the paper's comparison.
    Dalle3,
    /// A future-fast profile (§7): better than SD 3.5 and much quicker.
    FluxFast,
}

impl ImageModelKind {
    /// All models in the paper's Table 1 comparison, in table order.
    pub fn table1() -> [ImageModelKind; 4] {
        [
            ImageModelKind::Sd21Base,
            ImageModelKind::Sd3Medium,
            ImageModelKind::Sd35Medium,
            ImageModelKind::Dalle3,
        ]
    }
}

/// Static description of one image model.
#[derive(Debug, Clone)]
pub struct ImageModelProfile {
    /// Which model this is.
    pub kind: ImageModelKind,
    /// Human-readable name as printed in Table 1.
    pub name: &'static str,
    /// Feature-space fidelity in `[0, 1]` (drives measured CLIP-sim).
    pub quality: f64,
    /// Published arena ELO rating (calibration data, paper §6.3.1).
    pub elo: u32,
    /// Seconds per inference step on the laptop (M1 Pro), 224², FP16.
    /// `None` for server-only models.
    pub laptop_s_per_step: Option<f64>,
    /// Seconds per inference step on the workstation (2× ADA 4000).
    pub workstation_s_per_step: Option<f64>,
    /// Whether the model only runs server-side (DALL·E 3).
    pub server_only: bool,
    /// Salt mixed into generation seeds so models diverge visually.
    pub seed_salt: u64,
}

/// Look up a model profile.
pub fn profile(kind: ImageModelKind) -> ImageModelProfile {
    match kind {
        ImageModelKind::Sd21Base => ImageModelProfile {
            kind,
            name: "SD 2.1",
            quality: 0.23,
            elo: 688,
            laptop_s_per_step: Some(0.18),
            workstation_s_per_step: Some(0.02),
            server_only: false,
            seed_salt: 0x5d21,
        },
        ImageModelKind::Sd3Medium => ImageModelProfile {
            kind,
            name: "SD 3 Med.",
            quality: 0.44,
            elo: 895,
            laptop_s_per_step: Some(0.38),
            workstation_s_per_step: Some(0.05),
            server_only: false,
            seed_salt: 0x5d30,
        },
        ImageModelKind::Sd35Medium => ImageModelProfile {
            kind,
            name: "SD 3.5 Med.",
            quality: 0.46,
            elo: 927,
            laptop_s_per_step: Some(0.59),
            workstation_s_per_step: Some(0.06),
            server_only: false,
            seed_salt: 0x5d35,
        },
        ImageModelKind::Dalle3 => ImageModelProfile {
            kind,
            name: "DALLE 3",
            quality: 0.63,
            elo: 923,
            laptop_s_per_step: None,
            workstation_s_per_step: None,
            server_only: true,
            seed_salt: 0xda11e3,
        },
        ImageModelKind::FluxFast => ImageModelProfile {
            kind,
            name: "FLUX-fast",
            quality: 0.52,
            elo: 1050,
            laptop_s_per_step: Some(0.06),
            workstation_s_per_step: Some(0.008),
            server_only: false,
            seed_salt: 0xf1f1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_anchors_match_paper() {
        let sd21 = profile(ImageModelKind::Sd21Base);
        assert_eq!(sd21.elo, 688);
        assert_eq!(sd21.laptop_s_per_step, Some(0.18));
        assert_eq!(sd21.workstation_s_per_step, Some(0.02));
        let sd3 = profile(ImageModelKind::Sd3Medium);
        assert_eq!(sd3.elo, 895);
        assert_eq!(sd3.laptop_s_per_step, Some(0.38));
        let sd35 = profile(ImageModelKind::Sd35Medium);
        assert_eq!(sd35.elo, 927);
        let dalle = profile(ImageModelKind::Dalle3);
        assert!(dalle.server_only);
        assert!(dalle.laptop_s_per_step.is_none());
    }

    #[test]
    fn sd3_faster_than_sd35_by_paper_margins() {
        // Paper: SD 3 is 35% faster on laptop, 13% faster on workstation.
        let sd3 = profile(ImageModelKind::Sd3Medium);
        let sd35 = profile(ImageModelKind::Sd35Medium);
        let laptop_speedup = 1.0 - sd3.laptop_s_per_step.unwrap() / sd35.laptop_s_per_step.unwrap();
        assert!((0.30..0.40).contains(&laptop_speedup), "{laptop_speedup}");
        let ws_speedup =
            1.0 - sd3.workstation_s_per_step.unwrap() / sd35.workstation_s_per_step.unwrap();
        assert!((0.10..0.20).contains(&ws_speedup), "{ws_speedup}");
    }

    #[test]
    fn quality_ordering_matches_clip_ordering() {
        // Paper Table 1 CLIP ordering: SD2.1 < SD3 ≈ SD3.5 < DALLE-3.
        let q = |k| profile(k).quality;
        assert!(q(ImageModelKind::Sd21Base) < q(ImageModelKind::Sd3Medium));
        assert!((q(ImageModelKind::Sd3Medium) - q(ImageModelKind::Sd35Medium)).abs() < 0.05);
        assert!(q(ImageModelKind::Sd35Medium) < q(ImageModelKind::Dalle3));
    }

    #[test]
    fn future_model_is_strictly_better_and_faster() {
        // §7: "already some models perform better (CLIP, ELO) and generate
        // faster than SD 3.5 Medium".
        let flux = profile(ImageModelKind::FluxFast);
        let sd35 = profile(ImageModelKind::Sd35Medium);
        assert!(flux.quality > sd35.quality);
        assert!(flux.elo > sd35.elo);
        assert!(flux.laptop_s_per_step.unwrap() < sd35.laptop_s_per_step.unwrap());
    }
}
