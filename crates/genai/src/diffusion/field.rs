//! The shared semantic feature space: smooth basis patterns over the
//! latent grid. The generator plants the prompt embedding into images as
//! a weighted sum of these patterns; the CLIP-sim metric recovers it by
//! projection. Keeping both ends on the same basis is what makes the
//! quality metric a real measurement over pixels.

use super::noise::fbm;
use crate::prompt::EMBED_DIM;
use std::sync::OnceLock;

/// Latent grid edge length.
pub const GRID: usize = 32;

/// Seed namespace for basis patterns (fixed: the basis is global, not
/// prompt- or model-dependent).
const BASIS_SEED: u64 = 0x5157_4942_4153_4953; // "SISABWIQ"

fn basis_raw(dim: usize) -> [f64; GRID * GRID] {
    let seed = BASIS_SEED.wrapping_add(dim as u64 * 0x9e37_79b9);
    let mut p = [0.0f64; GRID * GRID];
    for (i, v) in p.iter_mut().enumerate() {
        let x = (i % GRID) as f64 / GRID as f64;
        let y = (i / GRID) as f64 / GRID as f64;
        *v = fbm(seed, x * 4.0, y * 4.0, 3);
    }
    // Zero-mean, unit-norm.
    let mean = p.iter().sum::<f64>() / p.len() as f64;
    for v in &mut p {
        *v -= mean;
    }
    let norm = p.iter().map(|v| v * v).sum::<f64>().sqrt();
    for v in &mut p {
        *v /= norm;
    }
    p
}

fn all_bases() -> &'static Vec<[f64; GRID * GRID]> {
    static BASES: OnceLock<Vec<[f64; GRID * GRID]>> = OnceLock::new();
    BASES.get_or_init(|| {
        // Gram–Schmidt orthonormalization: raw smooth fields overlap too
        // much for projection to invert planting, so orthogonalize while
        // keeping each pattern dominated by its own smooth seed field.
        let mut bases: Vec<[f64; GRID * GRID]> = Vec::with_capacity(EMBED_DIM);
        let mut dim = 0usize;
        while bases.len() < EMBED_DIM {
            let mut candidate = basis_raw(dim);
            dim += 1;
            for prev in &bases {
                let dot: f64 = candidate.iter().zip(prev.iter()).map(|(a, b)| a * b).sum();
                for (c, p) in candidate.iter_mut().zip(prev.iter()) {
                    *c -= dot * p;
                }
            }
            let norm = candidate.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm < 1e-6 {
                continue; // linearly dependent seed field; try the next
            }
            for c in &mut candidate {
                *c /= norm;
            }
            bases.push(candidate);
        }
        bases
    })
}

/// The ideal semantic field for an embedding: `Σ_d e_d · B_d`, scaled so
/// its pointwise magnitude is O(1).
pub fn semantic_target(embedding: &[f32; EMBED_DIM]) -> [f64; GRID * GRID] {
    let bases = all_bases();
    let mut out = [0.0f64; GRID * GRID];
    for (d, basis) in bases.iter().enumerate() {
        let w = f64::from(embedding[d]);
        if w == 0.0 {
            continue;
        }
        for (o, b) in out.iter_mut().zip(basis.iter()) {
            *o += w * b;
        }
    }
    // Unit-norm basis entries are O(1/GRID); rescale to O(1) pointwise.
    for o in &mut out {
        *o *= GRID as f64;
    }
    out
}

/// Project a grid-sized field onto the basis, recovering an embedding.
/// `field` must have `GRID*GRID` entries and O(1) pointwise magnitude
/// (the inverse of [`semantic_target`]'s scaling is applied internally).
pub fn project(field: &[f64]) -> [f32; EMBED_DIM] {
    debug_assert_eq!(field.len(), GRID * GRID);
    let bases = all_bases();
    let mut out = [0.0f32; EMBED_DIM];
    for (d, basis) in bases.iter().enumerate() {
        let dot: f64 = field.iter().zip(basis.iter()).map(|(f, b)| f * b).sum();
        out[d] = (dot / GRID as f64) as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{cosine, embed_tokens, tokenize};

    #[test]
    fn bases_are_normalized() {
        for d in [0, 7, 31, 63] {
            let b = basis_raw(d);
            let mean = b.iter().sum::<f64>() / b.len() as f64;
            let norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(mean.abs() < 1e-12);
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bases_near_orthogonal() {
        // Random smooth fields are not exactly orthogonal, but cross terms
        // must be small for projection to recover the embedding.
        let a = basis_raw(3);
        let b = basis_raw(40);
        let dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert!(dot.abs() < 0.35, "dot={dot}");
    }

    #[test]
    fn plant_then_project_recovers_embedding() {
        let e = embed_tokens(&tokenize("mountain lake reflection at golden hour"));
        let field = semantic_target(&e);
        let recovered = project(&field);
        let sim = cosine(&recovered, &e);
        assert!(
            sim > 0.85,
            "projection must recover the embedding, sim={sim}"
        );
    }

    #[test]
    fn projection_of_zero_field_is_zero() {
        let zero = vec![0.0f64; GRID * GRID];
        let p = project(&zero);
        assert!(p.iter().all(|&v| v == 0.0));
    }
}
