//! Tile execution: how the data-parallel kernel entry points fan work out.
//!
//! The denoise batch is embarrassingly parallel across jobs (each
//! [`LatentJob`](super::LatentJob) owns its RNG, target and latent — see
//! the bit-identity notes on [`super::denoise_batch`]), but this crate
//! sits *below* the serving layer and must not own threads. [`TileRunner`]
//! inverts that dependency: the kernel splits a batch into tiles and hands
//! the caller boxed tasks; the caller decides where they run. `sww-core`
//! backs the trait with its `WorkerPool`; tests and single-threaded
//! callers use [`InlineRunner`]; [`ThreadRunner`] spawns plain threads.
//!
//! The contract is deliberately tiny: [`TileRunner::run_all`] must run
//! **every** task to completion — on any thread, in any order, with any
//! concurrency — before returning. Dropping a task unexecuted is a
//! contract violation the kernel converts into a panic (a lost tile would
//! otherwise silently truncate a batch).

/// One tile of kernel work, ready to run anywhere.
pub type TileTask = Box<dyn FnOnce() + Send + 'static>;

/// A tile execution plan: the runner the tasks are handed to plus an
/// upper bound on how many tiles the batch splits into. Every tiled
/// kernel entry point takes one. `max_tiles` is clamped to the batch
/// size (and up to 1) at the call site, so an oversized or zero plan is
/// harmless; a plan of one tile is exactly the sequential kernel.
#[derive(Clone, Copy)]
pub struct Tiling<'a> {
    /// Executor the tile tasks run on.
    pub runner: &'a dyn TileRunner,
    /// Upper bound on the number of contiguous tiles.
    pub max_tiles: usize,
}

impl<'a> Tiling<'a> {
    /// Plan a split into at most `max_tiles` tiles on `runner`.
    #[must_use]
    pub fn new(runner: &'a dyn TileRunner, max_tiles: usize) -> Tiling<'a> {
        Tiling { runner, max_tiles }
    }
}

/// An executor for a batch of independent kernel tiles.
pub trait TileRunner: Send + Sync {
    /// Run every task to completion before returning.
    fn run_all(&self, tasks: Vec<TileTask>);
}

/// Runs tiles sequentially on the calling thread. The zero-dependency
/// fallback: tiled entry points driven by an `InlineRunner` execute the
/// same instruction stream as the sequential kernel, just chunked.
#[derive(Debug, Clone, Copy, Default)]
pub struct InlineRunner;

impl TileRunner for InlineRunner {
    fn run_all(&self, tasks: Vec<TileTask>) {
        for task in tasks {
            task();
        }
    }
}

/// Runs every tile on its own freshly spawned thread and joins them all.
///
/// No pooling, no queue: this is the simplest truly parallel runner, used
/// by benches and property tests to exercise cross-thread execution
/// without depending on the serving layer's worker pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadRunner;

impl TileRunner for ThreadRunner {
    fn run_all(&self, tasks: Vec<TileTask>) {
        let handles: Vec<_> = tasks.into_iter().map(std::thread::spawn).collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn counting_tasks(n: usize, hits: &Arc<AtomicUsize>) -> Vec<TileTask> {
        (0..n)
            .map(|_| {
                let hits = Arc::clone(hits);
                Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as TileTask
            })
            .collect()
    }

    #[test]
    fn inline_runner_runs_everything_in_order() {
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let tasks: Vec<TileTask> = (0..4)
            .map(|i| {
                let order = Arc::clone(&order);
                Box::new(move || order.lock().unwrap().push(i)) as TileTask
            })
            .collect();
        InlineRunner.run_all(tasks);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn thread_runner_runs_everything() {
        let hits = Arc::new(AtomicUsize::new(0));
        ThreadRunner.run_all(counting_tasks(8, &hits));
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        InlineRunner.run_all(Vec::new());
        ThreadRunner.run_all(Vec::new());
    }
}
