//! Seeded value noise and fractional Brownian motion, the spatial
//! randomness source of the procedural generator.

use crate::fnv1a;

/// Hash lattice coordinates to a value in `[-1, 1]`.
fn lattice(seed: u64, xi: i64, yi: i64) -> f64 {
    let mut buf = [0u8; 24];
    buf[..8].copy_from_slice(&seed.to_le_bytes());
    buf[8..16].copy_from_slice(&xi.to_le_bytes());
    buf[16..].copy_from_slice(&yi.to_le_bytes());
    let h = fnv1a(&buf);
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Smooth value noise at `(x, y)`, in `[-1, 1]`.
pub fn value_noise(seed: u64, x: f64, y: f64) -> f64 {
    let x0 = x.floor();
    let y0 = y.floor();
    let fx = smoothstep(x - x0);
    let fy = smoothstep(y - y0);
    let (xi, yi) = (x0 as i64, y0 as i64);
    let v00 = lattice(seed, xi, yi);
    let v10 = lattice(seed, xi + 1, yi);
    let v01 = lattice(seed, xi, yi + 1);
    let v11 = lattice(seed, xi + 1, yi + 1);
    let a = v00 + (v10 - v00) * fx;
    let b = v01 + (v11 - v01) * fx;
    a + (b - a) * fy
}

/// Fractional Brownian motion: `octaves` layers of value noise with
/// doubling frequency and halving amplitude, normalized to `[-1, 1]`.
pub fn fbm(seed: u64, x: f64, y: f64, octaves: u32) -> f64 {
    let mut total = 0.0;
    let mut amplitude = 1.0;
    let mut frequency = 1.0;
    let mut norm = 0.0;
    for o in 0..octaves.max(1) {
        total += value_noise(
            seed.wrapping_add(u64::from(o) * 0x9e37),
            x * frequency,
            y * frequency,
        ) * amplitude;
        norm += amplitude;
        amplitude *= 0.5;
        frequency *= 2.0;
    }
    total / norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded() {
        for i in 0..500 {
            let x = i as f64 * 0.173;
            let y = i as f64 * 0.311;
            let v = value_noise(9, x, y);
            assert!((-1.0..=1.0).contains(&v), "v={v}");
            let f = fbm(9, x, y, 4);
            assert!((-1.0..=1.0).contains(&f), "f={f}");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(value_noise(1, 2.5, 3.5), value_noise(1, 2.5, 3.5));
        assert_ne!(value_noise(1, 2.5, 3.5), value_noise(2, 2.5, 3.5));
    }

    #[test]
    fn continuous_across_lattice() {
        // Values just either side of an integer lattice line are close.
        let a = value_noise(5, 3.0 - 1e-9, 0.4);
        let b = value_noise(5, 3.0 + 1e-9, 0.4);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn lattice_points_match_hash() {
        // At integer coordinates the noise equals the lattice value.
        let v = value_noise(7, 4.0, 9.0);
        assert!((v - lattice(7, 4, 9)).abs() < 1e-12);
    }

    #[test]
    fn fbm_roughly_zero_mean() {
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|i| fbm(3, (i % 63) as f64 * 0.37, (i / 63) as f64 * 0.29, 3))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.1, "mean={mean}");
    }
}
