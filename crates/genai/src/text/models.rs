//! Named text-model profiles (paper §6.3.2): Llama 3.2 and three
//! DeepSeek-R1 distillations. Cost anchors come from the paper's measured
//! ranges (workstation 6.98–14.33 s, laptop 16.06–34.04 s, weak dependence
//! on output length, ≈2.5× workstation advantage).

/// The text models the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TextModelKind {
    /// Llama 3.2 (3B-class instruction model).
    Llama32,
    /// DeepSeek-R1 distilled, 1.5B parameters.
    DeepSeekR1_1_5B,
    /// DeepSeek-R1 distilled, 8B — the paper's model of choice.
    DeepSeekR1_8B,
    /// DeepSeek-R1 distilled, 14B.
    DeepSeekR1_14B,
}

impl TextModelKind {
    /// All evaluated models, in the paper's order.
    pub fn all() -> [TextModelKind; 4] {
        [
            TextModelKind::Llama32,
            TextModelKind::DeepSeekR1_1_5B,
            TextModelKind::DeepSeekR1_8B,
            TextModelKind::DeepSeekR1_14B,
        ]
    }
}

/// Static description of one text model.
#[derive(Debug, Clone)]
pub struct TextModelProfile {
    /// Which model this is.
    pub kind: TextModelKind,
    /// Display name.
    pub name: &'static str,
    /// Probability of faithfully weaving a source keyword into each
    /// sentence — drives the *measured* SBERT similarity.
    pub keyword_fidelity: f64,
    /// Std-dev of relative word-count deviation (length discipline);
    /// deviations are clamped at the paper's observed 20% ceiling.
    pub length_sigma: f64,
    /// Reasoning/"thinking" phase seconds on the workstation. R1 models
    /// spend most of their budget here, which is why the paper sees only
    /// weak dependence of total time on output length.
    pub workstation_think_s: f64,
    /// Per-output-word seconds on the workstation.
    pub workstation_s_per_word: f64,
    /// Laptop-to-workstation slowdown (paper: "only 2.5×").
    pub laptop_slowdown: f64,
}

/// Look up a model profile.
pub fn profile(kind: TextModelKind) -> TextModelProfile {
    match kind {
        TextModelKind::Llama32 => TextModelProfile {
            kind,
            name: "Llama 3.2",
            keyword_fidelity: 0.62,
            length_sigma: 0.10,
            workstation_think_s: 5.6,
            workstation_s_per_word: 0.011,
            laptop_slowdown: 2.4,
        },
        TextModelKind::DeepSeekR1_1_5B => TextModelProfile {
            kind,
            name: "DeepSeek R1 1.5B",
            keyword_fidelity: 0.48,
            length_sigma: 0.13,
            workstation_think_s: 7.4,
            workstation_s_per_word: 0.009,
            laptop_slowdown: 2.3,
        },
        TextModelKind::DeepSeekR1_8B => TextModelProfile {
            kind,
            name: "DeepSeek R1 8B",
            keyword_fidelity: 0.85,
            length_sigma: 0.045,
            workstation_think_s: 10.6,
            workstation_s_per_word: 0.012,
            laptop_slowdown: 2.5,
        },
        TextModelKind::DeepSeekR1_14B => TextModelProfile {
            kind,
            name: "DeepSeek R1 14B",
            keyword_fidelity: 0.88,
            length_sigma: 0.055,
            workstation_think_s: 12.2,
            workstation_s_per_word: 0.006,
            laptop_slowdown: 2.6,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_of_choice_has_best_length_discipline() {
        // Paper: "DeepSeek R1 8B … has a consistently high SBERT score and
        // small length deviation … compared to smaller models".
        let r8 = profile(TextModelKind::DeepSeekR1_8B);
        let r15 = profile(TextModelKind::DeepSeekR1_1_5B);
        assert!(r8.length_sigma < r15.length_sigma);
        assert!(r8.keyword_fidelity > r15.keyword_fidelity);
        for k in TextModelKind::all() {
            assert!(r8.length_sigma <= profile(k).length_sigma);
        }
    }

    #[test]
    fn workstation_times_land_in_paper_range() {
        // 6.98–14.33 s on the workstation for 50–250 word outputs.
        for k in TextModelKind::all() {
            let p = profile(k);
            for words in [50.0, 150.0, 250.0] {
                let t = p.workstation_think_s + words * p.workstation_s_per_word;
                assert!((5.5..=17.0).contains(&t), "{:?} at {words} words: {t}s", k);
            }
        }
    }

    #[test]
    fn laptop_slowdown_near_2_5x() {
        for k in TextModelKind::all() {
            let s = profile(k).laptop_slowdown;
            assert!((2.2..=2.8).contains(&s));
        }
    }

    #[test]
    fn thinking_dominates_per_word_cost() {
        // The weak length dependence the paper observes requires the fixed
        // phase to dwarf the per-word phase over the tested range.
        for k in TextModelKind::all() {
            let p = profile(k);
            assert!(p.workstation_think_s > 100.0 * p.workstation_s_per_word * 2.0);
        }
    }
}
