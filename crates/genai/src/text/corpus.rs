//! Built-in training corpus for the Markov language model: the generic
//! travel-blog / news-article register the paper's examples live in
//! ("every travel blog seems to describe the same hiking trail").

/// The corpus, one passage per entry. Written for this repository; the
/// deliberately boilerplate tone mirrors the web content the paper argues
/// is generic enough to regenerate from prompts.
pub static CORPUS: &[&str] = &[
    "The trail begins at the edge of the village and climbs steadily through a forest of old pines. \
     Morning light filters through the branches and the air carries the smell of resin and damp earth. \
     After an hour of walking the trees thin out and the path opens onto a wide meadow dotted with wildflowers.",
    "From the ridge the view stretches across the whole valley. Snow capped peaks rise in the distance \
     and a river winds silver through the fields below. Hikers often pause here to catch their breath \
     and take photographs before the final push to the summit.",
    "The route is well marked and suitable for walkers of moderate fitness. Sturdy boots are recommended \
     because the upper section crosses loose scree. Water sources are scarce beyond the last hut so carry \
     at least two litres per person on warm days.",
    "We reached the lake just before noon. The water was impossibly clear and cold, reflecting the clouds \
     that drifted over the ridge. A small stone shelter stands on the northern shore where travellers can \
     rest and cook a simple meal.",
    "The old town rewards visitors who wander without a map. Narrow lanes open onto quiet squares where \
     cafes set their tables in the shade of plane trees. Local bakers sell bread and pastries from early \
     morning, and the market on the main square runs every weekend.",
    "Autumn is the best season for this walk. The beech forests turn copper and gold, the summer crowds \
     are gone, and the mountain huts still serve hot soup to anyone who arrives before dusk. Check the \
     weather forecast carefully because conditions change quickly above the tree line.",
    "Public transport makes the trailhead easy to reach. A regional bus leaves the station every hour and \
     stops directly at the visitor centre. The last return service departs at six in the evening, so plan \
     the descent with time to spare.",
    "The city has invested heavily in new infrastructure over the past decade. Officials announced this week \
     that the expanded transit line will open ahead of schedule, connecting the airport with the northern \
     districts. Commuters welcomed the news after years of construction delays.",
    "Researchers at the university published a study describing how changing rainfall patterns affect the \
     region's rivers. The team collected measurements over five years and found that spring floods now \
     arrive almost two weeks earlier than they did a generation ago.",
    "The festival returns next month with a programme of music, food and street performance. Organisers \
     expect record attendance this year and advise visitors to book accommodation early. Local businesses \
     say the event brings an important boost to the economy at the end of the season.",
    "Breakfast is served on the terrace overlooking the harbour. Fresh fruit, warm bread and strong coffee \
     arrive at the table while fishing boats return with the morning catch. It is the kind of slow start \
     that sets the tone for a day of unhurried exploration.",
    "The coastal path follows the cliffs for twelve kilometres between the two villages. Seabirds nest in \
     the rock faces below and in spring the slopes are covered with thrift and sea campion. There are no \
     shops along the way, so pack a picnic and plenty of water.",
    "Winter transforms the high plateau into a quiet world of snow and silence. Cross country ski tracks \
     are groomed daily and snowshoe routes lead through the frozen forest to viewpoints over the gorge. \
     Equipment can be rented in the village at reasonable prices.",
    "The museum's new wing houses a collection of regional crafts gathered over two centuries. Exhibits \
     trace the development of weaving, pottery and woodwork, and a workshop space invites visitors to try \
     the techniques themselves under the guidance of local artisans.",
    "Markets across the region reported steady growth in the last quarter. Analysts point to strong demand \
     for local produce and a recovery in tourism as the main drivers. Small producers, however, warn that \
     rising costs continue to squeeze their margins.",
    "Set out early to avoid the afternoon heat. The first section of the climb is exposed and shadeless, \
     but the gradient eases once the path enters the old cedar forest. Near the top a cold spring offers \
     the sweetest water of the whole walk.",
    "The guesthouse sits at the end of a quiet lane surrounded by olive trees. Rooms are simple and clean, \
     with shuttered windows that open onto the garden. Dinner is cooked by the owners and served family \
     style at a long wooden table.",
    "Conservation teams completed the restoration of the medieval bridge this spring. The crossing had been \
     closed for two years after flood damage weakened the central arch. Pedestrians and cyclists can now \
     use the bridge again, while heavier traffic is diverted to the new road.",
    "Every evening the square fills with families taking their customary walk before dinner. Children chase \
     pigeons between the fountains while their grandparents debate football and politics on the benches. \
     Visitors soon find themselves drawn into the gentle rhythm of the town.",
    "The report highlights the growing importance of renewable energy for the national grid. Wind and solar \
     installations supplied nearly forty percent of demand during the summer months, a record share that \
     exceeded government projections for the year.",
    "Start from the harbour and follow the painted marks along the sea wall. The route climbs gently past \
     the old lighthouse before turning inland through terraced fields. Most walkers complete the loop in \
     about three hours, with plenty of places to stop for photographs along the way.",
    "The valley is famous for its spring festivals, when every village decorates its square with flowers \
     and the sound of brass bands carries across the fields. Visitors who arrive early can watch the \
     preparations and share breakfast with the performers before the crowds gather.",
    "Accommodation in the area ranges from simple mountain huts to comfortable family hotels. Booking \
     ahead is essential during the summer season, while spring and autumn offer quieter trails and lower \
     prices. Many hosts will prepare a packed lunch for guests heading out on the long routes.",
    "The regional rail line follows the river for most of its length, and the views from the left side of \
     the train are worth the journey on their own. Services run hourly in the high season and connect \
     with local buses at each of the larger stations.",
    "The old mill has been converted into a small museum of rural life, with working machinery and a cafe \
     in the former grain store. Entry is free on the first weekend of each month, and guided tours can be \
     arranged for groups with a few days of notice.",
    "Weather in the high country changes without much warning. Experienced walkers carry an extra layer \
     and a light waterproof even on clear mornings, and turn back early when clouds build over the \
     western ridges. The huts post daily forecasts at the door.",
    "Local cooking leans on what the valley produces: mountain cheese, dark bread, river trout and \
     orchard fruit. The small restaurants near the square serve a set lunch that changes with the season, \
     and most dishes come with a story from the owner if you ask.",
    "Officials confirmed that the hiking network will gain three new marked routes next year, including a \
     path suitable for wheelchairs along the lake shore. Volunteers from the alpine club will maintain \
     the signage, as they have done for the older trails since the programme began.",
    "The lookout tower on the eastern summit was rebuilt after the storm and now offers a sheltered \
     platform with a panoramic table naming every visible peak. On clear autumn days the view reaches \
     the coastal hills, nearly a hundred kilometres away.",
    "Cyclists share the lower trails with walkers, and a simple code keeps everyone moving: bells before \
     blind corners, downhill riders give way, and groups ride in single file through the narrow section \
     beside the stream. The arrangement has worked well for years.",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_substantial() {
        let words: usize = CORPUS.iter().map(|p| p.split_whitespace().count()).sum();
        assert!(
            words > 800,
            "corpus has {words} words; need enough for an order-2 chain"
        );
        assert!(CORPUS.len() >= 20);
    }

    #[test]
    fn passages_are_prose() {
        for p in CORPUS {
            assert!(p.ends_with('.'), "passage should end with a period");
            assert!(p.split_whitespace().count() > 20);
        }
    }
}
