//! Order-2 Markov chain over words: the language model core of the text
//! expansion substitute.

use crate::rng::Rng;
use std::collections::HashMap;

/// A trained order-2 word chain.
#[derive(Debug, Clone)]
pub struct MarkovChain {
    /// (w1, w2) → possible next words (with multiplicity = frequency).
    transitions: HashMap<(String, String), Vec<String>>,
    /// Bigrams that can start a sentence.
    starters: Vec<(String, String)>,
}

impl MarkovChain {
    /// Train on a set of passages.
    pub fn train(passages: &[&str]) -> MarkovChain {
        let mut transitions: HashMap<(String, String), Vec<String>> = HashMap::new();
        let mut starters = Vec::new();
        for passage in passages {
            for sentence in passage.split('.') {
                let words: Vec<String> = sentence
                    .split_whitespace()
                    .map(|w| w.trim_matches(|c: char| c == ',' || c == ';').to_owned())
                    .filter(|w| !w.is_empty())
                    .collect();
                if words.len() < 3 {
                    continue;
                }
                starters.push((words[0].to_lowercase(), words[1].to_lowercase()));
                for window in words.windows(3) {
                    let key = (window[0].to_lowercase(), window[1].to_lowercase());
                    transitions
                        .entry(key)
                        .or_default()
                        .push(window[2].to_lowercase());
                }
            }
        }
        MarkovChain {
            transitions,
            starters,
        }
    }

    /// Number of distinct bigram states.
    pub fn states(&self) -> usize {
        self.transitions.len()
    }

    /// Generate approximately `target_words` words of text. Sentences are
    /// capped so the chain cannot wander unboundedly between periods.
    pub fn generate(&self, target_words: usize, rng: &mut Rng) -> Vec<String> {
        let mut out: Vec<String> = Vec::with_capacity(target_words + 16);
        while out.len() < target_words {
            let (w1, w2) = self.starters[rng.below(self.starters.len())].clone();
            out.push(w1);
            out.push(w2);
            let mut sentence_len = 2usize;
            loop {
                let key = (out[out.len() - 2].clone(), out[out.len() - 1].clone());
                let Some(nexts) = self.transitions.get(&key) else {
                    break;
                };
                let next = nexts[rng.below(nexts.len())].clone();
                out.push(next);
                sentence_len += 1;
                // End the sentence at a natural length.
                if sentence_len >= 9 && rng.uniform() < 0.18 || sentence_len >= 26 {
                    break;
                }
                if out.len() >= target_words + 8 {
                    break;
                }
            }
            // Mark a sentence boundary with a period on the last word.
            if let Some(last) = out.last_mut() {
                if !last.ends_with('.') {
                    last.push('.');
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::corpus::CORPUS;

    fn chain() -> MarkovChain {
        MarkovChain::train(CORPUS)
    }

    #[test]
    fn training_builds_states() {
        let c = chain();
        assert!(c.states() > 400, "states={}", c.states());
        assert!(!c.starters.is_empty());
    }

    #[test]
    fn generates_near_target_length() {
        let c = chain();
        let mut rng = Rng::new(1);
        for target in [30usize, 100, 250] {
            let words = c.generate(target, &mut rng);
            assert!(words.len() >= target, "{} < {target}", words.len());
            assert!(words.len() <= target + 40, "{} >> {target}", words.len());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let c = chain();
        let a = c.generate(80, &mut Rng::new(7));
        let b = c.generate(80, &mut Rng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn output_contains_sentences() {
        let c = chain();
        let words = c.generate(120, &mut Rng::new(3));
        let periods = words.iter().filter(|w| w.ends_with('.')).count();
        assert!(periods >= 3, "expected multiple sentences, got {periods}");
    }

    #[test]
    fn vocabulary_comes_from_corpus() {
        let c = chain();
        let words = c.generate(60, &mut Rng::new(9));
        let corpus_text = CORPUS.join(" ").to_lowercase();
        for w in words.iter().take(20) {
            let clean = w.trim_end_matches('.');
            assert!(
                corpus_text.contains(clean),
                "word {clean:?} not from corpus"
            );
        }
    }
}
