//! Text → bullet-point conversion (paper §2.1: "Route-specific text is
//! either kept as is, or turned into bullet points that can be used in a
//! prompt to generate the relevant text without loss of information").
//!
//! The converter extracts the content-bearing skeleton of each sentence:
//! stopwords drop, informative words stay, order is preserved. The result
//! is what the server stores and ships instead of the paragraph.

/// Stopwords removed during bullet extraction.
pub fn is_stopword(w: &str) -> bool {
    matches!(
        w,
        "a" | "an"
            | "the"
            | "and"
            | "or"
            | "but"
            | "of"
            | "to"
            | "in"
            | "on"
            | "at"
            | "by"
            | "for"
            | "with"
            | "from"
            | "as"
            | "is"
            | "are"
            | "was"
            | "were"
            | "be"
            | "been"
            | "that"
            | "this"
            | "these"
            | "those"
            | "it"
            | "its"
            | "their"
            | "his"
            | "her"
            | "they"
            | "them"
            | "we"
            | "our"
            | "you"
            | "your"
            | "i"
            | "he"
            | "she"
            | "will"
            | "would"
            | "can"
            | "could"
            | "has"
            | "have"
            | "had"
            | "do"
            | "does"
            | "did"
            | "so"
            | "if"
            | "then"
            | "than"
            | "there"
            | "here"
            | "over"
            | "under"
            | "into"
            | "out"
            | "up"
            | "down"
            | "just"
            | "very"
            | "while"
            | "where"
            | "when"
            | "who"
            | "which"
            | "what"
            | "also"
            | "not"
            | "no"
            | "nor"
    )
}

/// Lowercase a word and strip punctuation.
pub fn normalize_word(w: &str) -> String {
    w.chars()
        .filter(|c| c.is_alphanumeric())
        .collect::<String>()
        .to_lowercase()
}

/// Convert prose into bullet points, one per sentence, keeping up to
/// `max_words_per_bullet` content words each. Exact duplicate bullets are
/// dropped — repeated boilerplate carries no extra information, which is
/// precisely the redundancy the paper's conversion exploits.
pub fn to_bullets(text: &str, max_words_per_bullet: usize) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    text.split(['.', '!', '?'])
        .filter_map(|sentence| {
            let content: Vec<String> = sentence
                .split_whitespace()
                .map(normalize_word)
                .filter(|w| !w.is_empty() && !is_stopword(w))
                .take(max_words_per_bullet)
                .collect();
            (content.len() >= 2).then(|| content.join(" "))
        })
        .filter(|b| seen.insert(b.clone()))
        .collect()
}

/// Byte size of a bullet list in its on-the-wire JSON form — the quantity
/// the paper's 3.1× text compression divides by.
pub fn bullets_wire_size(bullets: &[String]) -> usize {
    let v = sww_json::Value::Array(
        bullets
            .iter()
            .map(|b| sww_json::Value::from(b.as_str()))
            .collect(),
    );
    sww_json::to_string(&v).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARTICLE: &str = "The city council approved the new transit plan on Tuesday. \
        Construction of the light rail extension will begin in the spring. \
        Officials expect the project to reduce commute times by twenty percent.";

    #[test]
    fn bullets_extract_content_words() {
        let bullets = to_bullets(ARTICLE, 8);
        assert_eq!(bullets.len(), 3);
        assert!(bullets[0].contains("council"));
        assert!(bullets[0].contains("transit"));
        assert!(
            !bullets[0].contains("the "),
            "stopwords must drop: {:?}",
            bullets[0]
        );
    }

    #[test]
    fn bullets_are_smaller_than_prose() {
        let bullets = to_bullets(ARTICLE, 6);
        let bullet_bytes = bullets_wire_size(&bullets);
        assert!(
            bullet_bytes < ARTICLE.len(),
            "bullets {bullet_bytes}B vs article {}B",
            ARTICLE.len()
        );
        // A longer, more redundant article compresses harder — the regime
        // behind the paper's 3.1× (2400 B → 778 B).
        let long_article = ARTICLE.repeat(8);
        let long_bullets = to_bullets(&long_article, 6);
        let ratio = long_article.len() as f64 / bullets_wire_size(&long_bullets) as f64;
        assert!(ratio > 1.8, "ratio={ratio:.2}");
    }

    #[test]
    fn short_fragments_skipped() {
        let bullets = to_bullets("Yes. The mountain trail is steep. No.", 8);
        assert_eq!(bullets.len(), 1);
        assert!(bullets[0].contains("mountain"));
    }

    #[test]
    fn word_cap_respected() {
        let long =
            "one two three four five six seven eight nine ten eleven twelve cats dogs birds fish.";
        let bullets = to_bullets(long, 5);
        assert_eq!(bullets[0].split(' ').count(), 5);
    }

    #[test]
    fn normalize_strips_punctuation() {
        assert_eq!(normalize_word("Tuesday."), "tuesday");
        assert_eq!(normalize_word("twenty-percent"), "twentypercent");
        assert_eq!(normalize_word("..."), "");
    }
}
