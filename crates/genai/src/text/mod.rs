//! Text expansion: bullet points → prose of a requested length (the
//! paper's text-to-text task, §6.3.2).
//!
//! The model interleaves Markov-generated filler with the source bullet
//! keywords. Two profile parameters shape the measurable outcomes exactly
//! as the paper reports them: `keyword_fidelity` drives the SBERT
//! similarity between bullets and output, and `length_sigma` drives the
//! word-count overshoot distribution (clamped at ±20%, the paper's
//! observed ceiling).

pub mod bullets;
pub mod corpus;
pub mod markov;
pub mod models;

pub use models::{TextModelKind, TextModelProfile};

use crate::fnv1a;
use crate::rng::Rng;
use markov::MarkovChain;

/// A loaded text model: profile + trained chain. Construction trains the
/// chain, which stands in for model loading — the pipeline preloads it.
#[derive(Debug, Clone)]
pub struct TextModel {
    profile: TextModelProfile,
    chain: MarkovChain,
}

impl TextModel {
    /// Load a named model.
    pub fn new(kind: TextModelKind) -> TextModel {
        TextModel {
            profile: models::profile(kind),
            chain: MarkovChain::train(corpus::CORPUS),
        }
    }

    /// The model's profile.
    pub fn profile(&self) -> &TextModelProfile {
        &self.profile
    }

    /// Expand bullet points into ~`target_words` words of prose.
    /// Deterministic in `(bullets, target_words, model)`.
    pub fn expand(&self, bullet_list: &[String], target_words: usize) -> String {
        let target_words = target_words.max(10);
        let seed = fnv1a(bullet_list.join("|").as_bytes()) ^ (self.profile.kind as u64) << 32;
        let mut rng = Rng::new(seed);

        // Length discipline: the model aims at a deviated target, clamped
        // to the paper's observed ±20% envelope.
        let deviation = (rng.gaussian() * self.profile.length_sigma).clamp(-0.20, 0.20);
        let actual_target = ((target_words as f64) * (1.0 + deviation))
            .round()
            .max(10.0) as usize;

        // Keywords from the bullets, in order, cycled across sentences.
        let keywords: Vec<&str> = bullet_list
            .iter()
            .flat_map(|b| b.split_whitespace())
            .filter(|w| !bullets::is_stopword(w))
            .collect();

        let mut words = self.chain.generate(actual_target, &mut rng);
        words.truncate(actual_target.max(2));
        // Ensure the final word closes a sentence.
        if let Some(last) = words.last_mut() {
            if !last.ends_with('.') {
                last.push('.');
            }
        }

        // Weave keywords in: the model devotes a fidelity-scaled fraction
        // of its output budget to faithfully carrying source terms, cycling
        // through the keywords at spread positions. Higher fidelity → more
        // of the source material survives → higher measured SBERT.
        if !keywords.is_empty() && !words.is_empty() {
            let insertions =
                ((words.len() as f64) * 0.24 * self.profile.keyword_fidelity).round() as usize;
            let stride = (words.len() / insertions.max(1)).max(1);
            for i in 0..insertions {
                let kw = keywords[i % keywords.len()];
                let pos = (i * stride + rng.below(stride)) % words.len();
                let had_period = words[pos].ends_with('.');
                words[pos] = if had_period {
                    format!("{kw}.")
                } else {
                    kw.to_owned()
                };
            }
        }

        render_sentences(&words)
    }
}

/// Join generated words into prose with sentence capitalization.
fn render_sentences(words: &[String]) -> String {
    let mut out = String::new();
    let mut start_of_sentence = true;
    for w in words {
        if !out.is_empty() {
            out.push(' ');
        }
        if start_of_sentence {
            let mut chars = w.chars();
            if let Some(first) = chars.next() {
                out.extend(first.to_uppercase());
                out.push_str(chars.as_str());
            }
        } else {
            out.push_str(w);
        }
        start_of_sentence = w.ends_with('.');
    }
    out
}

/// Relative word-count deviation of `text` from `target`: the paper's
/// "Word Length Overshoot" metric (§6.3.2).
pub fn word_length_overshoot(text: &str, target: usize) -> f64 {
    let actual = text.split_whitespace().count() as f64;
    (actual - target as f64) / target as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bullets() -> Vec<String> {
        vec![
            "council approved transit plan tuesday".into(),
            "light rail extension construction spring".into(),
            "project reduce commute times twenty percent".into(),
        ]
    }

    #[test]
    fn expansion_is_deterministic() {
        let m = TextModel::new(TextModelKind::DeepSeekR1_8B);
        let a = m.expand(&sample_bullets(), 150);
        let b = m.expand(&sample_bullets(), 150);
        assert_eq!(a, b);
    }

    #[test]
    fn different_models_differ() {
        let bullets = sample_bullets();
        let a = TextModel::new(TextModelKind::Llama32).expand(&bullets, 150);
        let b = TextModel::new(TextModelKind::DeepSeekR1_8B).expand(&bullets, 150);
        assert_ne!(a, b);
    }

    #[test]
    fn overshoot_within_paper_envelope() {
        // Paper: overshoot reaches 20% but no more.
        for kind in TextModelKind::all() {
            let m = TextModel::new(kind);
            for target in [50usize, 100, 150, 250] {
                let text = m.expand(&sample_bullets(), target);
                let overshoot = word_length_overshoot(&text, target);
                assert!(
                    overshoot.abs() <= 0.25,
                    "{kind:?} target {target}: overshoot {overshoot:.2}"
                );
            }
        }
    }

    #[test]
    fn model_of_choice_has_tighter_lengths() {
        let bullets = sample_bullets();
        let spread = |kind: TextModelKind| -> f64 {
            // Vary bullets slightly to sample the deviation distribution.
            (0..24)
                .map(|i| {
                    let mut b = bullets.clone();
                    b.push(format!("extra detail {i}"));
                    let m = TextModel::new(kind);
                    word_length_overshoot(&m.expand(&b, 120), 120).abs()
                })
                .sum::<f64>()
                / 24.0
        };
        let tight = spread(TextModelKind::DeepSeekR1_8B);
        let loose = spread(TextModelKind::DeepSeekR1_1_5B);
        assert!(
            tight < loose,
            "8B mean |overshoot| {tight:.3} should beat 1.5B {loose:.3}"
        );
    }

    #[test]
    fn keywords_appear_in_expansion() {
        let m = TextModel::new(TextModelKind::DeepSeekR1_14B);
        let text = m.expand(&sample_bullets(), 200).to_lowercase();
        let hits = ["council", "transit", "rail", "commute", "spring"]
            .iter()
            .filter(|k| text.contains(**k))
            .count();
        assert!(hits >= 3, "expected most keywords woven in, got {hits}");
    }

    #[test]
    fn output_is_sentence_cased() {
        let m = TextModel::new(TextModelKind::Llama32);
        let text = m.expand(&sample_bullets(), 80);
        assert!(text.chars().next().unwrap().is_uppercase());
        assert!(text.ends_with('.'));
    }

    #[test]
    fn overshoot_metric() {
        assert_eq!(word_length_overshoot("one two three four", 4), 0.0);
        assert!((word_length_overshoot("one two three four five", 4) - 0.25).abs() < 1e-9);
        assert!((word_length_overshoot("one two three", 4) + 0.25).abs() < 1e-9);
    }
}
