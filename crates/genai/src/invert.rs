//! Prompt inversion: image → prompt (paper §4.2, citing prompt-inversion
//! work and the GPT-4V-based conversion used in §6.2).
//!
//! The converter that migrates existing pages to SWW needs a function that
//! looks at an image and produces a prompt whose regeneration is
//! semantically close to the original. Here the describer reads the
//! image's *measured* features — its embedding in the shared feature
//! space, palette statistics, and composition — and renders them as a
//! descriptive prompt of the 120–262 character range the paper reports.

use crate::diffusion::DiffusionModel;
use crate::image::ImageBuffer;
use crate::prompt::EMBED_DIM;

/// Vocabulary for verbalizing feature dimensions: dimension `d` of the
/// shared space renders as `VOCAB[d]` when strongly expressed. The mapping
/// is arbitrary but fixed, which is all inversion fidelity needs — the
/// regenerated image plants the same dimensions the describer read.
static VOCAB: [&str; EMBED_DIM] = [
    "rolling",
    "misty",
    "golden",
    "quiet",
    "vast",
    "rugged",
    "lush",
    "serene",
    "dramatic",
    "weathered",
    "sunlit",
    "shadowed",
    "distant",
    "winding",
    "ancient",
    "calm",
    "hills",
    "valley",
    "ridge",
    "meadow",
    "shoreline",
    "cliffs",
    "pasture",
    "dunes",
    "peaks",
    "woodland",
    "riverbank",
    "harbor",
    "orchard",
    "plateau",
    "marsh",
    "glacier",
    "light",
    "mist",
    "clouds",
    "haze",
    "reflections",
    "shadows",
    "colors",
    "textures",
    "horizon",
    "foreground",
    "silhouettes",
    "contours",
    "patterns",
    "layers",
    "detail",
    "depth",
    "morning",
    "evening",
    "afternoon",
    "dusk",
    "dawn",
    "midday",
    "twilight",
    "overcast",
    "spring",
    "summer",
    "autumn",
    "winter",
    "breeze",
    "stillness",
    "warmth",
    "chill",
];

/// Describe the dominant hue of a mean color.
fn hue_word(rgb: [f64; 3]) -> &'static str {
    let [r, g, b] = rgb;
    let max = r.max(g).max(b);
    if max < 60.0 {
        "dark"
    } else if r >= g && r >= b {
        if g > b * 1.2 {
            "warm amber"
        } else {
            "reddish"
        }
    } else if g >= r && g >= b {
        "green"
    } else if b > 150.0 {
        "bright blue"
    } else {
        "deep blue"
    }
}

/// Invert an image into a descriptive prompt.
pub fn invert(image: &ImageBuffer) -> String {
    let embedding = DiffusionModel::image_embedding(image);
    // Strongest expressed dimensions, by magnitude.
    let mut dims: Vec<(usize, f32)> = embedding
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, w)| w.abs() > 1e-4)
        .collect();
    dims.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
    let words: Vec<&str> = dims.iter().take(10).map(|&(d, _)| VOCAB[d]).collect();

    let mean = image.mean_rgb();
    let tone = hue_word(mean);
    let aspect = if image.width() > image.height() {
        "wide"
    } else if image.width() < image.height() {
        "tall"
    } else {
        "square"
    };

    let mut prompt = format!(
        "A {aspect} {tone} scene with {}",
        words
            .split_first()
            .map(|(first, rest)| {
                let mut s = (*first).to_owned();
                for w in rest {
                    s.push_str(", ");
                    s.push_str(w);
                }
                s
            })
            .unwrap_or_else(|| "soft natural features".to_owned())
    );
    prompt.push_str(", detailed, photographic style");
    // The paper's observed prompt lengths: 120–262 characters.
    if prompt.len() < 120 {
        prompt.push_str(", natural lighting and balanced composition throughout the frame");
    }
    prompt.truncate(262);
    prompt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusion::{DiffusionModel, ImageModelKind};
    use crate::metrics::clip;

    #[test]
    fn prompt_length_in_paper_range() {
        // Paper §6.2: prompts ranged from 120 to 262 characters.
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        for p in ["a lake", "a city street at night", "zzz abstract"] {
            let img = m.generate(p, 128, 128, 10);
            let prompt = invert(&img);
            assert!(
                (100..=262).contains(&prompt.len()),
                "inverted prompt length {} for {p:?}",
                prompt.len()
            );
        }
    }

    #[test]
    fn inversion_is_deterministic() {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let img = m.generate("rolling hills", 96, 96, 10);
        assert_eq!(invert(&img), invert(&img));
    }

    #[test]
    fn regeneration_preserves_semantics() {
        // The §6.2 fidelity property: invert an image, regenerate from the
        // inverted prompt, and the result must be semantically closer to
        // the inverted prompt than a random image would be.
        let m = DiffusionModel::new(ImageModelKind::Sd35Medium);
        let original = m.generate("a mountain landscape with a winding river", 224, 224, 15);
        let prompt = invert(&original);
        let regenerated = m.generate(&prompt, 224, 224, 15);
        let score = clip::clip_score(&regenerated, &prompt);
        assert!(
            score > clip::RANDOM_BASELINE + 0.05,
            "regenerated CLIP {score:.3} barely above random"
        );
    }

    #[test]
    fn different_images_invert_differently() {
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let a = invert(&m.generate("a mountain lake", 96, 96, 10));
        let b = invert(&m.generate("a night city skyline", 96, 96, 10));
        assert_ne!(a, b);
    }

    #[test]
    fn aspect_words_track_shape() {
        let m = DiffusionModel::new(ImageModelKind::Sd21Base);
        let wide = invert(&m.generate("hills", 128, 64, 5));
        let tall = invert(&m.generate("hills", 64, 128, 5));
        assert!(wide.starts_with("A wide"));
        assert!(tall.starts_with("A tall"));
    }
}
