#![warn(missing_docs)]

//! Simulated generative-AI substrate for SWW (paper §4.1, §6.3).
//!
//! The paper's prototype calls Stable Diffusion via HF Diffusers and
//! DeepSeek/Llama via Ollama. Neither is available in this environment, so
//! this crate implements the closest synthetic equivalents that exercise
//! the same code paths (see DESIGN.md "Paper-to-repo substitutions"):
//!
//! * [`diffusion`] — a procedural latent-denoising image synthesizer with
//!   named model profiles calibrated to the paper's Table 1,
//! * [`text`] — a Markov-chain language model with bullet-conditioned
//!   expansion and reasoning-phase cost for the DeepSeek-R1 profiles,
//! * [`image`] — the pixel buffer and a lossy block-DCT codec, so media
//!   sizes are *measured* from real encoded bytes, never assumed,
//! * [`upscale`] — content upscaling (§2.2), one-step and fast,
//! * [`invert`] — prompt inversion (image → prompt, §4.2),
//! * [`metrics`] — CLIP-like, SBERT-like and ELO quality metrics,
//! * [`pool`] — reusable scratch-buffer pools keeping the denoise/decode
//!   hot path allocation-free at steady state (PERFORMANCE.md),
//! * [`pipeline`] — the preloaded generation pipeline object whose reuse
//!   the paper's §4.1 design calls out as a performance optimisation.
//!
//! Everything is deterministic: generation is seeded from the prompt
//! (FNV-1a) so tests and benches reproduce exactly.

pub mod diffusion;
pub mod image;
pub mod invert;
pub mod metrics;
pub mod pipeline;
pub mod pool;
pub mod prompt;
pub mod rng;
pub mod text;
pub mod upscale;

pub use diffusion::{DiffusionModel, ImageModelKind, StepCancel, TileRunner, Tiling};
pub use image::{codec, ImageBuffer};
pub use pipeline::GenerationPipeline;
pub use prompt::PromptFeatures;
pub use text::{TextModel, TextModelKind};

/// FNV-1a hash used to derive deterministic seeds from prompts.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_distinct() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"landscape"), fnv1a(b"landscape"));
    }
}
