//! Deterministic PRNG used by all generators.
//!
//! A small xoshiro256** implementation seeded from prompt hashes. The
//! `rand` crate is used elsewhere for distributions; generation itself
//! uses this generator so a prompt always produces the same media on any
//! platform (the determinism the byte-accounting experiments rely on).

/// xoshiro256** state.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed via splitmix64 so nearby seeds diverge.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = Rng::new(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn below_bounds() {
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
