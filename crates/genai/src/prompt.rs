//! Prompt analysis: tokenization, a hashed bag-of-words embedding shared
//! with the CLIP-sim metric, and aesthetic features (palette, texture)
//! that steer the procedural generator.

use crate::fnv1a;

/// Embedding dimensionality of the shared prompt/image feature space.
pub const EMBED_DIM: usize = 64;

/// Named palette hints the generator recognises in prompts.
static PALETTE_HINTS: [(&str, [u8; 3]); 18] = [
    ("landscape", [96, 140, 88]),
    ("mountain", [120, 118, 125]),
    ("sky", [130, 170, 220]),
    ("sunset", [230, 140, 80]),
    ("sunrise", [240, 170, 110]),
    ("ocean", [50, 110, 160]),
    ("sea", [55, 115, 165]),
    ("lake", [70, 120, 150]),
    ("forest", [45, 100, 55]),
    ("desert", [210, 180, 120]),
    ("snow", [235, 240, 245]),
    ("city", [140, 135, 130]),
    ("night", [30, 35, 60]),
    ("goldfish", [235, 140, 40]),
    ("beach", [220, 200, 160]),
    ("field", [150, 170, 80]),
    ("rainbow", [180, 120, 200]),
    ("cloud", [215, 220, 228]),
];

/// Texture classes steering the generator's spatial statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextureClass {
    /// Horizon-banded scenes (landscapes, seascapes).
    Banded,
    /// Soft blobby scenes (clouds, portraits, animals).
    Organic,
    /// Hard-edged scenes (cities, geometry, diagrams).
    Geometric,
}

/// Everything the generator and metrics extract from a prompt.
#[derive(Debug, Clone)]
pub struct PromptFeatures {
    /// Lowercased word tokens.
    pub tokens: Vec<String>,
    /// Unit-norm hashed bag-of-words embedding.
    pub embedding: [f32; EMBED_DIM],
    /// Up to three palette colors implied by the prompt.
    pub palette: Vec<[u8; 3]>,
    /// Spatial statistics class.
    pub texture: TextureClass,
    /// Deterministic seed derived from the prompt text.
    pub seed: u64,
}

/// Tokenize a prompt: lowercase alphanumeric words.
pub fn tokenize(prompt: &str) -> Vec<String> {
    prompt
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_ascii_lowercase)
        .collect()
}

/// Embed a token list into the shared feature space: each token hashes to
/// a dimension and a sign; the sum is L2-normalized.
pub fn embed_tokens(tokens: &[String]) -> [f32; EMBED_DIM] {
    let mut v = [0.0f32; EMBED_DIM];
    for t in tokens {
        let h = fnv1a(t.as_bytes());
        let dim = (h % EMBED_DIM as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[dim] += sign;
        // A second, weaker projection reduces collisions for short prompts.
        let h2 = fnv1a(&h.to_le_bytes());
        let dim2 = (h2 % EMBED_DIM as u64) as usize;
        let sign2 = if (h2 >> 32) & 1 == 0 { 0.5 } else { -0.5 };
        v[dim2] += sign2;
    }
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

impl PromptFeatures {
    /// Analyse a prompt.
    pub fn analyze(prompt: &str) -> PromptFeatures {
        let tokens = tokenize(prompt);
        let embedding = embed_tokens(&tokens);
        let mut palette: Vec<[u8; 3]> = PALETTE_HINTS
            .iter()
            .filter(|(word, _)| tokens.iter().any(|t| t == word))
            .map(|&(_, rgb)| rgb)
            .take(3)
            .collect();
        if palette.is_empty() {
            // Derive a stable palette from the prompt hash.
            let h = fnv1a(prompt.as_bytes());
            palette.push([
                (h >> 8) as u8 / 2 + 64,
                (h >> 20) as u8 / 2 + 64,
                (h >> 36) as u8 / 2 + 64,
            ]);
        }
        let texture = if tokens.iter().any(|t| {
            matches!(
                t.as_str(),
                "landscape"
                    | "mountain"
                    | "horizon"
                    | "sunset"
                    | "sunrise"
                    | "sea"
                    | "ocean"
                    | "beach"
                    | "field"
                    | "desert"
                    | "lake"
            )
        }) {
            TextureClass::Banded
        } else if tokens.iter().any(|t| {
            matches!(
                t.as_str(),
                "city" | "building" | "geometric" | "diagram" | "architecture" | "street"
            )
        }) {
            TextureClass::Geometric
        } else {
            TextureClass::Organic
        };
        PromptFeatures {
            seed: fnv1a(prompt.as_bytes()),
            tokens,
            embedding,
            palette,
            texture,
        }
    }
}

/// Cosine similarity between two embeddings.
pub fn cosine(a: &[f32; EMBED_DIM], b: &[f32; EMBED_DIM]) -> f64 {
    let dot: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        f64::from(dot / (na * nb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(
            tokenize("A cartoon goldfish, swimming!"),
            ["a", "cartoon", "goldfish", "swimming"]
        );
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn embedding_is_unit_norm_and_stable() {
        let e1 = embed_tokens(&tokenize("mountain lake at sunset"));
        let e2 = embed_tokens(&tokenize("mountain lake at sunset"));
        assert_eq!(e1, e2);
        let norm: f32 = e1.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similar_prompts_closer_than_dissimilar() {
        let a = embed_tokens(&tokenize("a mountain landscape with snow"));
        let b = embed_tokens(&tokenize("snowy mountain landscape"));
        let c = embed_tokens(&tokenize("a cartoon goldfish in a bowl"));
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn palette_from_keywords() {
        let f = PromptFeatures::analyze("A goldfish under a sunset sky");
        assert!(f.palette.len() >= 2);
        // goldfish orange should be present
        assert!(f.palette.contains(&[235, 140, 40]));
    }

    #[test]
    fn texture_classes() {
        assert_eq!(
            PromptFeatures::analyze("wide mountain landscape").texture,
            TextureClass::Banded
        );
        assert_eq!(
            PromptFeatures::analyze("modern city street").texture,
            TextureClass::Geometric
        );
        assert_eq!(
            PromptFeatures::analyze("a fluffy cat").texture,
            TextureClass::Organic
        );
    }

    #[test]
    fn fallback_palette_is_deterministic() {
        let a = PromptFeatures::analyze("zzz qqq www");
        let b = PromptFeatures::analyze("zzz qqq www");
        assert_eq!(a.palette, b.palette);
        assert_eq!(a.palette.len(), 1);
    }

    #[test]
    fn orthogonal_prompts_near_zero() {
        let a = embed_tokens(&tokenize("alpha beta gamma delta"));
        let b = embed_tokens(&tokenize("uncorrelated words entirely different"));
        assert!(cosine(&a, &b).abs() < 0.5);
    }
}
