//! Content upscaling (paper §2.2): turning small images into large,
//! high-resolution ones, the intermediate SWW deployment that shrinks
//! *unique* content too. Upscaling is "usually faster than content
//! generation, with sub-second inference" — here a single-pass operation:
//! bilinear magnification plus seeded high-frequency detail synthesis
//! (the one-step-diffusion flavour of the paper's ref \[58\]).

use crate::diffusion::noise::fbm;
use crate::fnv1a;
use crate::image::ImageBuffer;

/// Upscale `img` by an integer `factor` (2 or 4 in practice).
///
/// Deterministic in the source pixels, so an upscaled image is as cacheable
/// as the original.
pub fn upscale(img: &ImageBuffer, factor: u32) -> ImageBuffer {
    let factor = factor.max(1);
    let w = img.width() * factor;
    let h = img.height() * factor;
    let seed = fnv1a(img.data());
    let mut out = ImageBuffer::new(w, h);
    let detail_amp = 6.0 * (1.0 - 1.0 / f64::from(factor));
    for y in 0..h {
        let v = f64::from(y) / f64::from(h.saturating_sub(1).max(1));
        for x in 0..w {
            let u = f64::from(x) / f64::from(w.saturating_sub(1).max(1));
            let base = img.sample(u, v);
            // Synthesized detail: high-frequency texture the source lacks.
            let d = fbm(
                seed,
                u * f64::from(img.width()),
                v * f64::from(img.height()),
                2,
            ) * detail_amp;
            out.set(
                x,
                y,
                [
                    (base[0] + d).clamp(0.0, 255.0) as u8,
                    (base[1] + d).clamp(0.0, 255.0) as u8,
                    (base[2] + d).clamp(0.0, 255.0) as u8,
                ],
            );
        }
    }
    out
}

/// The number of "inference steps" upscaling costs: one (single-pass),
/// which is what makes it sub-second in the cost model.
pub const UPSCALE_STEPS: u32 = 1;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusion::{DiffusionModel, ImageModelKind};
    use crate::metrics::clip;

    #[test]
    fn dimensions_scale() {
        let img = ImageBuffer::new(32, 24);
        let up = upscale(&img, 4);
        assert_eq!((up.width(), up.height()), (128, 96));
    }

    #[test]
    fn factor_one_is_near_identity() {
        let m = DiffusionModel::new(ImageModelKind::Sd21Base);
        let img = m.generate("hills", 32, 32, 5);
        let up = upscale(&img, 1);
        assert_eq!((up.width(), up.height()), (32, 32));
        // detail_amp is 0 at factor 1, so only resampling differences.
        let err = crate::image::codec::mean_abs_error(&img, &up);
        assert!(err < 4.0, "err={err}");
    }

    #[test]
    fn deterministic() {
        let img = DiffusionModel::new(ImageModelKind::Sd3Medium).generate("lake", 16, 16, 5);
        assert_eq!(upscale(&img, 2), upscale(&img, 2));
    }

    #[test]
    fn upscaled_image_preserves_semantics() {
        // The prompt signal survives magnification: CLIP-sim of the 2x
        // image stays close to the original's.
        let prompt = "a mountain landscape with a lake at sunset";
        let img = DiffusionModel::new(ImageModelKind::Sd35Medium).generate(prompt, 128, 128, 15);
        let up = upscale(&img, 2);
        let s_orig = clip::clip_score(&img, prompt);
        let s_up = clip::clip_score(&up, prompt);
        assert!(
            (s_orig - s_up).abs() < 0.05,
            "orig {s_orig:.3} vs upscaled {s_up:.3}"
        );
    }

    #[test]
    fn colors_stay_in_range() {
        let mut img = ImageBuffer::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                img.set(x, y, [255, 0, 128]);
            }
        }
        let up = upscale(&img, 4);
        for px in up.data() {
            let _ = px; // clamped u8 by construction; just exercise access
        }
        assert_eq!(up.data().len(), 32 * 32 * 3);
    }
}
