//! Reusable scratch-buffer pools for the generation hot path.
//!
//! Every denoise job needs three `GRID²` f64 fields (target, latent,
//! per-step noise scratch) and every decode needs a `width×height` f64
//! noise plane. Allocating those per job is what made the pre-PR-6 kernel
//! "allocation-happy": a server at steady state churned megabytes of
//! short-lived heap per second. A [`BufferPool`] keeps returned buffers on
//! a bounded shelf and hands them back out, so after warmup the hot path
//! performs **zero large allocations** — a property the metrics below let
//! tests and dashboards assert rather than assume.
//!
//! # Metrics
//!
//! * `sww_pool_acquired_total{pool,outcome}` — acquisitions, split into
//!   `reuse` (served from the shelf) and `alloc` (fresh heap).
//! * `sww_pool_recycled_total{pool}` — buffers returned to the shelf on
//!   [`PooledF64`] drop.
//! * `sww_alloc_bytes_total{pool}` — bytes of fresh heap the pool had to
//!   allocate. Flat across a time window ⇔ no large allocations occurred.
//!
//! Pooling never changes pixels: a pooled buffer is fully overwritten
//! before use (the kernel writes every cell), so reuse is invisible to
//! the bit-identity suites.
//!
//! # Example
//!
//! ```
//! let mut buf = sww_genai::pool::latent_pool().acquire(16);
//! buf.iter_mut().for_each(|v| *v = 1.0);
//! assert_eq!(buf.len(), 16);
//! drop(buf); // recycled onto the shelf, not freed
//! let again = sww_genai::pool::latent_pool().acquire(16);
//! assert_eq!(again.len(), 16);
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// Upper bound on shelved buffers per pool: enough for the largest batch
/// a server realistically denoises at once, small enough to bound idle
/// memory (256 × GRID² × 8 B = 2 MiB for the latent pool).
const MAX_SHELVED: usize = 256;

/// A bounded shelf of reusable `f64` scratch buffers.
///
/// Buffers of any length share one shelf; [`BufferPool::acquire`] picks
/// the first shelved buffer whose capacity fits and resizes it (a
/// capacity-preserving operation when it fits — no heap traffic).
#[derive(Debug)]
pub struct BufferPool {
    name: &'static str,
    shelf: Mutex<Vec<Vec<f64>>>,
}

impl BufferPool {
    /// An empty pool named `name` (the `pool` metric label).
    pub const fn new(name: &'static str) -> BufferPool {
        BufferPool {
            name,
            shelf: Mutex::new(Vec::new()),
        }
    }

    /// The pool's metric label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of buffers currently shelved (tests, introspection).
    pub fn shelved(&self) -> usize {
        self.shelf.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Check out a zero-filled buffer of exactly `len` elements.
    ///
    /// Serves from the shelf when a shelved buffer's capacity fits
    /// (outcome `reuse`); otherwise allocates (outcome `alloc`, counted
    /// in `sww_alloc_bytes_total`). Dropping the handle recycles the
    /// buffer back onto this shelf.
    pub fn acquire(&'static self, len: usize) -> PooledF64 {
        let reused = {
            let mut shelf = self.shelf.lock().unwrap_or_else(|e| e.into_inner());
            shelf
                .iter()
                .position(|b| b.capacity() >= len)
                .map(|i| shelf.swap_remove(i))
        };
        let buf = match reused {
            Some(mut buf) => {
                sww_obs::counter(
                    "sww_pool_acquired_total",
                    &[("pool", self.name), ("outcome", "reuse")],
                )
                .inc();
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                sww_obs::counter(
                    "sww_pool_acquired_total",
                    &[("pool", self.name), ("outcome", "alloc")],
                )
                .inc();
                sww_obs::counter("sww_alloc_bytes_total", &[("pool", self.name)])
                    .add((len * std::mem::size_of::<f64>()) as u64);
                vec![0.0; len]
            }
        };
        PooledF64 { buf, pool: self }
    }

    /// Deterministically grow the shelf until `count` buffers of at least
    /// `len` cells are available.
    ///
    /// Organic warmup (just running the workload) only shelves as many
    /// buffers as were ever live *at once*, which for concurrent kernel
    /// tiles depends on thread scheduling — a warmed run can still
    /// allocate when the measured phase first reaches peak concurrency.
    /// Prewarming `count` = the worst-case concurrency makes the
    /// steady-state zero-allocation property exact rather than probable.
    pub fn prewarm(&'static self, count: usize, len: usize) {
        // Holding all `count` handles at once forces the shelf to cover
        // the full working set before any are returned.
        let held: Vec<PooledF64> = (0..count).map(|_| self.acquire(len)).collect();
        drop(held);
    }

    fn recycle(&self, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut shelf = self.shelf.lock().unwrap_or_else(|e| e.into_inner());
        if shelf.len() < MAX_SHELVED {
            sww_obs::counter("sww_pool_recycled_total", &[("pool", self.name)]).inc();
            shelf.push(buf);
        }
        // Over MAX_SHELVED the buffer simply drops: the shelf bounds idle
        // memory, and a burst larger than the shelf degrades to plain
        // allocation instead of hoarding.
    }
}

/// A checked-out pool buffer; derefs to `[f64]` and recycles on drop.
pub struct PooledF64 {
    buf: Vec<f64>,
    pool: &'static BufferPool,
}

impl PooledF64 {
    /// The pool this buffer returns to.
    pub fn pool(&self) -> &'static BufferPool {
        self.pool
    }
}

impl Deref for PooledF64 {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.buf
    }
}

impl DerefMut for PooledF64 {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.buf
    }
}

impl Drop for PooledF64 {
    fn drop(&mut self) {
        self.pool.recycle(std::mem::take(&mut self.buf));
    }
}

impl Clone for PooledF64 {
    fn clone(&self) -> PooledF64 {
        let mut out = self.pool.acquire(self.buf.len());
        out.copy_from_slice(&self.buf);
        out
    }
}

impl std::fmt::Debug for PooledF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PooledF64(pool={}, len={})",
            self.pool.name,
            self.buf.len()
        )
    }
}

static LATENT_POOL: BufferPool = BufferPool::new("latent");
static DECODE_POOL: BufferPool = BufferPool::new("decode_noise");

/// The shared pool for `GRID²` latent-space fields (latent, target, and
/// per-step noise scratch).
pub fn latent_pool() -> &'static BufferPool {
    &LATENT_POOL
}

/// The shared pool for `width × height` decode-time noise planes.
pub fn decode_pool() -> &'static BufferPool {
    &DECODE_POOL
}

#[cfg(test)]
mod tests {
    use super::*;

    // One private pool per test: the global latent/decode pools are shared
    // with every other test in the binary, so assertions on shelf contents
    // use a dedicated static.

    #[test]
    fn acquire_is_zeroed_even_after_reuse() {
        static POOL: BufferPool = BufferPool::new("test_zeroed");
        let mut a = POOL.acquire(8);
        a.iter_mut().for_each(|v| *v = 7.0);
        drop(a);
        let b = POOL.acquire(8);
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer must be zeroed");
    }

    #[test]
    fn drop_recycles_and_reuses_capacity() {
        static POOL: BufferPool = BufferPool::new("test_recycle");
        let a = POOL.acquire(32);
        let ptr = a.as_ptr();
        drop(a);
        assert_eq!(POOL.shelved(), 1);
        let b = POOL.acquire(32);
        assert_eq!(POOL.shelved(), 0);
        assert_eq!(b.as_ptr(), ptr, "same heap block must come back");
    }

    #[test]
    fn smaller_request_reuses_larger_buffer() {
        static POOL: BufferPool = BufferPool::new("test_shrink");
        drop(POOL.acquire(64));
        let b = POOL.acquire(16);
        assert_eq!(b.len(), 16);
        assert_eq!(POOL.shelved(), 0, "the 64-cap buffer was reused");
    }

    #[test]
    fn larger_request_allocates_fresh() {
        static POOL: BufferPool = BufferPool::new("test_grow");
        drop(POOL.acquire(8));
        let b = POOL.acquire(1024);
        assert_eq!(b.len(), 1024);
        assert_eq!(POOL.shelved(), 1, "the small buffer stays shelved");
    }

    #[test]
    fn clone_is_a_distinct_pooled_buffer() {
        static POOL: BufferPool = BufferPool::new("test_clone");
        let mut a = POOL.acquire(4);
        a.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let b = a.clone();
        assert_eq!(&*a, &*b);
        assert_ne!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn prewarm_covers_the_working_set_once() {
        static POOL: BufferPool = BufferPool::new("test_prewarm");
        POOL.prewarm(4, 16);
        assert_eq!(POOL.shelved(), 4);
        let bytes = || sww_obs::counter("sww_alloc_bytes_total", &[("pool", "test_prewarm")]).get();
        let after_first = bytes();
        // A second prewarm of the same working set is pure reuse.
        POOL.prewarm(4, 16);
        assert_eq!(POOL.shelved(), 4);
        assert_eq!(bytes(), after_first);
    }

    #[test]
    fn alloc_bytes_counter_tracks_fresh_heap_only() {
        static POOL: BufferPool = BufferPool::new("test_bytes");
        let bytes = || sww_obs::counter("sww_alloc_bytes_total", &[("pool", "test_bytes")]).get();
        let before = bytes();
        drop(POOL.acquire(100));
        let after_alloc = bytes();
        assert_eq!(after_alloc - before, 800);
        drop(POOL.acquire(100)); // reuse: no new bytes
        assert_eq!(bytes(), after_alloc);
    }
}
