//! The preloaded generation pipeline (paper §4.1).
//!
//! "The choice to preload the image generation pipeline from a library …
//! is for performance optimization. Since it is a large object, it would
//! otherwise need to be repeatedly deleted and reloaded within the media
//! generator every time it is invoked." This type is that large object:
//! constructing it loads (trains) every model once; generation calls then
//! reuse the loaded state. The ablation bench compares preloaded reuse
//! against per-request construction.

use crate::diffusion::{DiffusionModel, ImageModelKind, StepCancel};
use crate::image::ImageBuffer;
use crate::prompt::PromptFeatures;
use crate::text::{TextModel, TextModelKind};

/// A fully loaded pipeline: one image model and one text model, plus
/// invocation counters for observability.
#[derive(Debug)]
pub struct GenerationPipeline {
    image_model: DiffusionModel,
    text_model: TextModel,
    images_generated: u64,
    texts_generated: u64,
}

impl GenerationPipeline {
    /// Load the paper's default pairing: SD 3 Medium + DeepSeek-R1 8B.
    pub fn preload_default() -> GenerationPipeline {
        GenerationPipeline::preload(ImageModelKind::Sd3Medium, TextModelKind::DeepSeekR1_8B)
    }

    /// Load a specific model pairing.
    pub fn preload(image: ImageModelKind, text: TextModelKind) -> GenerationPipeline {
        GenerationPipeline {
            image_model: DiffusionModel::new(image),
            text_model: TextModel::new(text),
            images_generated: 0,
            texts_generated: 0,
        }
    }

    /// The loaded image model.
    pub fn image_model(&self) -> &DiffusionModel {
        &self.image_model
    }

    /// The loaded text model.
    pub fn text_model(&self) -> &TextModel {
        &self.text_model
    }

    /// Generate an image from a prompt.
    pub fn generate_image(
        &mut self,
        prompt: &str,
        width: u32,
        height: u32,
        steps: u32,
    ) -> ImageBuffer {
        self.images_generated += 1;
        self.image_model.generate(prompt, width, height, steps)
    }

    /// Cancellable [`generate_image`]: the probe is checked every denoise
    /// step. Returns `None` when the generation was abandoned mid-loop;
    /// an abandoned generation does **not** count toward
    /// [`images_generated`] (nothing was produced).
    ///
    /// [`generate_image`]: GenerationPipeline::generate_image
    /// [`images_generated`]: GenerationPipeline::images_generated
    pub fn try_generate_image(
        &mut self,
        prompt: &str,
        width: u32,
        height: u32,
        steps: u32,
        cancel: &StepCancel,
    ) -> Option<ImageBuffer> {
        let features = PromptFeatures::analyze(prompt);
        let out = self
            .image_model
            .try_generate_with_features(&features, width, height, steps, cancel)?;
        self.images_generated += 1;
        Some(out)
    }

    /// Expand bullets into prose.
    pub fn generate_text(&mut self, bullets: &[String], target_words: usize) -> String {
        self.texts_generated += 1;
        self.text_model.expand(bullets, target_words)
    }

    /// Upscale an image by an integer factor.
    pub fn upscale(&mut self, image: &ImageBuffer, factor: u32) -> ImageBuffer {
        self.images_generated += 1;
        crate::upscale::upscale(image, factor)
    }

    /// How many images this pipeline produced.
    pub fn images_generated(&self) -> u64 {
        self.images_generated
    }

    /// How many text expansions this pipeline produced.
    pub fn texts_generated(&self) -> u64 {
        self.texts_generated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preloaded_pipeline_serves_both_modalities() {
        let mut p = GenerationPipeline::preload_default();
        let img = p.generate_image("a quiet lake", 32, 32, 5);
        assert_eq!(img.width(), 32);
        let text = p.generate_text(&["lake quiet morning".to_string()], 50);
        assert!(text.split_whitespace().count() >= 30);
        assert_eq!(p.images_generated(), 1);
        assert_eq!(p.texts_generated(), 1);
    }

    #[test]
    fn reuse_matches_fresh_construction() {
        // Correctness of the preload optimisation: reusing the pipeline
        // yields byte-identical output to constructing a fresh one.
        let mut reused = GenerationPipeline::preload_default();
        let first = reused.generate_image("hills at dawn", 48, 48, 10);
        let _ = reused.generate_image("something else", 48, 48, 10);
        let again = reused.generate_image("hills at dawn", 48, 48, 10);
        let fresh =
            GenerationPipeline::preload_default().generate_image("hills at dawn", 48, 48, 10);
        assert_eq!(first, again);
        assert_eq!(first, fresh);
    }

    #[test]
    fn cancelled_pipeline_generation_produces_nothing() {
        let mut p = GenerationPipeline::preload_default();
        let live = p.try_generate_image("a quiet lake", 32, 32, 5, &StepCancel::never());
        assert_eq!(
            live,
            Some(p.image_model().generate("a quiet lake", 32, 32, 5))
        );
        let dead = p.try_generate_image("a quiet lake", 32, 32, 5, &StepCancel::from_fn(|| true));
        assert_eq!(dead, None);
        // Only the completed generation counted.
        assert_eq!(p.images_generated(), 1);
    }

    #[test]
    fn upscale_counts_as_generation() {
        let mut p = GenerationPipeline::preload_default();
        let img = p.generate_image("x", 16, 16, 3);
        let up = p.upscale(&img, 2);
        assert_eq!(up.width(), 32);
        assert_eq!(p.images_generated(), 2);
    }
}
