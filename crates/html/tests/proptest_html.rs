//! Property tests for the HTML layer: totality on arbitrary input and the
//! parse → serialize fixed point.

use proptest::prelude::*;
use sww_html::{parse, serialize};

proptest! {
    #[test]
    fn tokenizer_and_parser_total(input in ".{0,400}") {
        // Any input yields a tree without panicking (browser behaviour).
        let doc = parse(&input);
        let _ = serialize(&doc);
    }

    #[test]
    fn tag_soup_total(input in "[<>a-z\"'= /!-]{0,200}") {
        // Dense tag-soup: worst case for the tokenizer's state machine.
        let doc = parse(&input);
        let _ = serialize(&doc);
    }

    #[test]
    fn serialize_parse_is_fixed_point(input in "[a-z <>/=\"-]{0,200}") {
        // One parse+serialize normalizes; a second pass must be identity.
        let once = serialize(&parse(&input));
        let twice = serialize(&parse(&once));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn text_content_preserved_for_plain_text(text in "[a-zA-Z0-9 .,]{0,120}") {
        // Plain text without markup survives a parse/serialize round trip.
        let doc = parse(&text);
        prop_assert_eq!(doc.text_content(doc.root()), text);
    }

    #[test]
    fn wellformed_attribute_values_roundtrip(value in "[ -~&&[^<>\"&]]{0,60}") {
        let html = format!("<div title=\"{value}\"></div>");
        let doc = parse(&html);
        let div = doc.children(doc.root())[0];
        prop_assert_eq!(doc.attr(div, "title").unwrap_or(""), value.as_str());
    }

    #[test]
    fn entity_decoder_total(input in "[&#a-z0-9;x]{0,80}") {
        let _ = sww_html::entities::decode_text(&input);
    }
}
