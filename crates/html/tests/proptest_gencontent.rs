//! Property tests for the `generated-content` HTML convention: the
//! extraction contract must be syntax-insensitive. Arbitrary attribute
//! orderings, extra attributes, nesting depth, surrounding markup, and
//! entity-escaped (double-quoted) metadata attributes all parse to the
//! same metadata as the canonical [`image_div`] serialization.
//!
//! [`image_div`]: sww_html::gencontent::image_div

use proptest::prelude::*;
use sww_html::entities::escape_attr;
use sww_html::gencontent::{self, ContentType};
use sww_html::parse;

/// All six orderings of the three convention attributes, with an
/// optional unrelated attribute mixed in — extraction must not care.
fn div_with_attr_order(order: usize, extra: bool, metadata_attr_html: &str) -> String {
    let meta = format!("data-metadata='{metadata_attr_html}'");
    let attrs = [
        r#"class="generated-content""#.to_string(),
        r#"data-content-type="img""#.to_string(),
        meta,
    ];
    const PERMS: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    let p = PERMS[order % PERMS.len()];
    let mut parts: Vec<String> = p.iter().map(|&i| attrs[i].clone()).collect();
    if extra {
        parts.insert(1, r#"id="x7" style="margin:0""#.to_string());
    }
    format!("<div {}></div>", parts.join(" "))
}

/// The canonical metadata JSON for an image item, single-quote escaped
/// exactly like [`gencontent::image_div`] does.
fn metadata_json(prompt: &str, name: &str, width: u32, height: u32) -> String {
    let canonical = gencontent::image_div(prompt, name, width, height);
    let start = canonical.find("data-metadata='").unwrap() + "data-metadata='".len();
    let end = canonical.rfind('\'').unwrap();
    canonical[start..end].to_string()
}

/// Extract the single image item from `html` and assert it carries
/// exactly the expected metadata.
fn assert_extracts(html: &str, prompt: &str, name: &str, width: u32, height: u32) {
    let doc = parse(html);
    let items = gencontent::extract(&doc);
    assert_eq!(items.len(), 1, "exactly one item in {html:?}");
    let item = &items[0];
    assert_eq!(item.content_type, ContentType::Img);
    assert_eq!(item.prompt(), prompt);
    assert_eq!(item.name(), name);
    assert_eq!(item.width(), width);
    assert_eq!(item.height(), height);
}

proptest! {
    /// Canonical serialization round-trips through parse + extract.
    /// (`&` is exercised separately via the entity-escaped variant: the
    /// single-quoted canonical form only escapes `'`.)
    #[test]
    fn canonical_image_div_roundtrips(
        prompt in "[ -~&&[^&]]{0,60}",
        name in "[a-z][a-z0-9_.-]{0,20}",
        width in 1u32..2048,
        height in 1u32..2048
    ) {
        let html = gencontent::image_div(&prompt, &name, width, height);
        assert_extracts(&html, &prompt, &name, width, height);
    }

    /// Any attribute ordering — with unrelated attributes mixed in —
    /// yields the same metadata as the canonical serialization.
    #[test]
    fn attribute_order_is_irrelevant(
        prompt in "[ -~&&[^&]]{0,60}",
        name in "[a-z][a-z0-9_.-]{0,20}",
        width in 1u32..2048,
        height in 1u32..2048,
        order in 0usize..6,
        extra in any::<bool>()
    ) {
        let meta = metadata_json(&prompt, &name, width, height);
        let variant = div_with_attr_order(order, extra, &meta);
        assert_extracts(&variant, &prompt, &name, width, height);

        // And it agrees with the canonical form on the wire-accounting
        // quantity too.
        let canonical = parse(&gencontent::image_div(&prompt, &name, width, height));
        let reference = &gencontent::extract(&canonical)[0];
        let parsed = parse(&variant);
        let item = &gencontent::extract(&parsed)[0];
        prop_assert_eq!(item.metadata_size(), reference.metadata_size());
    }

    /// A double-quoted, fully entity-escaped metadata attribute decodes
    /// to the same metadata — including prompts containing `&`, `"`,
    /// `<` and `'`, which the tokenizer must restore via entity
    /// decoding.
    #[test]
    fn entity_escaped_double_quoted_variant_matches(
        prompt in "[ -~]{0,60}",
        name in "[a-z][a-z0-9_.-]{0,20}",
        width in 1u32..2048,
        height in 1u32..2048
    ) {
        let json = format!(
            r#"{{"prompt":{},"name":{},"width":{width},"height":{height}}}"#,
            sww_json::to_string(&sww_json::Value::from(prompt.as_str())),
            sww_json::to_string(&sww_json::Value::from(name.as_str())),
        );
        let html = format!(
            r#"<div class="generated-content" data-content-type="img" data-metadata="{}"></div>"#,
            escape_attr(&json)
        );
        assert_extracts(&html, &prompt, &name, width, height);
    }

    /// Nesting the element arbitrarily deep inside unrelated markup
    /// changes nothing about extraction.
    #[test]
    fn nesting_depth_is_irrelevant(
        prompt in "[ -~&&[^&]]{0,40}",
        name in "[a-z][a-z0-9_.-]{0,12}",
        depth in 0usize..5,
        filler in "[a-zA-Z0-9 .,]{0,30}"
    ) {
        let mut html = gencontent::image_div(&prompt, &name, 64, 64);
        for level in 0..depth {
            html = format!(
                "<section><p>{filler}</p><div class=\"wrap{level}\">{html}</div></section>"
            );
        }
        assert_extracts(&html, &prompt, &name, 64, 64);
    }

    /// Multiple generated-content elements extract in document order,
    /// each with its own metadata, regardless of per-element attribute
    /// ordering.
    #[test]
    fn multiple_items_extract_in_document_order(
        prompts in prop::collection::vec("[ -~&&[^&]]{0,24}", 1..6),
        orders in prop::collection::vec(0usize..6, 6)
    ) {
        let body: String = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let meta = metadata_json(p, &format!("img{i}"), 32, 32);
                div_with_attr_order(orders[i % orders.len()], i % 2 == 0, &meta)
            })
            .collect();
        let doc = parse(&format!("<html><body>{body}</body></html>"));
        let items = gencontent::extract(&doc);
        prop_assert_eq!(items.len(), prompts.len());
        for (i, (item, prompt)) in items.iter().zip(&prompts).enumerate() {
            prop_assert_eq!(item.prompt(), prompt.as_str(), "item {} out of order", i);
            prop_assert_eq!(item.name(), format!("img{i}").as_str());
        }
    }
}
