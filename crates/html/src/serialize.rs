//! Serializer: [`Document`] → markup. Together with the parser this gives
//! a parse → serialize → parse fixed point, which the byte-accounting
//! experiments rely on when measuring page sizes.

use crate::dom::{Document, NodeId, NodeKind};
use crate::entities::{escape_attr, escape_text};
use crate::tokenizer::{is_raw_text_element, is_void_element};

/// Serialize the whole document.
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    for &child in doc.children(doc.root()) {
        serialize_node(doc, child, &mut out);
    }
    out
}

/// Serialize the subtree rooted at `id`.
pub fn serialize_node(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).kind {
        NodeKind::Document => {
            for &child in doc.children(id) {
                serialize_node(doc, child, out);
            }
        }
        NodeKind::Doctype(d) => {
            out.push_str("<!");
            out.push_str(d);
            out.push('>');
        }
        NodeKind::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        NodeKind::Text(t) => {
            // Raw-text element bodies must not be entity-escaped.
            let raw_parent = doc
                .parent(id)
                .and_then(|p| doc.tag_name(p))
                .is_some_and(is_raw_text_element);
            if raw_parent {
                out.push_str(t);
            } else {
                out.push_str(&escape_text(t));
            }
        }
        NodeKind::Element { name, attrs } => {
            out.push('<');
            out.push_str(name);
            for a in attrs {
                out.push(' ');
                out.push_str(&a.name);
                if !a.value.is_empty() {
                    out.push_str("=\"");
                    out.push_str(&escape_attr(&a.value));
                    out.push('"');
                }
            }
            out.push('>');
            if is_void_element(name) {
                return;
            }
            for &child in doc.children(id) {
                serialize_node(doc, child, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(html: &str) -> String {
        serialize(&parse(html))
    }

    #[test]
    fn simple_roundtrip() {
        let html = r#"<html><body><p class="x">hi</p></body></html>"#;
        assert_eq!(roundtrip(html), html);
    }

    #[test]
    fn fixed_point() {
        // serialize ∘ parse is a fixed point after one application.
        let messy = "<DIV Class='a'>x<br/><img src=a.jpg>Y</div>";
        let once = roundtrip(messy);
        let twice = roundtrip(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn entities_escaped() {
        let html = "<p>a &amp; b &lt; c</p>";
        assert_eq!(roundtrip(html), html);
    }

    #[test]
    fn attr_quotes_escaped() {
        let doc = parse(r#"<div title="say &quot;hi&quot;"></div>"#);
        let out = serialize(&doc);
        assert_eq!(out, r#"<div title="say &quot;hi&quot;"></div>"#);
    }

    #[test]
    fn void_elements_no_end_tag() {
        assert_eq!(roundtrip("<br>"), "<br>");
        assert_eq!(roundtrip("<img src=\"x\">"), "<img src=\"x\">");
    }

    #[test]
    fn script_body_not_escaped() {
        let html = "<script>if (a < b) t();</script>";
        assert_eq!(roundtrip(html), html);
    }

    #[test]
    fn comments_and_doctype_preserved() {
        let html = "<!DOCTYPE html><!-- c --><p>x</p>";
        assert_eq!(roundtrip(html), html);
    }

    #[test]
    fn boolean_attributes() {
        assert_eq!(roundtrip("<input disabled>"), "<input disabled>");
    }
}
