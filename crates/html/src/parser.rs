//! Tree builder: token stream → [`Document`].
//!
//! A simplified HTML tree construction: maintains an open-element stack,
//! auto-closes void elements, recovers from mismatched end tags by
//! unwinding to the nearest matching open element (or ignoring the tag),
//! and never fails — any input produces a tree.

use crate::dom::{Document, NodeId, NodeKind};
use crate::tokenizer::{is_void_element, tokenize, Token};

/// Parse markup into a document.
pub fn parse(input: &str) -> Document {
    let mut doc = Document::new();
    let mut stack: Vec<NodeId> = vec![doc.root()];
    for token in tokenize(input) {
        let top = *stack.last().expect("root never popped");
        match token {
            Token::Doctype(d) => {
                doc.append(doc.root(), NodeKind::Doctype(d));
            }
            Token::Comment(c) => {
                doc.append(top, NodeKind::Comment(c));
            }
            Token::Text(t) => {
                doc.append(top, NodeKind::Text(t));
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                let id = doc.append(
                    top,
                    NodeKind::Element {
                        name: name.clone(),
                        attrs,
                    },
                );
                if !self_closing && !is_void_element(&name) {
                    stack.push(id);
                }
            }
            Token::EndTag { name } => {
                // Find the matching open element, if any.
                if let Some(depth) = stack
                    .iter()
                    .rposition(|&id| doc.tag_name(id) == Some(name.as_str()))
                {
                    if depth > 0 {
                        stack.truncate(depth);
                    }
                }
                // No match: stray end tag, ignored (browser behaviour).
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structure() {
        let doc = parse("<html><body><div><p>a</p><p>b</p></div></body></html>");
        let html = doc.children(doc.root())[0];
        assert_eq!(doc.tag_name(html), Some("html"));
        let body = doc.children(html)[0];
        let div = doc.children(body)[0];
        assert_eq!(doc.children(div).len(), 2);
        assert_eq!(doc.text_content(div), "ab");
    }

    #[test]
    fn void_elements_dont_nest() {
        let doc = parse("<p>a<br>b<img src=\"x\">c</p>");
        let p = doc.children(doc.root())[0];
        assert_eq!(doc.text_content(p), "abc");
        let tags: Vec<_> = doc
            .children(p)
            .iter()
            .filter_map(|&c| doc.tag_name(c))
            .collect();
        assert_eq!(tags, ["br", "img"]);
    }

    #[test]
    fn mismatched_end_tags_recover() {
        // </b> closes nothing open at that level; </i> unwinds.
        let doc = parse("<div><i>x</b>y</i>z</div>");
        let div = doc.children(doc.root())[0];
        assert_eq!(doc.text_content(div), "xyz");
        // "z" must be a direct child of div (the </i> unwound the stack).
        let last = *doc.children(div).last().unwrap();
        assert!(matches!(doc.node(last).kind, NodeKind::Text(ref t) if t == "z"));
    }

    #[test]
    fn stray_end_tag_ignored() {
        let doc = parse("</div><p>ok</p>");
        assert_eq!(doc.text_content(doc.root()), "ok");
    }

    #[test]
    fn doctype_attaches_to_root() {
        let doc = parse("<!DOCTYPE html><html></html>");
        let first = doc.children(doc.root())[0];
        assert!(matches!(doc.node(first).kind, NodeKind::Doctype(_)));
    }

    #[test]
    fn unclosed_elements_terminate_at_eof() {
        let doc = parse("<div><p>never closed");
        assert_eq!(doc.text_content(doc.root()), "never closed");
    }

    #[test]
    fn deeply_nested_does_not_overflow() {
        let html = "<div>".repeat(5000) + "x" + &"</div>".repeat(5000);
        let doc = parse(&html);
        assert_eq!(doc.text_content(doc.root()), "x");
    }
}
