//! DOM queries used by the SWW client and conversion pipeline: lookups by
//! tag, class and attribute, in document order.

use crate::dom::{Document, NodeId, NodeKind};

/// All elements with the given tag name under `start`.
pub fn by_tag(doc: &Document, start: NodeId, tag: &str) -> Vec<NodeId> {
    doc.descendants(start)
        .into_iter()
        .filter(|&id| doc.tag_name(id) == Some(tag))
        .collect()
}

/// All elements carrying `class_name` in their class list under `start`.
pub fn by_class(doc: &Document, start: NodeId, class_name: &str) -> Vec<NodeId> {
    doc.descendants(start)
        .into_iter()
        .filter(|&id| doc.has_class(id, class_name))
        .collect()
}

/// All elements that have attribute `name` under `start`.
pub fn by_attr(doc: &Document, start: NodeId, name: &str) -> Vec<NodeId> {
    doc.descendants(start)
        .into_iter()
        .filter(|&id| doc.attr(id, name).is_some())
        .collect()
}

/// First element with the given tag.
pub fn first_by_tag(doc: &Document, start: NodeId, tag: &str) -> Option<NodeId> {
    doc.descendants(start)
        .into_iter()
        .find(|&id| doc.tag_name(id) == Some(tag))
}

/// Count text characters in all text nodes under `start` (used by the
/// conversion pipeline to size text blocks).
pub fn text_len(doc: &Document, start: NodeId) -> usize {
    doc.descendants(start)
        .into_iter()
        .filter_map(|id| match &doc.node(id).kind {
            NodeKind::Text(t) => Some(t.chars().count()),
            _ => None,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const PAGE: &str = r#"
        <html><body>
          <div class="hero generated-content" data-content-type="img"></div>
          <p class="caption">one</p>
          <div class="generated-content" data-content-type="txt"></div>
          <img src="unique.jpg">
          <p>two</p>
        </body></html>"#;

    #[test]
    fn by_class_finds_in_order() {
        let doc = parse(PAGE);
        let found = by_class(&doc, doc.root(), "generated-content");
        assert_eq!(found.len(), 2);
        assert_eq!(doc.attr(found[0], "data-content-type"), Some("img"));
        assert_eq!(doc.attr(found[1], "data-content-type"), Some("txt"));
    }

    #[test]
    fn by_tag_and_first() {
        let doc = parse(PAGE);
        assert_eq!(by_tag(&doc, doc.root(), "p").len(), 2);
        assert_eq!(by_tag(&doc, doc.root(), "img").len(), 1);
        let img = first_by_tag(&doc, doc.root(), "img").unwrap();
        assert_eq!(doc.attr(img, "src"), Some("unique.jpg"));
        assert!(first_by_tag(&doc, doc.root(), "video").is_none());
    }

    #[test]
    fn by_attr_matches_data_attributes() {
        let doc = parse(PAGE);
        assert_eq!(by_attr(&doc, doc.root(), "data-content-type").len(), 2);
        assert_eq!(by_attr(&doc, doc.root(), "src").len(), 1);
    }

    #[test]
    fn text_len_counts_chars() {
        let doc = parse("<p>héllo</p>");
        assert_eq!(text_len(&doc, doc.root()), 5);
    }
}
