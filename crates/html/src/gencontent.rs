//! The `generated-content` convention (paper §4.1, Figure 1).
//!
//! A generated-content element is a division carrying two fields:
//!
//! * **content-type** — `img` or `txt` (attribute `data-content-type`),
//! * **metadata** — a JSON dictionary (attribute `data-metadata`) holding
//!   whatever the generator needs: for images the prompt, name, width and
//!   height; for text the bullet points and requested word count.
//!
//! Before processing (Figure 1 top) the division holds the prompt; after
//! (bottom) it is replaced by a pointer to the generated JPEG, or by the
//! expanded text body.

use crate::dom::{Document, NodeId, NodeKind};
use crate::query::by_class;
use crate::tokenizer::Attribute;
use sww_json::Value;

/// The class name marking generatable elements.
pub const GENERATED_CONTENT_CLASS: &str = "generated-content";
/// Attribute carrying the content type.
pub const CONTENT_TYPE_ATTR: &str = "data-content-type";
/// Attribute carrying the JSON metadata dictionary.
pub const METADATA_ATTR: &str = "data-metadata";

/// Supported generated content types (paper §4.1: "currently supporting
/// either 'img' or 'txt'").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    /// Text-to-image generation.
    Img,
    /// Text-to-text expansion.
    Txt,
}

impl ContentType {
    /// Parse the attribute value.
    pub fn parse(s: &str) -> Option<ContentType> {
        match s {
            "img" => Some(ContentType::Img),
            "txt" => Some(ContentType::Txt),
            _ => None,
        }
    }

    /// The attribute value.
    pub fn as_str(self) -> &'static str {
        match self {
            ContentType::Img => "img",
            ContentType::Txt => "txt",
        }
    }
}

/// One extracted generated-content element.
#[derive(Debug, Clone)]
pub struct GeneratedContent {
    /// The element in the document.
    pub node: NodeId,
    /// Declared content type.
    pub content_type: ContentType,
    /// Parsed metadata dictionary.
    pub metadata: Value,
}

impl GeneratedContent {
    /// The generation prompt.
    pub fn prompt(&self) -> &str {
        self.metadata["prompt"].as_str().unwrap_or("")
    }

    /// Target file name for images (paper's worst case budgets 20 B).
    pub fn name(&self) -> &str {
        self.metadata["name"].as_str().unwrap_or("generated")
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.metadata["width"].as_u64().unwrap_or(256) as u32
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.metadata["height"].as_u64().unwrap_or(256) as u32
    }

    /// Requested word count for text expansion.
    pub fn words(&self) -> usize {
        self.metadata["words"].as_u64().unwrap_or(100) as usize
    }

    /// Bullet points for text expansion (falls back to the prompt).
    pub fn bullets(&self) -> Vec<String> {
        match self.metadata["bullets"].as_array() {
            Some(items) => items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect(),
            None => vec![self.prompt().to_owned()],
        }
    }

    /// On-the-wire metadata size in octets: the serialized JSON dictionary.
    /// This is the quantity the paper's compression ratios divide by.
    pub fn metadata_size(&self) -> usize {
        sww_json::to_string(&self.metadata).len()
    }
}

/// Extract every generated-content element in document order. Elements
/// with an unknown content type or unparseable metadata are skipped — a
/// client must degrade gracefully on malformed pages.
pub fn extract(doc: &Document) -> Vec<GeneratedContent> {
    by_class(doc, doc.root(), GENERATED_CONTENT_CLASS)
        .into_iter()
        .filter_map(|node| {
            let ct = ContentType::parse(doc.attr(node, CONTENT_TYPE_ATTR)?)?;
            let metadata = sww_json::parse(doc.attr(node, METADATA_ATTR)?).ok()?;
            if !matches!(metadata, Value::Object(_)) {
                return None;
            }
            Some(GeneratedContent {
                node,
                content_type: ct,
                metadata,
            })
        })
        .collect()
}

/// Replace a generated-content division with a concrete `<img>` pointing
/// at the generated file (Figure 1, bottom).
pub fn replace_with_image(doc: &mut Document, node: NodeId, src: &str, width: u32, height: u32) {
    let img = doc.create(NodeKind::Element {
        name: "img".into(),
        attrs: vec![
            Attribute {
                name: "src".into(),
                value: src.to_owned(),
            },
            Attribute {
                name: "width".into(),
                value: width.to_string(),
            },
            Attribute {
                name: "height".into(),
                value: height.to_string(),
            },
        ],
    });
    doc.replace(node, img);
}

/// Replace a generated-content division's body with expanded text, keeping
/// the division but dropping the generation attributes.
pub fn replace_with_text(doc: &mut Document, node: NodeId, text: &str) {
    doc.clear_children(node);
    let t = doc.create(NodeKind::Text(text.to_owned()));
    doc.attach(node, t);
    if let NodeKind::Element { attrs, .. } = &mut doc.node_mut(node).kind {
        attrs.retain(|a| a.name != CONTENT_TYPE_ATTR && a.name != METADATA_ATTR);
        // Drop the marker class so the element is no longer generatable.
        for a in attrs.iter_mut() {
            if a.name == "class" {
                a.value = a
                    .value
                    .split_ascii_whitespace()
                    .filter(|c| *c != GENERATED_CONTENT_CLASS)
                    .collect::<Vec<_>>()
                    .join(" ");
            }
        }
        attrs.retain(|a| !(a.name == "class" && a.value.is_empty()));
    }
}

/// Build the markup for an image generated-content division — what the
/// conversion pipeline (§4.2) emits when it turns a stock image into a
/// prompt.
pub fn image_div(prompt: &str, name: &str, width: u32, height: u32) -> String {
    let metadata = Value::object([
        ("prompt", Value::from(prompt)),
        ("name", Value::from(name)),
        ("width", Value::from(u64::from(width) as i64)),
        ("height", Value::from(u64::from(height) as i64)),
    ]);
    format!(
        r#"<div class="{GENERATED_CONTENT_CLASS}" {CONTENT_TYPE_ATTR}="img" {METADATA_ATTR}='{}'></div>"#,
        sww_json::to_string(&metadata).replace('\'', "&#x27;")
    )
}

/// Build the markup for a text generated-content division.
pub fn text_div(bullets: &[String], words: usize) -> String {
    let metadata = Value::object([
        (
            "bullets",
            Value::Array(bullets.iter().map(|b| Value::from(b.as_str())).collect()),
        ),
        ("words", Value::from(words)),
    ]);
    format!(
        r#"<div class="{GENERATED_CONTENT_CLASS}" {CONTENT_TYPE_ATTR}="txt" {METADATA_ATTR}='{}'></div>"#,
        sww_json::to_string(&metadata).replace('\'', "&#x27;")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::serialize::serialize;

    const GOLDFISH: &str = r#"<html><body><div class="generated-content" data-content-type="img" data-metadata='{"prompt":"A cartoon goldfish swimming","name":"goldfish.jpg","width":256,"height":256}'></div></body></html>"#;

    #[test]
    fn extract_figure1_div() {
        let doc = parse(GOLDFISH);
        let items = extract(&doc);
        assert_eq!(items.len(), 1);
        let gc = &items[0];
        assert_eq!(gc.content_type, ContentType::Img);
        assert_eq!(gc.prompt(), "A cartoon goldfish swimming");
        assert_eq!(gc.name(), "goldfish.jpg");
        assert_eq!((gc.width(), gc.height()), (256, 256));
    }

    #[test]
    fn figure1_rewrite_to_img() {
        let mut doc = parse(GOLDFISH);
        let gc = extract(&doc).remove(0);
        replace_with_image(&mut doc, gc.node, "generated/goldfish.jpg", 256, 256);
        let html = serialize(&doc);
        assert!(html.contains(r#"<img src="generated/goldfish.jpg" width="256" height="256">"#));
        assert!(!html.contains("generated-content"));
        assert!(extract(&parse(&html)).is_empty());
    }

    #[test]
    fn text_rewrite_keeps_division() {
        let html = text_div(&["summit at dawn".into(), "12 km trail".into()], 150);
        let page = format!("<body>{html}</body>");
        let mut doc = parse(&page);
        let gc = extract(&doc).remove(0);
        assert_eq!(gc.bullets(), ["summit at dawn", "12 km trail"]);
        assert_eq!(gc.words(), 150);
        replace_with_text(&mut doc, gc.node, "The hike begins at dawn...");
        let out = serialize(&doc);
        assert!(out.contains("<div>The hike begins at dawn...</div>"));
        assert!(extract(&parse(&out)).is_empty());
    }

    #[test]
    fn image_div_roundtrips_through_parser() {
        let html = image_div(
            "Mountain lake at sunset, photorealistic",
            "lake.jpg",
            512,
            512,
        );
        let doc = parse(&html);
        let items = extract(&doc);
        assert_eq!(items[0].prompt(), "Mountain lake at sunset, photorealistic");
        assert_eq!(items[0].width(), 512);
    }

    #[test]
    fn malformed_metadata_skipped() {
        let html = r#"
          <div class="generated-content" data-content-type="img" data-metadata='not json'></div>
          <div class="generated-content" data-content-type="video" data-metadata='{}'></div>
          <div class="generated-content" data-content-type="img"></div>
          <div class="generated-content" data-content-type="img" data-metadata='"just a string"'></div>
          <div class="generated-content" data-content-type="img" data-metadata='{"prompt":"ok"}'></div>"#;
        let doc = parse(html);
        let items = extract(&doc);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].prompt(), "ok");
    }

    #[test]
    fn metadata_size_matches_paper_budget() {
        // Paper footnote: 400 B prompt + 20 B name + 4 B each dimension
        // ≈ 428 B worst-case metadata. Build exactly that and check the
        // serialized dictionary lands in the right range.
        let prompt = "p".repeat(400);
        let name = "n".repeat(20);
        let html = image_div(&prompt, &name, 1024, 1024);
        let doc = parse(&html);
        let gc = &extract(&doc)[0];
        let size = gc.metadata_size();
        assert!(
            (428..=480).contains(&size),
            "metadata size {size} should be ≈428 B plus JSON framing"
        );
    }

    #[test]
    fn defaults_for_missing_fields() {
        let html = r#"<div class="generated-content" data-content-type="txt" data-metadata='{"prompt":"x"}'></div>"#;
        let doc = parse(html);
        let gc = &extract(&doc)[0];
        assert_eq!(gc.words(), 100);
        assert_eq!(gc.bullets(), ["x"]);
        assert_eq!(gc.width(), 256);
    }
}
