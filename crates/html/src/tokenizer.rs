//! HTML tokenizer: turns markup into a stream of [`Token`]s.
//!
//! Covers the constructs SWW pages and the paper's evaluation pages use:
//! start/end tags with single-, double- and un-quoted attributes,
//! self-closing tags, void elements, comments, doctype, CDATA-free raw
//! text elements (`script`, `style`) and character entities in text and
//! attribute values.

use crate::entities::decode_text;

/// One attribute: lowercase name and decoded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, lowercased.
    pub name: String,
    /// Decoded value (empty for boolean attributes).
    pub value: String,
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr=...>`; `self_closing` for `<br/>` style.
    StartTag {
        /// Tag name, lowercased.
        name: String,
        /// Attributes in document order.
        attrs: Vec<Attribute>,
        /// Trailing `/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Tag name, lowercased.
        name: String,
    },
    /// Character data with entities decoded.
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
    /// `<!DOCTYPE ...>`; the raw content after `<!`.
    Doctype(String),
}

/// Elements whose content is raw text until the matching end tag.
pub fn is_raw_text_element(name: &str) -> bool {
    matches!(name, "script" | "style")
}

/// HTML void elements (no end tag, no children).
pub fn is_void_element(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// Tokenize the input. The tokenizer is total: any input yields a token
/// stream (malformed markup degrades to text), mirroring browser behaviour.
pub fn tokenize(input: &str) -> Vec<Token> {
    Tokenizer {
        bytes: input.as_bytes(),
        input,
        pos: 0,
        tokens: Vec::new(),
        raw_until: None,
    }
    .run()
}

struct Tokenizer<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
    tokens: Vec<Token>,
    /// When inside a raw-text element, its name.
    raw_until: Option<String>,
}

impl<'a> Tokenizer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            if let Some(raw) = self.raw_until.clone() {
                self.raw_text(&raw);
                continue;
            }
            if self.bytes[self.pos] == b'<' {
                self.tag();
            } else {
                self.text();
            }
        }
        self.tokens
    }

    fn text(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        if !raw.is_empty() {
            self.tokens.push(Token::Text(decode_text(raw)));
        }
    }

    /// Raw text runs until `</name` (ASCII case-insensitive).
    fn raw_text(&mut self, name: &str) {
        let hay = &self.input[self.pos..];
        let lower = hay.to_ascii_lowercase();
        let needle = format!("</{name}");
        let end = lower.find(&needle).unwrap_or(hay.len());
        if end > 0 {
            self.tokens.push(Token::Text(hay[..end].to_owned()));
        }
        self.pos += end;
        self.raw_until = None;
        // The end tag itself is tokenized by the main loop.
    }

    fn tag(&mut self) {
        debug_assert_eq!(self.bytes[self.pos], b'<');
        let rest = &self.input[self.pos..];
        if rest.starts_with("<!--") {
            self.comment();
            return;
        }
        if rest.starts_with("<!") {
            self.doctype();
            return;
        }
        if rest.starts_with("</") {
            self.end_tag();
            return;
        }
        // `<` not followed by a name character is literal text.
        match self.bytes.get(self.pos + 1) {
            Some(c) if c.is_ascii_alphabetic() => self.start_tag(),
            _ => {
                self.tokens.push(Token::Text("<".into()));
                self.pos += 1;
            }
        }
    }

    fn comment(&mut self) {
        self.pos += 4; // "<!--"
        let rest = &self.input[self.pos..];
        let end = rest.find("-->").unwrap_or(rest.len());
        self.tokens.push(Token::Comment(rest[..end].to_owned()));
        self.pos += end + 3.min(rest.len() - end);
    }

    fn doctype(&mut self) {
        self.pos += 2; // "<!"
        let rest = &self.input[self.pos..];
        let end = rest.find('>').unwrap_or(rest.len());
        self.tokens
            .push(Token::Doctype(rest[..end].trim().to_owned()));
        self.pos += (end + 1).min(rest.len());
    }

    fn end_tag(&mut self) {
        self.pos += 2; // "</"
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'>' {
            self.pos += 1;
        }
        let name = self.input[start..self.pos].trim().to_ascii_lowercase();
        if self.pos < self.bytes.len() {
            self.pos += 1; // '>'
        }
        if !name.is_empty() {
            self.tokens.push(Token::EndTag { name });
        }
    }

    fn start_tag(&mut self) {
        self.pos += 1; // '<'
        let name = self.tag_name();
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                None => break,
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'>') {
                        self.pos += 1;
                        self_closing = true;
                        break;
                    }
                }
                Some(_) => {
                    if let Some(attr) = self.attribute() {
                        attrs.push(attr);
                    } else {
                        // Unparseable junk: skip a byte to guarantee progress.
                        self.pos += 1;
                    }
                }
            }
        }
        if is_raw_text_element(&name) && !self_closing {
            self.raw_until = Some(name.clone());
        }
        self.tokens.push(Token::StartTag {
            name,
            attrs,
            self_closing,
        });
    }

    fn tag_name(&mut self) -> String {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'-' || *c == b'_')
        {
            self.pos += 1;
        }
        self.input[start..self.pos].to_ascii_lowercase()
    }

    fn attribute(&mut self) -> Option<Attribute> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&c| !c.is_ascii_whitespace() && c != b'=' && c != b'>' && c != b'/')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        let name = self.input[start..self.pos].to_ascii_lowercase();
        self.skip_ws();
        if self.bytes.get(self.pos) != Some(&b'=') {
            return Some(Attribute {
                name,
                value: String::new(),
            });
        }
        self.pos += 1; // '='
        self.skip_ws();
        let value = match self.bytes.get(self.pos) {
            Some(&q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let vstart = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&c| c != q) {
                    self.pos += 1;
                }
                let raw = &self.input[vstart..self.pos];
                if self.pos < self.bytes.len() {
                    self.pos += 1; // closing quote
                }
                decode_text(raw)
            }
            _ => {
                let vstart = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|&c| !c.is_ascii_whitespace() && c != b'>')
                {
                    self.pos += 1;
                }
                decode_text(&self.input[vstart..self.pos])
            }
        };
        Some(Attribute { name, value })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str, attrs: &[(&str, &str)]) -> Token {
        Token::StartTag {
            name: name.into(),
            attrs: attrs
                .iter()
                .map(|&(n, v)| Attribute {
                    name: n.into(),
                    value: v.into(),
                })
                .collect(),
            self_closing: false,
        }
    }

    #[test]
    fn simple_document() {
        let toks = tokenize("<html><body>Hi</body></html>");
        assert_eq!(
            toks,
            vec![
                start("html", &[]),
                start("body", &[]),
                Token::Text("Hi".into()),
                Token::EndTag {
                    name: "body".into()
                },
                Token::EndTag {
                    name: "html".into()
                },
            ]
        );
    }

    #[test]
    fn attributes_all_quote_styles() {
        let toks = tokenize(r#"<div class="generated-content" id='g1' data-n=42 hidden>"#);
        assert_eq!(
            toks,
            vec![start(
                "div",
                &[
                    ("class", "generated-content"),
                    ("id", "g1"),
                    ("data-n", "42"),
                    ("hidden", ""),
                ]
            )]
        );
    }

    #[test]
    fn self_closing_and_void() {
        let toks = tokenize("<img src=\"x.jpg\"/><br>");
        assert!(matches!(
            &toks[0],
            Token::StartTag { name, self_closing: true, .. } if name == "img"
        ));
        assert!(matches!(
            &toks[1],
            Token::StartTag { name, self_closing: false, .. } if name == "br"
        ));
    }

    #[test]
    fn comment_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- note --><p>x</p>");
        assert_eq!(toks[0], Token::Doctype("DOCTYPE html".into()));
        assert_eq!(toks[1], Token::Comment(" note ".into()));
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let toks = tokenize(r#"<a title="Tom &amp; Jerry">&lt;link&gt;</a>"#);
        assert_eq!(toks[0], start("a", &[("title", "Tom & Jerry")]));
        assert_eq!(toks[1], Token::Text("<link>".into()));
    }

    #[test]
    fn raw_text_script_not_parsed() {
        let toks = tokenize("<script>if (a < b) { x(\"<div>\"); }</script>");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1], Token::Text("if (a < b) { x(\"<div>\"); }".into()));
        assert_eq!(
            toks[2],
            Token::EndTag {
                name: "script".into()
            }
        );
    }

    #[test]
    fn uppercase_normalized() {
        let toks = tokenize("<DIV CLASS=\"X\">a</DIV>");
        assert_eq!(toks[0], start("div", &[("class", "X")]));
        assert_eq!(toks[2], Token::EndTag { name: "div".into() });
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokenize("a < b");
        assert_eq!(
            toks,
            vec![
                Token::Text("a ".into()),
                Token::Text("<".into()),
                Token::Text(" b".into())
            ]
        );
    }

    #[test]
    fn malformed_never_panics() {
        for bad in [
            "<",
            "</",
            "<!",
            "<div",
            "<div attr",
            "<div attr=",
            "<div attr='x",
            "<!-- unclosed",
            "</>",
            "<<<>>>",
            "<div//>",
        ] {
            let _ = tokenize(bad);
        }
    }

    #[test]
    fn json_metadata_attribute_survives() {
        // The paper's Figure 1 pattern: JSON in a single-quoted attribute.
        let html = r#"<div class="generated-content" data-content-type="img" data-metadata='{"prompt":"A cartoon goldfish","width":256,"height":256}'></div>"#;
        let toks = tokenize(html);
        if let Token::StartTag { attrs, .. } = &toks[0] {
            let md = attrs.iter().find(|a| a.name == "data-metadata").unwrap();
            let v = sww_json::parse(&md.value).unwrap();
            assert_eq!(v["prompt"].as_str().unwrap(), "A cartoon goldfish");
        } else {
            panic!("expected start tag");
        }
    }
}
