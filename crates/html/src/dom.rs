//! An arena-based DOM: nodes live in a flat vector, identified by
//! [`NodeId`], with parent/child/sibling links. Mutation never reallocates
//! other nodes, so ids stay stable across the generated-content rewrite.

use crate::tokenizer::Attribute;

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// Node payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The synthetic document root.
    Document,
    /// An element with tag name and attributes.
    Element {
        /// Lowercased tag name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<Attribute>,
    },
    /// A text node.
    Text(String),
    /// A comment.
    Comment(String),
    /// The doctype declaration.
    Doctype(String),
}

/// One DOM node: payload plus tree links.
#[derive(Debug, Clone)]
pub struct Node {
    /// The payload.
    pub kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
}

/// A parsed document: an arena of nodes rooted at [`Document::root`].
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// An empty document containing only the root.
    pub fn new() -> Document {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Total node count (including detached nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document has no content besides the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Append a new node under `parent`.
    pub fn append(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// A node's parent.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].parent
    }

    /// A node's children, in order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0].children
    }

    /// Remove every child of `id` (children become detached, not freed).
    pub fn clear_children(&mut self, id: NodeId) {
        let kids = std::mem::take(&mut self.nodes[id.0].children);
        for k in kids {
            self.nodes[k.0].parent = None;
        }
    }

    /// Replace `old` with `new` in `old`'s parent's child list.
    pub fn replace(&mut self, old: NodeId, new: NodeId) {
        let Some(parent) = self.nodes[old.0].parent else {
            return;
        };
        let slot = self.nodes[parent.0]
            .children
            .iter()
            .position(|&c| c == old)
            .expect("old is a child of its parent");
        self.nodes[parent.0].children[slot] = new;
        self.nodes[old.0].parent = None;
        self.nodes[new.0].parent = Some(parent);
    }

    /// Create a detached node.
    pub fn create(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind,
            parent: None,
            children: Vec::new(),
        });
        id
    }

    /// Attach a detached node under `parent`.
    pub fn attach(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(
            self.nodes[child.0].parent.is_none(),
            "child already attached"
        );
        self.nodes[child.0].parent = Some(parent);
        self.nodes[parent.0].children.push(child);
    }

    /// Element tag name, if `id` is an element.
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.0].kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Attribute value on an element.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.nodes[id.0].kind {
            NodeKind::Element { attrs, .. } => attrs
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// Set (or add) an attribute on an element.
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        if let NodeKind::Element { attrs, .. } = &mut self.nodes[id.0].kind {
            if let Some(a) = attrs.iter_mut().find(|a| a.name == name) {
                a.value = value.to_owned();
            } else {
                attrs.push(Attribute {
                    name: name.to_owned(),
                    value: value.to_owned(),
                });
            }
        }
    }

    /// Whether an element's `class` attribute contains `class_name`.
    pub fn has_class(&self, id: NodeId, class_name: &str) -> bool {
        self.attr(id, "class")
            .map(|c| c.split_ascii_whitespace().any(|c| c == class_name))
            .unwrap_or(false)
    }

    /// Depth-first pre-order traversal from `start`.
    pub fn descendants(&self, start: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            out.push(id);
            // Push children reversed so traversal is document order.
            for &c in self.nodes[id.0].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Concatenated text content under `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for d in self.descendants(id) {
            if let NodeKind::Text(t) = &self.nodes[d.0].kind {
                out.push_str(t);
            }
        }
        out
    }
}

impl Default for Document {
    fn default() -> Self {
        Document::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(name: &str) -> NodeKind {
        NodeKind::Element {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn build_and_traverse() {
        let mut doc = Document::new();
        let html = doc.append(doc.root(), elem("html"));
        let body = doc.append(html, elem("body"));
        let p = doc.append(body, elem("p"));
        doc.append(p, NodeKind::Text("hello ".into()));
        let b = doc.append(p, elem("b"));
        doc.append(b, NodeKind::Text("world".into()));
        assert_eq!(doc.text_content(doc.root()), "hello world");
        let order: Vec<_> = doc
            .descendants(doc.root())
            .iter()
            .filter_map(|&id| doc.tag_name(id).map(str::to_owned))
            .collect();
        assert_eq!(order, ["html", "body", "p", "b"]);
    }

    #[test]
    fn class_matching() {
        let mut doc = Document::new();
        let div = doc.append(doc.root(), elem("div"));
        doc.set_attr(div, "class", "hero generated-content large");
        assert!(doc.has_class(div, "generated-content"));
        assert!(!doc.has_class(div, "generated"));
    }

    #[test]
    fn replace_swaps_child() {
        let mut doc = Document::new();
        let body = doc.append(doc.root(), elem("body"));
        let old = doc.append(body, elem("div"));
        let keep = doc.append(body, elem("p"));
        let img = doc.create(elem("img"));
        doc.replace(old, img);
        assert_eq!(doc.children(body), &[img, keep]);
        assert_eq!(doc.parent(img), Some(body));
        assert_eq!(doc.parent(old), None);
    }

    #[test]
    fn set_attr_updates_existing() {
        let mut doc = Document::new();
        let img = doc.append(doc.root(), elem("img"));
        doc.set_attr(img, "src", "a.jpg");
        doc.set_attr(img, "src", "b.jpg");
        assert_eq!(doc.attr(img, "src"), Some("b.jpg"));
    }

    #[test]
    fn clear_children_detaches() {
        let mut doc = Document::new();
        let div = doc.append(doc.root(), elem("div"));
        let t = doc.append(div, NodeKind::Text("x".into()));
        doc.clear_children(div);
        assert!(doc.children(div).is_empty());
        assert_eq!(doc.parent(t), None);
    }
}
