#![warn(missing_docs)]

//! HTML parsing and the SWW `generated-content` convention (paper §4.1).
//!
//! The paper extends web pages with a `generated-content` class whose
//! elements carry two fields: a content type (`img` or `txt`) and a JSON
//! metadata dictionary holding everything needed to generate the content
//! (prompt, dimensions, word counts, model hints). This crate provides:
//!
//! * a tokenizer and tree builder for the HTML subset real pages use
//!   (void elements, attributes, comments, doctype, raw-text elements,
//!   character entities),
//! * a small DOM with class/tag/attribute queries,
//! * a serializer that reproduces the document,
//! * [`gencontent`]: extraction of generated-content divisions and their
//!   replacement with concrete media once generated — the client-side
//!   rewrite shown in the paper's Figure 1.

pub mod dom;
pub mod entities;
pub mod gencontent;
pub mod parser;
pub mod query;
pub mod serialize;
pub mod tokenizer;

pub use dom::{Document, Node, NodeId};
pub use gencontent::{ContentType, GeneratedContent};
pub use parser::parse;
pub use serialize::serialize;
