//! Character entity references: the named set real pages actually use plus
//! full numeric (`&#123;` / `&#x1F600;`) support.

/// Named entities recognised by the tokenizer.
static NAMED: [(&str, &str); 22] = [
    ("amp", "&"),
    ("lt", "<"),
    ("gt", ">"),
    ("quot", "\""),
    ("apos", "'"),
    ("nbsp", "\u{a0}"),
    ("copy", "\u{a9}"),
    ("reg", "\u{ae}"),
    ("trade", "\u{2122}"),
    ("hellip", "\u{2026}"),
    ("mdash", "\u{2014}"),
    ("ndash", "\u{2013}"),
    ("lsquo", "\u{2018}"),
    ("rsquo", "\u{2019}"),
    ("ldquo", "\u{201c}"),
    ("rdquo", "\u{201d}"),
    ("deg", "\u{b0}"),
    ("middot", "\u{b7}"),
    ("times", "\u{d7}"),
    ("laquo", "\u{ab}"),
    ("raquo", "\u{bb}"),
    ("eacute", "\u{e9}"),
];

/// Decode the entity *name* between `&` and `;`. Returns `None` for
/// unknown names (the tokenizer then emits the raw text, as browsers do).
pub fn decode_named(name: &str) -> Option<&'static str> {
    NAMED.iter().find(|&&(n, _)| n == name).map(|&(_, v)| v)
}

/// Decode a numeric reference body (after `#`), e.g. `38` or `x26`.
pub fn decode_numeric(body: &str) -> Option<char> {
    let code = if let Some(hex) = body.strip_prefix(['x', 'X']) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<u32>().ok()?
    };
    // Reject NUL and surrogates like the HTML spec does.
    if code == 0 {
        return None;
    }
    char::from_u32(code)
}

/// Decode all entities in `text`. Malformed references pass through raw.
pub fn decode_text(text: &str) -> String {
    if !text.contains('&') {
        return text.to_owned();
    }
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        // Entities are short; only look at a bounded window for the ';'.
        match after.char_indices().take(12).find(|&(_, c)| c == ';') {
            Some((semi, _)) => {
                let body = &after[..semi];
                let decoded = if let Some(num) = body.strip_prefix('#') {
                    decode_numeric(num).map(|c| c.to_string())
                } else {
                    decode_named(body).map(str::to_owned)
                };
                match decoded {
                    Some(s) => {
                        out.push_str(&s);
                        rest = &after[semi + 1..];
                    }
                    None => {
                        out.push('&');
                        rest = after;
                    }
                }
            }
            None => {
                out.push('&');
                rest = after;
            }
        }
    }
    out.push_str(rest);
    out
}

/// Escape text for placement inside an element body.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

/// Escape text for placement inside a double-quoted attribute value.
pub fn escape_attr(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '<' => out.push_str("&lt;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entities() {
        assert_eq!(decode_text("a &amp; b"), "a & b");
        assert_eq!(decode_text("&lt;div&gt;"), "<div>");
        assert_eq!(decode_text("caf&eacute;"), "café");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(decode_text("&#38;"), "&");
        assert_eq!(decode_text("&#x26;"), "&");
        assert_eq!(decode_text("&#x1F600;"), "😀");
    }

    #[test]
    fn malformed_passes_through() {
        assert_eq!(decode_text("AT&T rocks"), "AT&T rocks");
        assert_eq!(decode_text("&unknown;"), "&unknown;");
        assert_eq!(decode_text("&#zzz;"), "&#zzz;");
        assert_eq!(decode_text("trailing &"), "trailing &");
        assert_eq!(decode_text("&#0;"), "&#0;");
    }

    #[test]
    fn escape_roundtrip() {
        let s = "a < b & \"c\" > d";
        assert_eq!(decode_text(&escape_text(s)), s);
        assert_eq!(decode_text(&escape_attr(s)), s);
    }

    #[test]
    fn no_amp_fast_path() {
        assert_eq!(decode_text("plain text"), "plain text");
    }
}
