//! Facade crate re-exporting the full SWW system.
pub use sww_core as core;
pub use sww_energy as energy;
pub use sww_genai as genai;
pub use sww_hash as hash;
pub use sww_html as html;
pub use sww_http2 as http2;
pub use sww_http3 as http3;
pub use sww_json as json;
pub use sww_obs as obs;
pub use sww_workload as workload;
